"""Experiment harnesses regenerating every table and figure of the paper."""

from .evaluation import (
    FAILURE_STAGE_TIMEOUT,
    FAILURE_STAGE_WORKER,
    USE_CASE_OF_DATASET,
    AnalysisFailure,
    AnalyzedApplication,
    EvaluationResult,
    run_full_evaluation,
)
from .figures import (
    DistributionSummary,
    RankedApplication,
    class_breakdown_csv,
    figure3a,
    figure3b,
    figure4a,
    format_figure3,
    format_figure4a,
)
from .netpol_impact import (
    ApplicationReachability,
    DatasetReachabilityRow,
    NetpolImpactResult,
    probe_application_with_policies,
    run_netpol_impact,
)
from .stats import (
    HeadlineStats,
    UseCaseStats,
    compute_stats,
    format_stats,
)
from .table3 import (
    PAPER_TABLE3,
    ComparisonResult,
    ToolRow,
    neighbour_application,
    paper_row,
    representative_application,
    run_comparison,
)

__all__ = [
    "AnalysisFailure",
    "AnalyzedApplication",
    "ApplicationReachability",
    "FAILURE_STAGE_TIMEOUT",
    "FAILURE_STAGE_WORKER",
    "ComparisonResult",
    "DatasetReachabilityRow",
    "DistributionSummary",
    "EvaluationResult",
    "HeadlineStats",
    "NetpolImpactResult",
    "PAPER_TABLE3",
    "RankedApplication",
    "ToolRow",
    "USE_CASE_OF_DATASET",
    "UseCaseStats",
    "class_breakdown_csv",
    "compute_stats",
    "figure3a",
    "figure3b",
    "figure4a",
    "format_figure3",
    "format_figure4a",
    "format_stats",
    "neighbour_application",
    "paper_row",
    "probe_application_with_policies",
    "representative_application",
    "run_comparison",
    "run_full_evaluation",
    "run_netpol_impact",
]
