"""The full evaluation pipeline (Section 4.2): analyze the whole catalogue.

Per application: render the chart (dict-natively, through the shared render
cache), derive the double runtime snapshot install-free via the pooled
:class:`~repro.cluster.AnalysisSession`, evaluate every rule.  Once all
applications are analyzed, run the cluster-wide pass for global label
collisions (M4*).  The result feeds every table and figure of Section 4.3.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial

from ..core import (
    AnalysisReport,
    AnalyzerSettings,
    ApplicationInventory,
    EvaluationSummary,
    MisconfigurationAnalyzer,
    global_collision_findings,
)
from ..datasets import DATASET_ORDER, BuiltApplication, build_catalog, catalog_fingerprints
from ..helm import render_chart
from ..k8s import Inventory

#: Use-case grouping used by the Section 4.3.1 statistics.
USE_CASE_OF_DATASET = {
    "Banzai Cloud": "sharing",
    "Bitnami": "sharing",
    "CNCF": "production",
    "EEA": "internal",
    "Prometheus C.": "production",
    "Wikimedia": "internal",
}


@dataclass
class AnalyzedApplication:
    """One application together with its analysis artefacts."""

    application: BuiltApplication
    report: AnalysisReport
    inventory: Inventory

    @property
    def key(self) -> tuple[str, str]:
        return (self.application.dataset, self.application.name)


@dataclass
class EvaluationResult:
    """The outcome of analyzing the full catalogue."""

    analyzed: list[AnalyzedApplication] = field(default_factory=list)

    @property
    def summary(self) -> EvaluationSummary:
        summary = EvaluationSummary()
        for entry in self.analyzed:
            summary.add(entry.report)
        return summary

    def applications(self) -> list[BuiltApplication]:
        return [entry.application for entry in self.analyzed]

    def reports(self) -> list[AnalysisReport]:
        return [entry.report for entry in self.analyzed]

    def report_for(self, dataset: str, name: str) -> AnalysisReport | None:
        for entry in self.analyzed:
            if entry.key == (dataset, name):
                return entry.report
        return None

    def by_dataset(self, dataset: str) -> list[AnalyzedApplication]:
        return [entry for entry in self.analyzed if entry.application.dataset == dataset]

    def by_use_case(self, use_case: str) -> list[AnalyzedApplication]:
        return [
            entry
            for entry in self.analyzed
            if USE_CASE_OF_DATASET.get(entry.application.dataset) == use_case
        ]


def _analyze_application(
    app: BuiltApplication,
    analyzer: MisconfigurationAnalyzer,
    fingerprint: str | None = None,
) -> AnalyzedApplication:
    # One render serves both the analysis and the inventory, and it goes
    # through the shared render cache: re-sweeping the same catalogue is a
    # shared-reference hit per chart.  The inventory is shared too, so its
    # lazy indexes serve both the per-chart rules and the cluster-wide pass.
    rendered = render_chart(app.chart, fingerprint=fingerprint)
    inventory = Inventory(rendered.objects)
    report = analyzer.analyze_chart(
        app.chart,
        behaviors=app.behaviors,
        dataset=app.dataset,
        rendered=rendered,
        inventory=inventory,
    )
    return AnalyzedApplication(application=app, report=report, inventory=inventory)


#: Per-worker-process analyzer, so the pooled cluster/substrate of its
#: analysis session survives across every chart the worker handles instead
#: of being rebuilt per task.
_WORKER_ANALYZER: MisconfigurationAnalyzer | None = None


def _analyze_application_in_subprocess(
    app: BuiltApplication, fingerprint: str, settings: AnalyzerSettings
) -> AnalyzedApplication:
    """Process-pool worker: rebuild the (default) analyzer from its settings.

    The parent ships each chart's content fingerprint alongside the chart so
    workers key straight into their (fork-inherited) render cache without
    re-hashing -- and, when the cache is warm, without re-rendering.  The
    analyzer itself is cached per process (keyed on the settings), keeping
    one warm :class:`~repro.cluster.AnalysisSession` per worker.
    """
    global _WORKER_ANALYZER
    analyzer = _WORKER_ANALYZER
    if analyzer is None or analyzer.settings != settings:
        analyzer = MisconfigurationAnalyzer(settings=settings)
        _WORKER_ANALYZER = analyzer
    return _analyze_application(app, analyzer, fingerprint)


def run_full_evaluation(
    datasets: tuple[str, ...] = DATASET_ORDER,
    analyzer: MisconfigurationAnalyzer | None = None,
    applications: list[BuiltApplication] | None = None,
    workers: int | None = None,
) -> EvaluationResult:
    """Analyze the complete catalogue and run the cluster-wide pass.

    ``workers`` enables the parallel evaluation path.  Charts are fully
    independent (observations share nothing across charts, the rules are
    stateless), so with the default analyzer they fan out on a *process*
    pool -- real parallelism for this CPU-bound, GIL-holding workload; the
    per-chart inputs and reports are plain picklable dataclasses.  A custom
    ``analyzer`` (whose rules or cluster factory may not pickle) falls back
    to a thread pool, which mainly helps if its hooks release the GIL.
    Result ordering is deterministic either way -- ``Executor.map``
    preserves catalogue order, not completion order -- and the cluster-wide
    M4* pass always runs sequentially afterwards over the ordered
    inventories.
    """
    custom_analyzer = analyzer is not None
    analyzer = analyzer or MisconfigurationAnalyzer(settings=AnalyzerSettings())
    applications = applications if applications is not None else build_catalog(datasets)

    result = EvaluationResult()
    if workers and workers > 1 and not custom_analyzer:
        fingerprints = catalog_fingerprints(applications)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # Chunk the map: per-chart analysis is ~10ms, so one-item tasks
            # would spend comparable time on pickling round-trips.
            result.analyzed = list(
                pool.map(
                    partial(_analyze_application_in_subprocess, settings=analyzer.settings),
                    applications,
                    fingerprints,
                    chunksize=max(len(applications) // (workers * 4), 1),
                )
            )
    elif workers and workers > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            result.analyzed = list(
                pool.map(
                    lambda app: _analyze_application(app, analyzer, app.fingerprint()),
                    applications,
                )
            )
    else:
        result.analyzed = [
            _analyze_application(app, analyzer, app.fingerprint()) for app in applications
        ]
    inventories = [
        ApplicationInventory(
            application=f"{entry.application.dataset}/{entry.application.name}",
            inventory=entry.inventory,
            dataset=entry.application.dataset,
        )
        for entry in result.analyzed
    ]
    # Cluster-wide pass: attribute the extra M4* findings back to the reports.
    extra = global_collision_findings(inventories)
    by_unique_id = {f"{entry.application.dataset}/{entry.application.name}": entry
                    for entry in result.analyzed}
    for finding in extra:
        entry = by_unique_id.get(finding.application)
        if entry is not None:
            finding.application = entry.application.name
            entry.report.add([finding])
    return result
