"""The full evaluation pipeline (Section 4.2): analyze the whole catalogue.

Per application: render the chart (dict-natively, through the shared render
cache), derive the double runtime snapshot install-free via the pooled
:class:`~repro.cluster.AnalysisSession`, evaluate every rule.  Once all
applications are analyzed, run the cluster-wide pass for global label
collisions (M4*).  The result feeds every table and figure of Section 4.3.

Fault isolation
---------------

One malformed chart must not abort a 290-chart sweep.  By default
(``fail_fast=False``) every per-chart exception -- in render, observation or
rule evaluation -- becomes a structured :class:`AnalysisFailure` record on
``EvaluationResult.failed`` instead of propagating, after up to
``max_attempts`` retries with capped exponential backoff; a chart that still
fails is *quarantined* and the sweep carries on.  Every healthy chart's
report is byte-identical to a fault-free run (the chaos differential suite
in ``tests/experiments/test_fault_isolation.py`` proves it under injected
faults at every site).  ``fail_fast=True`` pins the historical
raise-on-first-error semantics as the reference behaviour.

The parallel process-pool sweep is additionally *self-healing*: it survives
``BrokenProcessPool`` (a worker killed mid-task) by respawning the pool, and
it enforces a per-chart wall-clock watchdog (``chart_timeout``) so a hung
chart cannot stall the sweep.  Crash attribution is exact: charts that were
in flight when the pool broke are re-run one at a time on a fresh pool, so a
repeat crash is unambiguously the fault of the chart that was alone in
flight -- innocent bystanders are never charged an attempt, which keeps
retry/quarantine decisions (and therefore the whole result) deterministic.
Result ordering is catalogue order throughout, failures or not.

Durability and resume
---------------------

``run_full_evaluation(store=...)`` makes the sweep *durable*: every
completed chart's report and inventory are published to a content-addressed
:class:`~repro.store.ResultStore` the moment the chart finishes (not at the
end of the sweep -- a killed process loses only its in-flight chart), keyed
on :func:`result_key` (chart fingerprint + behaviours + analyzer settings),
and a sealed :class:`~repro.store.SweepJournal` records per-chart
completion.  Every durable sweep consults the store first -- content
addressing makes a warm entry valid in any sweep with the same inputs --
so ``resume=True`` (the CLI's ``repro sweep --resume``) is about journal
continuity and reporting, while the skip-completed behaviour itself needs
no flag.  Persisted entries hold the pre-M4* report: the cluster-wide
pass re-runs over loaded and fresh inventories alike, so store-on,
store-off and crash-then-resume sweeps produce byte-identical results (the
durability differential suite in ``tests/experiments/test_store_durability.py``
proves it, torn stores and injected corruption included).
"""

from __future__ import annotations

import functools
import hashlib
import json
import threading
import time
import traceback as traceback_module
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import asdict, dataclass, field, replace
from functools import partial
from pathlib import Path

from .. import faults
from ..store import KIND_RESULT, ResultStore, SweepJournal, store_key
from ..core import (
    AnalysisReport,
    AnalysisStageError,
    AnalyzerSettings,
    ApplicationInventory,
    EvaluationSummary,
    MisconfigurationAnalyzer,
    STAGE_RENDER,
    global_collision_findings,
)
from ..datasets import DATASET_ORDER, BuiltApplication, build_catalog, catalog_fingerprints
from ..helm import render_chart
from ..helm.values import fingerprint_values
from ..k8s import Inventory

#: Use-case grouping used by the Section 4.3.1 statistics.
USE_CASE_OF_DATASET = {
    "Banzai Cloud": "sharing",
    "Bitnami": "sharing",
    "CNCF": "production",
    "EEA": "internal",
    "Prometheus C.": "production",
    "Wikimedia": "internal",
}

#: Failure stages beyond the analyzer's render/observe/rules: the worker
#: process died (crash or kill), or the per-chart watchdog fired.
FAILURE_STAGE_WORKER = "worker"
FAILURE_STAGE_TIMEOUT = "timeout"

#: Watchdog poll interval and the ceiling on retry backoff sleeps.
_POLL_S = 0.02
_BACKOFF_CAP_S = 1.0


@dataclass
class AnalysisFailure:
    """One chart the sweep could not analyze, with full attribution.

    ``stage`` is one of the analyzer's pipeline stages (``render`` /
    ``observe`` / ``rules``), or ``worker`` (the worker process died) or
    ``timeout`` (the per-chart watchdog fired).  ``attempts`` counts how
    many times the chart was tried before being quarantined.
    """

    dataset: str
    name: str
    stage: str
    error_type: str
    message: str
    traceback: str
    attempts: int = 1
    quarantined: bool = True

    @property
    def key(self) -> tuple[str, str]:
        """The ``(dataset, name)`` identity, matching ``AnalyzedApplication.key``."""
        return (self.dataset, self.name)

    @property
    def unique_id(self) -> str:
        """The ``dataset/name`` key used by fault plans and the M4* pass."""
        return f"{self.dataset}/{self.name}"

    def to_dict(self) -> dict:
        """A JSON-ready form for reports and operator tooling."""
        return {
            "dataset": self.dataset,
            "name": self.name,
            "stage": self.stage,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "quarantined": self.quarantined,
        }


@dataclass
class AnalyzedApplication:
    """One application together with its analysis artefacts."""

    application: BuiltApplication
    report: AnalysisReport
    inventory: Inventory
    #: How many attempts the analysis took (1 = first try; >1 means a
    #: transient failure was healed by retry).
    attempts: int = 1

    @property
    def key(self) -> tuple[str, str]:
        """The ``(dataset, name)`` identity of the analyzed application."""
        return (self.application.dataset, self.application.name)


@dataclass
class EvaluationResult:
    """The outcome of analyzing the full catalogue.

    ``analyzed`` holds the healthy applications in catalogue order;
    ``failed`` holds one :class:`AnalysisFailure` per chart the sweep gave
    up on (empty under ``fail_fast=True``, which raises instead).  Every
    downstream consumer -- ``summary``, the figures, Table 3, the report
    formatters -- iterates ``analyzed`` only, so they degrade gracefully:
    a failed chart is simply absent, never a crash.

    Lookups go through a lazily-built key index (rebuilt whenever the
    entries of ``analyzed`` change), replacing the former per-call linear
    scans.
    """

    analyzed: list[AnalyzedApplication] = field(default_factory=list)
    failed: list[AnalysisFailure] = field(default_factory=list)
    #: Durable-sweep accounting (``None`` when the sweep ran without a
    #: store): loaded/computed/failed counts, the store's own counters and
    #: any journal rotation -- the CLI's degradation hints key on this.
    #: Excluded from equality: where results came from must never make two
    #: identical evaluations compare different.
    store_stats: dict | None = field(default=None, init=False, repr=False, compare=False)
    #: Delta-sweep accounting (``None`` for from-scratch sweeps): the
    #: per-class chart counts, reuse/recompute tallies and journal epochs a
    #: :class:`repro.experiments.delta.DeltaEvaluator` run records.
    #: Excluded from equality for the same reason as ``store_stats``.
    delta_stats: dict | None = field(default=None, init=False, repr=False, compare=False)
    _key_index: dict = field(default=None, init=False, repr=False, compare=False)
    _id_index: dict = field(default=None, init=False, repr=False, compare=False)
    _dataset_index: dict = field(default=None, init=False, repr=False, compare=False)
    _indexed_ids: tuple = field(default=(), init=False, repr=False, compare=False)

    @property
    def summary(self) -> EvaluationSummary:
        """The aggregate finding counts over every *analyzed* application."""
        summary = EvaluationSummary()
        for entry in self.analyzed:
            summary.add(entry.report)
        return summary

    def applications(self) -> list[BuiltApplication]:
        """The analyzed applications, in catalogue order."""
        return [entry.application for entry in self.analyzed]

    def reports(self) -> list[AnalysisReport]:
        """The per-application reports, in catalogue order."""
        return [entry.report for entry in self.analyzed]

    def invalidate_indexes(self) -> None:
        """Drop the lazy lookup indexes; the next query rebuilds them.

        Mutating ``analyzed`` invalidates automatically (``_index`` compares
        entry identities, not just length, so a removal-plus-insertion of
        equal length cannot serve stale answers) -- this hook exists for
        callers that replaced an entry's *contents* in place and want the
        rebuild made explicit.
        """
        self._key_index = None
        self._indexed_ids = ()

    def _index(self) -> dict:
        # Lazily (re)built: callers may mutate ``analyzed`` after
        # construction, so the index invalidates whenever the entry
        # identity sequence moved.  Length alone is not enough -- a delta
        # round that removes one chart and adds another keeps the length
        # while orphaning keys -- so the check walks the (cheap) id tuple.
        current_ids = tuple(map(id, self.analyzed))
        if self._key_index is None or self._indexed_ids != current_ids:
            self._key_index = {entry.key: entry for entry in self.analyzed}
            self._id_index = {
                f"{entry.application.dataset}/{entry.application.name}": entry
                for entry in self.analyzed
            }
            buckets: dict[str, list[AnalyzedApplication]] = {}
            for entry in self.analyzed:
                buckets.setdefault(entry.application.dataset, []).append(entry)
            self._dataset_index = buckets
            self._indexed_ids = current_ids
        return self._key_index

    def report_for(self, dataset: str, name: str) -> AnalysisReport | None:
        """The report of one application (``None`` if absent or failed)."""
        entry = self._index().get((dataset, name))
        return entry.report if entry is not None else None

    def failure_for(self, dataset: str, name: str) -> AnalysisFailure | None:
        """The failure record of one application, if it was quarantined."""
        for failure in self.failed:
            if failure.key == (dataset, name):
                return failure
        return None

    def by_dataset(self, dataset: str) -> list[AnalyzedApplication]:
        """Analyzed applications of one dataset, in catalogue order."""
        self._index()
        return list(self._dataset_index.get(dataset, ()))

    def by_use_case(self, use_case: str) -> list[AnalyzedApplication]:
        """Analyzed applications of one use case, in catalogue order.

        (Catalogues group applications by dataset, so concatenating the
        dataset buckets in first-appearance order preserves it.)
        """
        self._index()
        return [
            entry
            for dataset, bucket in self._dataset_index.items()
            if USE_CASE_OF_DATASET.get(dataset) == use_case
            for entry in bucket
        ]


def _analyze_application(
    app: BuiltApplication,
    analyzer: MisconfigurationAnalyzer,
    fingerprint: str | None = None,
    stage_errors: bool = False,
) -> AnalyzedApplication:
    # One render serves both the analysis and the inventory, and it goes
    # through the shared render cache: re-sweeping the same catalogue is a
    # shared-reference hit per chart.  The inventory is shared too, so its
    # lazy indexes serve both the per-chart rules and the cluster-wide pass.
    def _render() -> tuple:
        rendered = render_chart(app.chart, fingerprint=fingerprint)
        return rendered, Inventory(rendered.objects)

    rendered, inventory = MisconfigurationAnalyzer._run_stage(
        STAGE_RENDER, stage_errors, _render
    )
    report = analyzer.analyze_chart(
        app.chart,
        behaviors=app.behaviors,
        dataset=app.dataset,
        rendered=rendered,
        inventory=inventory,
        stage_errors=stage_errors,
    )
    return AnalyzedApplication(application=app, report=report, inventory=inventory)


def _failure_payload(exc: BaseException) -> tuple[str, str, str, str]:
    """(stage, error type, message, traceback) of a per-chart exception."""
    tb = "".join(traceback_module.format_exception(type(exc), exc, exc.__traceback__))
    if isinstance(exc, AnalysisStageError):
        original = exc.original
        return (exc.stage, type(original).__name__, str(original), tb)
    return (FAILURE_STAGE_WORKER, type(exc).__name__, str(exc), tb)


def _failure_from(
    app: BuiltApplication, payload: tuple[str, str, str, str], attempts: int
) -> AnalysisFailure:
    stage, error_type, message, tb = payload
    return AnalysisFailure(
        dataset=app.dataset,
        name=app.name,
        stage=stage,
        error_type=error_type,
        message=message,
        traceback=tb,
        attempts=attempts,
        quarantined=True,
    )


def _backoff_delay(attempt: int, retry_backoff: float) -> float:
    """Capped exponential backoff before retrying attempt ``attempt + 1``."""
    return min(retry_backoff * (2 ** (attempt - 1)), _BACKOFF_CAP_S)


def _run_isolated(
    app: BuiltApplication,
    analyzer: MisconfigurationAnalyzer,
    fingerprint: str | None,
    max_attempts: int,
    retry_backoff: float,
) -> AnalyzedApplication | AnalysisFailure:
    """Analyze one chart with in-process isolation: retry, then quarantine."""
    key = f"{app.dataset}/{app.name}"
    for attempt in range(1, max_attempts + 1):
        with faults.fault_scope(key, attempt):
            try:
                analyzed = _analyze_application(
                    app, analyzer, fingerprint, stage_errors=True
                )
                analyzed.attempts = attempt
                return analyzed
            except Exception as exc:
                if attempt >= max_attempts:
                    return _failure_from(app, _failure_payload(exc), attempt)
        time.sleep(_backoff_delay(attempt, retry_backoff))
    raise AssertionError("unreachable: max_attempts >= 1")  # pragma: no cover


def settings_fingerprint(settings: AnalyzerSettings) -> str:
    """Canonical JSON of the analyzer settings that affect computed results.

    ``store_dir`` is excluded on principle: where artifacts are persisted
    must never change what is computed, so moving a store directory keeps
    every entry addressable.
    """
    data = asdict(settings)
    data.pop("store_dir", None)
    return json.dumps(data, sort_keys=True, default=str)


def result_key(app: BuiltApplication, settings_fp: str) -> str:
    """The content key of one chart's evaluation result.

    Covers everything the (pre-M4*) report and inventory are a function of:
    the catalogue identity, the chart content fingerprint, the registered
    behaviours, and the analyzer settings (via :func:`settings_fingerprint`).
    """
    return store_key(
        KIND_RESULT,
        app.dataset,
        app.name,
        app.fingerprint(),
        app.behaviors.fingerprint(),
        settings_fp,
    )


def classifier_fingerprints(app: BuiltApplication, settings_fp: str) -> dict[str, str]:
    """The delta classifier's per-input fingerprints for one chart.

    Each key fingerprints exactly one axis a delta sweep can move along --
    ``values`` (the chart's canonical values tree), ``templates`` (the
    template files by name and source), ``behaviors`` (the registered
    container behaviours) and ``settings`` (the analyzer settings) -- plus
    ``chart``, an aggregate over *every* render input (metadata, values,
    templates, dependencies, packaged subcharts).  The aggregate is
    composed from the axis digests rather than delegating to
    :meth:`~repro.helm.Chart.fingerprint`, so a watch round walks each
    values tree exactly once -- this function runs for every chart on
    every round and is the hot loop of a no-op delta.  The orthogonality
    contract (mutating one input flips its own fingerprint and no other)
    is what lets :class:`repro.experiments.delta.DeltaEvaluator` name the
    reason a chart is re-verified; it is pinned by the
    fingerprint-sensitivity suite in
    ``tests/experiments/test_delta_evaluation.py``.
    """
    chart = app.chart
    values_fp = fingerprint_values(chart.values)

    templates_digest = hashlib.blake2b(digest_size=16)
    for template in chart.templates:
        templates_digest.update(template.name.encode("utf-8"))
        templates_digest.update(b"\x00")
        templates_digest.update(template.source.encode("utf-8"))
        templates_digest.update(b"\x00")
    templates_fp = templates_digest.hexdigest()

    meta = chart.metadata
    aggregate = hashlib.blake2b(digest_size=16)
    for part in (
        meta.name,
        meta.version,
        meta.app_version,
        meta.description,
        meta.home,
        meta.organization,
        values_fp,
        templates_fp,
    ):
        aggregate.update(part.encode("utf-8"))
        aggregate.update(b"\x00")
    for dependency in chart.dependencies:
        for part in (
            dependency.name,
            dependency.version,
            dependency.repository,
            dependency.condition,
            dependency.alias,
        ):
            aggregate.update(part.encode("utf-8"))
            aggregate.update(b"\x00")
    for name in sorted(chart.subcharts):
        aggregate.update(name.encode("utf-8"))
        aggregate.update(chart.subcharts[name].fingerprint().encode("utf-8"))
        aggregate.update(b"\x00")

    return {
        "chart": aggregate.hexdigest(),
        "values": values_fp,
        "templates": templates_fp,
        "behaviors": app.behaviors.fingerprint(),
        "settings": _settings_axis_fp(settings_fp),
    }


@functools.lru_cache(maxsize=16)
def _settings_axis_fp(settings_fp: str) -> str:
    """The settings-axis digest, memoized: one settings object serves a
    whole sweep, so re-hashing it per chart per round is pure waste."""
    return hashlib.blake2b(settings_fp.encode("utf-8"), digest_size=16).hexdigest()


class _DurableSweep:
    """Store + journal bookkeeping threaded through one durable sweep.

    ``load()`` pulls verified completed results out of the store before the
    sweep runs; ``note(outcome)`` publishes each fresh outcome the moment it
    completes (entry write + sealed journal record, under the chart's fault
    scope so injected ``store.*`` faults replay deterministically); and
    ``merge()`` reassembles catalogue order.  Persistence is per-chart by
    design -- crash safety comes from never holding completed work only in
    memory -- and always happens *before* the cluster-wide M4* pass, which
    re-runs over loaded and fresh inventories alike.
    """

    def __init__(
        self,
        store: ResultStore,
        applications: list[BuiltApplication],
        settings: AnalyzerSettings,
        resume: bool,
    ) -> None:
        self.store = store
        self.applications = applications
        self.settings_fp = settings_fingerprint(settings)
        self.keys = [result_key(app, self.settings_fp) for app in applications]
        #: Per-chart classifier fingerprints, attached to every journal
        #: record so a later delta sweep can classify what moved.
        self.fingerprints = [
            classifier_fingerprints(app, self.settings_fp) for app in applications
        ]
        identity_material = repr((tuple(self.keys), self.settings_fp))
        identity = hashlib.sha256(identity_material.encode("utf-8")).hexdigest()
        self.journal = SweepJournal(store.root, identity)
        self.resume = resume
        self.loaded = 0
        self.computed = 0
        self.failures = 0
        self.unstored = 0
        self._by_id = {
            f"{app.dataset}/{app.name}": index for index, app in enumerate(applications)
        }
        self._lock = threading.Lock()
        self.previously = self.journal.begin(resume)

    def load(self) -> dict[int, AnalyzedApplication]:
        """Verified completed results already in the store, by catalogue index."""
        found: dict[int, AnalyzedApplication] = {}
        for index, app in enumerate(self.applications):
            uid = f"{app.dataset}/{app.name}"
            with faults.fault_scope(uid):
                payload = self.store.read(self.keys[index], kind=KIND_RESULT)
            if not isinstance(payload, dict):
                continue
            try:
                entry = AnalyzedApplication(
                    application=app,
                    report=payload["report"],
                    inventory=payload["inventory"],
                    attempts=int(payload.get("attempts", 1)),
                )
            except KeyError:
                continue
            found[index] = entry
            self.loaded += 1
            self.journal.record(
                uid, "ok", self.keys[index], entry.attempts,
                source="store", fingerprints=self.fingerprints[index],
            )
        return found

    def note(
        self, outcome: AnalyzedApplication | AnalysisFailure | None
    ) -> AnalyzedApplication | AnalysisFailure | None:
        """Publish one fresh outcome (entry + journal record); returns it."""
        if isinstance(outcome, AnalyzedApplication):
            app = outcome.application
            uid = f"{app.dataset}/{app.name}"
            index = self._by_id.get(uid)
            key = self.keys[index] if index is not None else result_key(app, self.settings_fp)
            with faults.fault_scope(uid):
                stored = self.store.write(
                    key,
                    {
                        "report": outcome.report,
                        "inventory": outcome.inventory,
                        "attempts": outcome.attempts,
                    },
                    kind=KIND_RESULT,
                )
            with self._lock:
                self.computed += 1
                if not stored:
                    self.unstored += 1
            self.journal.record(
                uid, "ok", key, outcome.attempts,
                source="computed" if stored else "computed-unstored",
                fingerprints=self.fingerprints[index]
                if index is not None
                else classifier_fingerprints(app, self.settings_fp),
            )
        elif isinstance(outcome, AnalysisFailure):
            with self._lock:
                self.failures += 1
            index = self._by_id.get(outcome.unique_id)
            self.journal.record(
                outcome.unique_id, "failed", "", outcome.attempts, source="computed",
                fingerprints=self.fingerprints[index] if index is not None else None,
            )
        return outcome

    def merge(
        self,
        loaded: dict[int, AnalyzedApplication],
        fresh: list[AnalyzedApplication | AnalysisFailure | None],
    ) -> list[AnalyzedApplication | AnalysisFailure | None]:
        """Interleave loaded and fresh outcomes back into catalogue order."""
        fresh_iter = iter(fresh)
        merged: list[AnalyzedApplication | AnalysisFailure | None] = []
        for index in range(len(self.applications)):
            merged.append(loaded[index] if index in loaded else next(fresh_iter))
        return merged

    def finish(self) -> dict:
        """Close the journal; return the sweep's durability accounting."""
        self.journal.close()
        return {
            "root": str(self.store.root),
            "loaded": self.loaded,
            "computed": self.computed,
            "failed": self.failures,
            "unstored": self.unstored,
            "resumed": len(self.previously),
            "journal_rotated": self.journal.rotated_reason,
            "journal_dropped_lines": self.journal.dropped_lines,
            "journal_epoch": self.journal.epoch,
            "store": self.store.stats(),
        }


#: Per-worker-process analyzer, so the pooled cluster/substrate of its
#: analysis session survives across every chart the worker handles instead
#: of being rebuilt per task.
_WORKER_ANALYZER: MisconfigurationAnalyzer | None = None


def _pool_worker_init(fault_plan: faults.FaultPlan | None) -> None:
    """Process-pool initializer: arm the shipped fault plan, enable ``kill``."""
    faults.mark_pool_worker()
    faults.arm(fault_plan)


def _analyze_application_in_subprocess(
    app: BuiltApplication,
    fingerprint: str,
    settings: AnalyzerSettings,
    key: str | None = None,
    attempt: int = 1,
    capture: bool = False,
) -> AnalyzedApplication | tuple:
    """Process-pool worker: rebuild the (default) analyzer from its settings.

    The parent ships each chart's content fingerprint alongside the chart so
    workers key straight into their (fork-inherited) render cache without
    re-hashing -- and, when the cache is warm, without re-rendering.  The
    analyzer itself is cached per process (keyed on the settings), keeping
    one warm :class:`~repro.cluster.AnalysisSession` per worker.

    ``capture=True`` (the fault-isolated sweep) returns ``("ok", analyzed)``
    or a picklable ``("err", payload)`` instead of raising, so the parent's
    submit/collect loop can distinguish a chart failure from a dead worker;
    the default raises through, preserving the ``fail_fast`` reference
    semantics of ``Executor.map``.  The parent owns the attempt counter and
    ships it with the task, so injected fault scopes replay deterministically
    across respawned pools.
    """
    global _WORKER_ANALYZER
    analyzer = _WORKER_ANALYZER
    if analyzer is None or analyzer.settings != settings:
        analyzer = MisconfigurationAnalyzer(settings=settings)
        _WORKER_ANALYZER = analyzer
    with faults.fault_scope(key or f"{app.dataset}/{app.name}", attempt):
        faults.fault_point(faults.WORKER_KILL)
        if not capture:
            return _analyze_application(app, analyzer, fingerprint)
        try:
            analyzed = _analyze_application(app, analyzer, fingerprint, stage_errors=True)
            analyzed.attempts = attempt
            return ("ok", analyzed)
        except Exception as exc:  # ships as data: workers never poison the pool
            return ("err", _failure_payload(exc))


class _PoolSweep:
    """The self-healing process-pool sweep: submit/collect with a watchdog.

    Each round submits every still-pending chart (attempt number attached),
    then collects.  A chart that returns an error payload is charged an
    attempt and retried (with backoff) or quarantined.  If the pool breaks
    -- a worker died, or the watchdog terminated a worker running an overdue
    chart -- completed results are kept, the pool is respawned, and the
    charts that were in flight are re-run *solo* (one in flight at a time):
    a solo breakage attributes the crash exactly, so only the guilty chart
    is charged.  Charts never observed to fail attributably keep their
    attempt count, which makes the whole schedule deterministic for any
    seeded fault plan.
    """

    def __init__(
        self,
        applications: list[BuiltApplication],
        fingerprints: list[str],
        settings: AnalyzerSettings,
        workers: int,
        max_attempts: int,
        chart_timeout: float | None,
        retry_backoff: float,
        fault_plan: faults.FaultPlan | None,
        on_outcome=None,
    ) -> None:
        self.applications = applications
        self.fingerprints = fingerprints
        self.settings = settings
        self.workers = workers
        self.max_attempts = max_attempts
        self.chart_timeout = chart_timeout
        self.retry_backoff = retry_backoff
        self.fault_plan = fault_plan
        #: Called with each finalized outcome the moment it is decided (ok
        #: or quarantine) -- the durable sweep's per-chart persistence hook.
        self.on_outcome = on_outcome
        self.outcomes: list[AnalyzedApplication | AnalysisFailure | None]
        self.outcomes = [None] * len(applications)
        self.attempts = [0] * len(applications)
        self.pool: ProcessPoolExecutor | None = None

    # Pool lifecycle ----------------------------------------------------------
    def _spawn_pool(self) -> ProcessPoolExecutor:
        if self.pool is None:
            self.pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_pool_worker_init,
                initargs=(self.fault_plan,),
            )
        return self.pool

    def _discard_pool(self) -> None:
        if self.pool is not None:
            self.pool.shutdown(wait=True, cancel_futures=True)
            self.pool = None

    def _terminate_pool(self) -> None:
        # Forcibly kill the worker processes (the watchdog path): pending
        # futures then resolve to BrokenProcessPool like any worker death.
        if self.pool is None:
            return
        processes = getattr(self.pool, "_processes", None) or {}
        for process in list(processes.values()):
            process.terminate()

    # Submission --------------------------------------------------------------
    def _submit(self, index: int) -> Future:
        app = self.applications[index]
        return self._spawn_pool().submit(
            _analyze_application_in_subprocess,
            app,
            self.fingerprints[index],
            self.settings,
            key=f"{app.dataset}/{app.name}",
            attempt=self.attempts[index] + 1,
            capture=True,
        )

    def _record(self, index: int, tag: str, payload) -> bool:
        """Charge an attributable outcome; True when the chart needs a retry."""
        self.attempts[index] += 1
        if tag == "ok":
            self.outcomes[index] = payload
            self._finalize(index)
            return False
        if self.attempts[index] >= self.max_attempts:
            self.outcomes[index] = _failure_from(
                self.applications[index], payload, self.attempts[index]
            )
            self._finalize(index)
            return False
        return True

    def _finalize(self, index: int) -> None:
        if self.on_outcome is not None:
            self.on_outcome(self.outcomes[index])

    def _pool_death_payload(self, index: int, timed_out: bool) -> tuple:
        app = self.applications[index]
        if timed_out:
            return (
                FAILURE_STAGE_TIMEOUT,
                "TimeoutError",
                f"chart {app.dataset}/{app.name} exceeded the per-chart "
                f"watchdog ({self.chart_timeout}s); worker terminated",
                "",
            )
        return (
            FAILURE_STAGE_WORKER,
            "BrokenProcessPool",
            f"worker process died while analyzing {app.dataset}/{app.name}",
            "",
        )

    # Collection --------------------------------------------------------------
    def _collect(
        self, futures: dict[Future, int], solo: bool
    ) -> tuple[list[int], list[int], bool]:
        """Await ``futures``; returns (retry indices, suspect indices, broke).

        Suspects are charts whose future resolved to a pool breakage in a
        *parallel* round -- unattributable, so they are not charged and go
        to a solo re-run.  In a solo round (one future) a breakage IS
        attributable and is charged as a worker death (or a timeout, when
        this collector's watchdog terminated the pool itself).
        """
        retry: list[int] = []
        suspects: list[int] = []
        broke = False
        started: dict[Future, float] = {}
        overdue: set[Future] = set()
        not_done = set(futures)
        while not_done:
            done, not_done = wait(not_done, timeout=_POLL_S, return_when=FIRST_COMPLETED)
            now = time.monotonic()
            for fut in done:
                index = futures[fut]
                exc = fut.exception()
                if isinstance(exc, BrokenExecutor):
                    broke = True
                    if solo or fut in overdue:
                        if self._record(
                            index, "err", self._pool_death_payload(index, fut in overdue)
                        ):
                            retry.append(index)
                    else:
                        suspects.append(index)
                elif exc is not None:
                    # Submission-side failure (e.g. unpicklable task): it is
                    # chart-attributable, never a worker death.
                    if self._record(index, "err", _failure_payload(exc)):
                        retry.append(index)
                else:
                    tag, payload = fut.result()
                    if self._record(index, tag, payload):
                        retry.append(index)
            if not not_done:
                break
            for fut in not_done:
                if fut not in started and fut.running():
                    started[fut] = now
            if self.chart_timeout is not None and not broke:
                late = [
                    fut
                    for fut, begun in started.items()
                    if fut in not_done and now - begun > self.chart_timeout
                ]
                if late:
                    # The overdue charts are known: their breakage is charged
                    # as a timeout, everyone else in flight becomes a suspect.
                    overdue.update(late)
                    broke = True
                    self._terminate_pool()
        return retry, suspects, broke

    def _run_round(self, batch: list[int], solo: bool) -> list[int]:
        """Run one batch (parallel or solo); returns the indices to retry."""
        futures = {self._submit(index): index for index in batch}
        retry, suspects, broke = self._collect(futures, solo=solo)
        if broke:
            self._discard_pool()
        for suspect in suspects:
            # One chart in flight at a time: breakage is now attributable.
            retry.extend(self._run_round([suspect], solo=True))
        return retry

    def run(self) -> list[AnalyzedApplication | AnalysisFailure]:
        """Sweep every chart to an outcome; catalogue order preserved."""
        pending = list(range(len(self.applications)))
        try:
            while pending:
                oldest = max((self.attempts[index] for index in pending), default=0)
                if oldest > 0:
                    time.sleep(_backoff_delay(oldest, self.retry_backoff))
                pending = sorted(self._run_round(pending, solo=False))
        finally:
            self._discard_pool()
        return list(self.outcomes)


def run_full_evaluation(
    datasets: tuple[str, ...] = DATASET_ORDER,
    analyzer: MisconfigurationAnalyzer | None = None,
    applications: list[BuiltApplication] | None = None,
    workers: int | None = None,
    fail_fast: bool = False,
    max_attempts: int = 3,
    chart_timeout: float | None = None,
    retry_backoff: float = 0.05,
    fault_plan: faults.FaultPlan | None = None,
    store: ResultStore | str | Path | None = None,
    resume: bool = False,
    settings: AnalyzerSettings | None = None,
) -> EvaluationResult:
    """Analyze the complete catalogue and run the cluster-wide pass.

    ``workers`` enables the parallel evaluation path.  Charts are fully
    independent (observations share nothing across charts, the rules are
    stateless), so with the default analyzer they fan out on a *process*
    pool -- real parallelism for this CPU-bound, GIL-holding workload; the
    per-chart inputs and reports are plain picklable dataclasses.  A custom
    ``analyzer`` (whose rules or cluster factory may not pickle) falls back
    to a thread pool, which mainly helps if its hooks release the GIL.
    Result ordering is deterministic either way, and the cluster-wide M4*
    pass always runs sequentially afterwards over the ordered inventories.

    Fault isolation (the default, ``fail_fast=False``): a failing chart is
    retried up to ``max_attempts`` times with capped exponential backoff
    (``retry_backoff`` seconds, doubling), then quarantined as an
    :class:`AnalysisFailure` on ``EvaluationResult.failed`` while the sweep
    continues.  On the process-pool path the sweep also survives worker
    deaths (``BrokenProcessPool``) by respawning the pool, and
    ``chart_timeout`` arms a per-chart wall-clock watchdog (process pool
    only: in-process execution cannot be preempted).  ``fail_fast=True``
    restores the historical behaviour -- first error raises, no retries, no
    failure records.  ``fault_plan`` arms a deterministic
    :class:`repro.faults.FaultPlan` for the duration of the sweep (parent
    and workers alike) -- the chaos suites' entry point.

    Durability: ``store`` (a :class:`~repro.store.ResultStore` or a
    directory path) makes the sweep consult and feed the content-addressed
    result store -- completed charts load instead of recomputing, fresh
    outcomes persist the moment they finish, and the default analyzer's
    workers share the store for their observation memos.  ``resume=True``
    additionally continues the store's sweep journal (a fresh sweep rotates
    it); the analyzed output is byte-identical with or without a store.
    ``EvaluationResult.store_stats`` carries the accounting either way.

    ``settings`` builds the default analyzer from explicit
    :class:`~repro.core.AnalyzerSettings` while keeping every default-path
    optimization (process pools, store shipping) -- the delta evaluator's
    entry point into non-default-settings sweeps.  It is mutually exclusive
    with ``analyzer``, whose custom rules or cluster factory the sweep
    cannot vouch for.
    """
    custom_analyzer = analyzer is not None
    if custom_analyzer and settings is not None:
        raise ValueError("pass either analyzer or settings, not both")
    analyzer = analyzer or MisconfigurationAnalyzer(settings=settings or AnalyzerSettings())
    applications = applications if applications is not None else build_catalog(datasets)

    store_obj = store if isinstance(store, (ResultStore, type(None))) else ResultStore(store)
    if resume and store_obj is None:
        raise ValueError("resume=True requires a store")
    if store_obj is not None and not custom_analyzer and not analyzer.settings.store_dir:
        # Ship the store to the default analyzer (and its pool workers) so
        # observation memos promote to it too.  Result keys exclude
        # ``store_dir``, so this cannot change what is computed.
        analyzer = MisconfigurationAnalyzer(
            settings=replace(analyzer.settings, store_dir=str(store_obj.root))
        )

    previous_plan = faults.armed_plan()
    if fault_plan is not None:
        faults.arm(fault_plan)
    shipped_plan = faults.armed_plan()
    result = EvaluationResult()
    durable: _DurableSweep | None = None
    try:
        loaded: dict[int, AnalyzedApplication] = {}
        if store_obj is not None:
            durable = _DurableSweep(store_obj, applications, analyzer.settings, resume)
            loaded = durable.load()
        pending = [
            app for index, app in enumerate(applications) if index not in loaded
        ]
        note = durable.note if durable is not None else (lambda outcome: outcome)
        outcomes: list[AnalyzedApplication | AnalysisFailure | None] = []
        if pending and workers and workers > 1 and not custom_analyzer:
            fingerprints = catalog_fingerprints(pending)
            if fail_fast:
                with ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_pool_worker_init,
                    initargs=(shipped_plan,),
                ) as pool:
                    # Chunk the map: per-chart analysis is ~10ms, so one-item
                    # tasks would spend comparable time on pickling round-trips.
                    for analyzed in pool.map(
                        partial(
                            _analyze_application_in_subprocess,
                            settings=analyzer.settings,
                        ),
                        pending,
                        fingerprints,
                        chunksize=max(len(pending) // (workers * 4), 1),
                    ):
                        outcomes.append(note(analyzed))
            else:
                sweep = _PoolSweep(
                    pending,
                    fingerprints,
                    analyzer.settings,
                    workers,
                    max_attempts,
                    chart_timeout,
                    retry_backoff,
                    shipped_plan,
                    on_outcome=note if durable is not None else None,
                )
                outcomes = sweep.run()
        elif pending and workers and workers > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                if fail_fast:
                    for analyzed in pool.map(
                        lambda app: _analyze_application(
                            app, analyzer, app.fingerprint()
                        ),
                        pending,
                    ):
                        outcomes.append(note(analyzed))
                else:
                    # ``fault_scope`` is thread-local, so per-chart scoping
                    # holds on the thread pool too.  No watchdog: threads
                    # cannot be preempted.  ``note`` runs on the pool threads
                    # (it is lock-guarded) so persistence stays per-chart.
                    outcomes = list(
                        pool.map(
                            lambda app: note(
                                _run_isolated(
                                    app,
                                    analyzer,
                                    app.fingerprint(),
                                    max_attempts,
                                    retry_backoff,
                                )
                            ),
                            pending,
                        )
                    )
        elif fail_fast:
            for app in pending:
                outcomes.append(note(_analyze_application(app, analyzer, app.fingerprint())))
        else:
            for app in pending:
                outcomes.append(
                    note(
                        _run_isolated(
                            app, analyzer, app.fingerprint(), max_attempts, retry_backoff
                        )
                    )
                )
        merged = durable.merge(loaded, outcomes) if durable is not None else outcomes
        if fail_fast:
            result.analyzed = [
                outcome for outcome in merged if isinstance(outcome, AnalyzedApplication)
            ]
        else:
            _split_outcomes(merged, result)
    finally:
        if durable is not None:
            result.store_stats = durable.finish()
        if fault_plan is not None:
            faults.arm(previous_plan)
    apply_cluster_wide_pass(result)
    return result


def apply_cluster_wide_pass(result: EvaluationResult) -> None:
    """Run the cluster-wide M4* pass over ``result`` and attribute findings.

    The global label-collision scan is the one cross-chart stage of the
    pipeline: it consumes *every* analyzed inventory (in catalogue order)
    and appends the resulting M4* findings to the affected reports, through
    the result's own key index (shared with ``report_for``).  Shared
    between from-scratch sweeps and the delta evaluator -- a delta round
    reuses pre-M4* reports and re-runs this pass over the merged
    inventories, which is how cross-chart edges whose inputs moved (a chart
    added, removed or re-labelled) are recomputed without re-analyzing
    unchanged charts.
    """
    inventories = [
        ApplicationInventory(
            application=f"{entry.application.dataset}/{entry.application.name}",
            inventory=entry.inventory,
            dataset=entry.application.dataset,
        )
        for entry in result.analyzed
    ]
    # Cluster-wide pass: attribute the extra M4* findings back to the
    # reports, through the result's own key index (shared with report_for).
    extra = global_collision_findings(inventories)
    result._index()
    for finding in extra:
        entry = result._id_index.get(finding.application)
        if entry is not None:
            finding.application = entry.application.name
            entry.report.add([finding])


def _split_outcomes(
    outcomes: list[AnalyzedApplication | AnalysisFailure | None],
    result: EvaluationResult,
) -> None:
    """Partition sweep outcomes into ``analyzed`` / ``failed``, order kept."""
    for outcome in outcomes:
        if isinstance(outcome, AnalyzedApplication):
            result.analyzed.append(outcome)
        elif isinstance(outcome, AnalysisFailure):
            result.failed.append(outcome)
