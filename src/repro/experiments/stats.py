"""Section 4.3.1 statistics: use-case averages and headline percentages."""

from __future__ import annotations

from dataclasses import dataclass

from .evaluation import EvaluationResult, USE_CASE_OF_DATASET


@dataclass
class UseCaseStats:
    """Average misconfigurations per application for one use case."""

    use_case: str
    applications: int
    affected: int
    total_misconfigurations: int

    @property
    def average(self) -> float:
        return self.total_misconfigurations / self.applications if self.applications else 0.0

    @property
    def affected_share(self) -> float:
        return self.affected / self.applications if self.applications else 0.0


@dataclass
class HeadlineStats:
    """The headline numbers quoted in Section 4.3.1."""

    total_applications: int
    affected_applications: int
    total_misconfigurations: int
    use_cases: list[UseCaseStats]

    @property
    def affected_share(self) -> float:
        return self.affected_applications / self.total_applications

    def use_case(self, name: str) -> UseCaseStats:
        for stats in self.use_cases:
            if stats.use_case == name:
                return stats
        raise KeyError(name)

    def third_party_vs_internal_ratio(self) -> float:
        """How many times more misconfigured third-party charts are (paper: 3-4x)."""
        internal = self.use_case("internal").average
        sharing = self.use_case("sharing").average
        production = self.use_case("production").average
        external = (sharing + production) / 2
        return external / internal if internal else float("inf")


def compute_stats(result: EvaluationResult) -> HeadlineStats:
    """Compute the Section 4.3.1 statistics from an evaluation run."""
    use_cases: list[UseCaseStats] = []
    for use_case in ("sharing", "internal", "production"):
        entries = result.by_use_case(use_case)
        use_cases.append(
            UseCaseStats(
                use_case=use_case,
                applications=len(entries),
                affected=sum(1 for entry in entries if entry.report.affected),
                total_misconfigurations=sum(entry.report.total for entry in entries),
            )
        )
    summary = result.summary
    return HeadlineStats(
        total_applications=summary.total_applications,
        affected_applications=summary.affected_applications,
        total_misconfigurations=summary.total_misconfigurations,
        use_cases=use_cases,
    )


def format_stats(stats: HeadlineStats) -> str:
    lines = [
        f"applications analyzed:        {stats.total_applications}",
        f"applications affected:        {stats.affected_applications} "
        f"({stats.affected_share:.0%})",
        f"total misconfigurations:      {stats.total_misconfigurations}",
        "",
        "average misconfigurations per application by use case:",
    ]
    for use_case in stats.use_cases:
        lines.append(
            f"  {use_case.use_case:<12} {use_case.average:5.2f} "
            f"({use_case.affected}/{use_case.applications} affected)"
        )
    lines.append(
        f"third-party vs internal ratio: {stats.third_party_vs_internal_ratio():.1f}x"
    )
    return "\n".join(lines)


#: Paper-reported reference values (Section 4.3.1) used in EXPERIMENTS.md.
PAPER_AFFECTED_SHARE = 0.90
PAPER_AVERAGE_SHARING = 3.35
PAPER_AVERAGE_PRODUCTION = 4.44
PAPER_AVERAGE_INTERNAL = 1.11

__all__ = [
    "HeadlineStats",
    "PAPER_AFFECTED_SHARE",
    "PAPER_AVERAGE_INTERNAL",
    "PAPER_AVERAGE_PRODUCTION",
    "PAPER_AVERAGE_SHARING",
    "USE_CASE_OF_DATASET",
    "UseCaseStats",
    "compute_stats",
    "format_stats",
]
