"""Incremental delta-evaluation: re-verify only what changed (watch mode).

The paper's premise is *continuous* defense: clusters drift one chart or
values file at a time, yet a from-scratch sweep re-evaluates all 290
catalogue charts on every run.  :class:`DeltaEvaluator` closes that gap.
Given a prior :class:`~repro.experiments.evaluation.EvaluationResult` (or
the durable :class:`~repro.store.ResultStore` + journal from a previous
sweep) and the current chart set, it classifies every chart by comparing
the per-input classifier fingerprints
(:func:`~repro.experiments.evaluation.classifier_fingerprints`):

============  =====================================================
class         meaning
============  =====================================================
unchanged     every input fingerprint equal, prior result healthy --
              the pre-M4* report and inventory are reused as-is
re-render     the chart content moved (values and/or templates) --
              render, observe and analyze run again
re-observe    the registered container behaviours moved while the
              chart content held -- the runtime snapshot is stale
re-analyze    the analyzer settings moved -- rule evaluation is stale
added         no prior record exists for the chart key
============  =====================================================

Charts present in the prior state but absent now are *removed*: their
entries simply do not appear in the merged result (and the lazy
``report_for`` / ``by_dataset`` indexes rebuild on identity, so no
orphaned key survives a removal).

Staleness rules
---------------

Reuse is sound only for the per-chart (pre-M4*) stage: the cluster-wide
label-collision pass consumes *every* inventory, so any change anywhere
can move M4* findings on unchanged charts.  A delta round therefore
strips M4* findings from reused reports (into fresh
:class:`~repro.core.AnalysisReport` objects -- the prior result is never
mutated) and re-runs
:func:`~repro.experiments.evaluation.apply_cluster_wide_pass` over the
merged inventories, exactly as a from-scratch sweep would.  A chart whose
prior attempt failed is always recomputed -- a quarantined failure is
never "unchanged".  The result is byte-identical to a from-scratch sweep
by construction; the differential suite in
``tests/experiments/test_delta_evaluation.py`` proves it over the full
catalogue for randomized change sets, serial and pooled, faults included.

Prior-state sources
-------------------

*In-memory*: the evaluator chains its own rounds (``_last``), or the
caller hands any prior ``EvaluationResult``.  This is the watch-mode hot
path -- no store reads, near-zero cost for a no-op round (the
``DELTA_NOOP_RATIO_LIMIT`` gate in ``benchmarks/run.py --check`` pins it
at <= 5% of a full sweep).

*Durable*: with a ``store``, classification reads the epoch-tagged
journal (:func:`repro.store.read_prior_state` -- last-wins, one live
record per chart key) and the sweep itself delegates to
:func:`~repro.experiments.evaluation.run_full_evaluation`'s durable path,
so content addressing does the reuse and every journal generation is
totally ordered by epoch.  ``repro sweep --since DIR`` is the CLI spelling.

``insidejob watch <dir>`` drives :func:`watch_directory`: scan a directory
of on-disk charts (:meth:`repro.helm.Chart.from_directory`), evaluate the
delta against the previous round, print one summary line per round.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from pathlib import Path

from .. import faults
from ..cluster import BehaviorRegistry
from ..core import (
    AnalysisReport,
    AnalyzerSettings,
    MisconfigClass,
    MisconfigurationAnalyzer,
)
from ..datasets import BuiltApplication, build_catalog, catalog_fingerprints
from ..helm import Chart
from ..store import ResultStore, read_prior_state
from .evaluation import (
    AnalyzedApplication,
    EvaluationResult,
    _PoolSweep,
    _run_isolated,
    _split_outcomes,
    apply_cluster_wide_pass,
    classifier_fingerprints,
    result_key,
    run_full_evaluation,
    settings_fingerprint,
)

#: Delta classifications, in reporting order.
DELTA_UNCHANGED = "unchanged"
DELTA_ADDED = "added"
DELTA_RE_RENDER = "re-render"
DELTA_RE_OBSERVE = "re-observe"
DELTA_RE_ANALYZE = "re-analyze"
DELTA_CLASSES = (
    DELTA_UNCHANGED,
    DELTA_ADDED,
    DELTA_RE_RENDER,
    DELTA_RE_OBSERVE,
    DELTA_RE_ANALYZE,
)

#: The classifier axes compared between prior and current fingerprints
#: (``chart`` is the aggregate; these four are the orthogonal inputs).
_AXES = ("values", "templates", "behaviors", "settings")


@dataclass(frozen=True)
class ChartDelta:
    """One chart's delta classification, with the inputs that moved."""

    unique_id: str
    classification: str
    reasons: tuple[str, ...] = ()


@dataclass(frozen=True)
class DeltaPlan:
    """What a delta round will reuse and what it must recompute.

    ``charts`` is aligned with the application list the plan was built
    for (catalogue order); ``removed`` names prior charts absent from the
    current set; ``prior_epoch`` is the journal epoch (durable prior) or
    the evaluator's completed round count (in-memory prior) the plan was
    classified against.
    """

    charts: tuple[ChartDelta, ...]
    removed: tuple[str, ...] = ()
    prior_epoch: int = 0

    def counts(self) -> dict[str, int]:
        """Chart count per classification (every class present, 0 or not)."""
        counts = {classification: 0 for classification in DELTA_CLASSES}
        for delta in self.charts:
            counts[delta.classification] += 1
        return counts

    def classification_of(self, unique_id: str) -> str | None:
        """The classification of one ``dataset/name`` key (None if absent)."""
        for delta in self.charts:
            if delta.unique_id == unique_id:
                return delta.classification
        return None

    def pending_indices(self) -> list[int]:
        """Indices (into the planned application list) needing recompute."""
        return [
            index
            for index, delta in enumerate(self.charts)
            if delta.classification != DELTA_UNCHANGED
        ]


@dataclass
class _PriorRecord:
    """One chart's prior state, from either source (memory or journal)."""

    fingerprints: dict | None
    ok: bool
    result_key: str = ""
    entry: AnalyzedApplication | None = None


def _strip_cluster_wide(entry: AnalyzedApplication) -> AnalyzedApplication:
    """A reusable pre-M4* copy of one prior analyzed entry.

    Prior in-memory results are *post*-M4*: the cluster-wide pass already
    appended its findings.  Only :func:`global_collision_findings` emits
    :data:`~repro.core.MisconfigClass.M4_GLOBAL` (per-chart rules emit
    M4A/B/C), so filtering it out reconstructs the exact pre-M4* report.
    The report object is fresh -- the new round's cluster-wide pass must
    never mutate the prior result's reports.
    """
    report = entry.report
    findings = [
        finding
        for finding in report.findings
        if finding.misconfig_class is not MisconfigClass.M4_GLOBAL
    ]
    return AnalyzedApplication(
        application=entry.application,
        report=AnalysisReport(
            application=report.application, dataset=report.dataset, findings=findings
        ),
        inventory=entry.inventory,
        attempts=entry.attempts,
    )


class DeltaEvaluator:
    """Incrementally re-evaluate a chart set against its prior state.

    One evaluator holds one :class:`~repro.core.MisconfigurationAnalyzer`
    across rounds, so the render cache and the LRU observation memo stay
    warm -- an unchanged-but-reclassified chart (say, a no-op touch) costs
    a cache hit, not a recompute.  ``evaluate`` returns a plain
    :class:`EvaluationResult` byte-identical to a from-scratch sweep of the
    same chart set, with ``delta_stats`` carrying the round's accounting.

    With ``store`` set, the evaluator is *durable*: classification reads
    the store's epoch-tagged journal and the sweep delegates to
    ``run_full_evaluation``'s content-addressed path (an explicit in-memory
    ``prior`` is ignored -- the store is the prior).  Without it, rounds
    chain in memory (``prior`` argument, or the evaluator's own last
    result), which is the near-zero-cost watch path.
    """

    def __init__(
        self,
        settings: AnalyzerSettings | None = None,
        store: ResultStore | str | Path | None = None,
        max_attempts: int = 3,
        retry_backoff: float = 0.05,
    ) -> None:
        base = settings or AnalyzerSettings()
        self.store = store if isinstance(store, (ResultStore, type(None))) else ResultStore(store)
        if self.store is not None and not base.store_dir:
            # Ship the store to the analyzer's observation memo too; the
            # settings fingerprint excludes store_dir, so classification
            # and result keys are unaffected.
            base = replace(base, store_dir=str(self.store.root))
        self.settings = base
        self.settings_fp = settings_fingerprint(base)
        self.analyzer = MisconfigurationAnalyzer(settings=base)
        self.max_attempts = max_attempts
        self.retry_backoff = retry_backoff
        #: Completed delta rounds (the in-memory analogue of a journal epoch).
        self.rounds = 0
        self._last: EvaluationResult | None = None
        #: Classifier fingerprints by application object identity.  A prior
        #: result's entries are the very objects classified in an earlier
        #: round, so their fingerprints never need re-hashing; pruned each
        #: plan to the objects still alive (prior + current generation).
        self._fp_memo: dict[int, tuple[BuiltApplication, dict]] = {}

    # Classification ----------------------------------------------------------
    def plan(
        self,
        applications: list[BuiltApplication],
        prior: EvaluationResult | None = None,
        prior_settings_fp: str | None = None,
    ) -> DeltaPlan:
        """Classify ``applications`` against the prior state, computing nothing.

        ``prior`` defaults to the evaluator's own last result (memory mode)
        or the store's journal (durable mode).  ``prior_settings_fp`` names
        the settings fingerprint the in-memory prior was computed under
        when it differs from this evaluator's -- every content-unchanged
        chart then classifies as re-analyze.
        """
        plan, _ = self._plan_with_index(list(applications), prior, prior_settings_fp)
        return plan

    def _plan_with_index(
        self,
        applications: list[BuiltApplication],
        prior: EvaluationResult | None,
        prior_settings_fp: str | None,
    ) -> tuple[DeltaPlan, dict[str, _PriorRecord]]:
        if prior is None and self.store is None:
            prior = self._last
        if isinstance(prior, EvaluationResult):
            prior_index = self._memory_prior_index(prior, prior_settings_fp)
            prior_epoch = self.rounds
        elif self.store is not None:
            prior_index, prior_epoch = self._store_prior_index()
        else:
            prior_index, prior_epoch = {}, 0
        deltas = []
        current_ids = set()
        for app in applications:
            unique_id = f"{app.dataset}/{app.name}"
            current_ids.add(unique_id)
            current = self._memoized_fingerprints(app, self.settings_fp)
            deltas.append(self._classify(app, current, prior_index.get(unique_id)))
        removed = tuple(
            sorted(unique_id for unique_id in prior_index if unique_id not in current_ids)
        )
        plan = DeltaPlan(charts=tuple(deltas), removed=removed, prior_epoch=prior_epoch)
        alive = {id(app) for app in applications}
        alive.update(
            id(record.entry.application)
            for record in prior_index.values()
            if record.entry is not None
        )
        self._fp_memo = {
            key: value for key, value in self._fp_memo.items() if key in alive
        }
        return plan, prior_index

    def _memoized_fingerprints(self, app: BuiltApplication, settings_fp: str) -> dict:
        """The classifier fingerprints of ``app``, hashed once per object.

        Keyed by object identity with the object retained in the value, so
        a recycled ``id`` can never serve another chart's fingerprints.
        Foreign settings fingerprints bypass the memo -- they only occur on
        explicit ``prior_settings_fp`` handoffs, never in the hot loop.
        """
        if settings_fp != self.settings_fp:
            return classifier_fingerprints(app, settings_fp)
        memoized = self._fp_memo.get(id(app))
        if memoized is not None and memoized[0] is app:
            return memoized[1]
        fingerprints = classifier_fingerprints(app, settings_fp)
        self._fp_memo[id(app)] = (app, fingerprints)
        return fingerprints

    def _memory_prior_index(
        self, prior: EvaluationResult, prior_settings_fp: str | None
    ) -> dict[str, _PriorRecord]:
        settings_fp = prior_settings_fp or self.settings_fp
        index: dict[str, _PriorRecord] = {}
        for entry in prior.analyzed:
            unique_id = f"{entry.application.dataset}/{entry.application.name}"
            # No result_key: an in-memory prior always carries classifier
            # fingerprints, so the legacy result-key fallback never fires.
            index[unique_id] = _PriorRecord(
                fingerprints=self._memoized_fingerprints(entry.application, settings_fp),
                ok=True,
                entry=entry,
            )
        for failure in prior.failed:
            # A quarantined chart has no reusable artefacts: prior-failure.
            index.setdefault(failure.unique_id, _PriorRecord(None, False))
        return index

    def _store_prior_index(self) -> tuple[dict[str, _PriorRecord], int]:
        state = read_prior_state(self.store.root)
        index: dict[str, _PriorRecord] = {}
        for unique_id, record in state.records.items():
            fingerprints = record.get("fp")
            index[unique_id] = _PriorRecord(
                fingerprints=fingerprints if isinstance(fingerprints, dict) else None,
                ok=record.get("status") == "ok",
                result_key=str(record.get("result") or ""),
            )
        return index, state.epoch

    def _classify(
        self, app: BuiltApplication, current: dict[str, str], prior: _PriorRecord | None
    ) -> ChartDelta:
        unique_id = f"{app.dataset}/{app.name}"
        if prior is None:
            return ChartDelta(unique_id, DELTA_ADDED, ("no prior record",))
        fingerprints = prior.fingerprints
        if fingerprints:
            moved = tuple(
                axis for axis in _AXES if fingerprints.get(axis) != current[axis]
            )
            if fingerprints.get("chart") != current["chart"]:
                # The render input moved; name the refined reason when the
                # orthogonal fingerprints pinpoint it (a metadata or
                # subchart edit moves only the aggregate).
                reasons = tuple(
                    axis for axis in moved if axis in ("values", "templates")
                ) or ("chart",)
                return ChartDelta(unique_id, DELTA_RE_RENDER, reasons)
            if "behaviors" in moved:
                return ChartDelta(unique_id, DELTA_RE_OBSERVE, ("behaviors",))
            if "settings" in moved:
                return ChartDelta(unique_id, DELTA_RE_ANALYZE, ("settings",))
        if not prior.ok:
            return ChartDelta(unique_id, DELTA_RE_RENDER, ("prior failure",))
        if fingerprints:
            return ChartDelta(unique_id, DELTA_UNCHANGED)
        # Pre-fingerprint journal record: the result key is the only signal.
        if prior.result_key and prior.result_key == result_key(app, self.settings_fp):
            return ChartDelta(unique_id, DELTA_UNCHANGED)
        return ChartDelta(unique_id, DELTA_RE_RENDER, ("result key moved",))

    # Evaluation --------------------------------------------------------------
    def evaluate(
        self,
        applications: list[BuiltApplication] | None = None,
        prior: EvaluationResult | None = None,
        *,
        prior_settings_fp: str | None = None,
        workers: int | None = None,
        chart_timeout: float | None = None,
        fault_plan: faults.FaultPlan | None = None,
        resume: bool = False,
    ) -> EvaluationResult:
        """Run one delta round; byte-identical to a from-scratch sweep.

        Reuses every unchanged chart's pre-M4* report and inventory,
        recomputes the rest (serial fault-isolated, or on the self-healing
        process pool when ``workers`` > 1), merges in catalogue order and
        re-runs the cluster-wide pass.  ``fault_plan`` arms deterministic
        chaos for the round; a chart that fails mid-delta lands on
        ``result.failed`` -- its stale prior entry is never served.
        ``resume`` only applies to the durable path (journal continuity).
        """
        applications = list(applications) if applications is not None else build_catalog()
        if self.store is not None:
            return self._evaluate_durable(
                applications,
                workers=workers,
                chart_timeout=chart_timeout,
                fault_plan=fault_plan,
                resume=resume,
            )
        plan, prior_index = self._plan_with_index(applications, prior, prior_settings_fp)

        reusable: dict[int, AnalyzedApplication] = {}
        pending: list[int] = []
        for index, delta in enumerate(plan.charts):
            record = prior_index.get(delta.unique_id)
            if (
                delta.classification == DELTA_UNCHANGED
                and record is not None
                and record.entry is not None
            ):
                reusable[index] = record.entry
            else:
                pending.append(index)

        if not pending and not plan.removed:
            # Pure no-op round: the chart set is identical and every input
            # held, so the prior *post*-M4* reports are valid wholesale --
            # the cluster-wide pass is a pure function of the unchanged
            # inventories.  Reuse the entries as-is (no strip, no re-pass);
            # later rounds never mutate them, they always strip into fresh
            # reports first.  This is what makes a no-op watch round
            # near-free (the ``DELTA_NOOP_RATIO_LIMIT`` gate).
            result = EvaluationResult()
            _split_outcomes(
                [reusable[index] for index in range(len(applications))], result
            )
            result.delta_stats = self._stats(
                plan,
                mode="memory",
                charts=len(applications),
                reused=len(reusable),
                recomputed=0,
                epoch=self.rounds + 1,
            )
            self.rounds += 1
            self._last = result
            return result

        # The cluster-wide context moved (some chart changed, appeared or
        # went away): reused entries must drop their prior M4* findings and
        # the pass re-runs over the merged inventories.
        reused = {
            index: _strip_cluster_wide(entry) for index, entry in reusable.items()
        }

        previous_plan = faults.armed_plan()
        if fault_plan is not None:
            faults.arm(fault_plan)
        shipped_plan = faults.armed_plan()
        try:
            pending_apps = [applications[index] for index in pending]
            if pending_apps and workers and workers > 1:
                sweep = _PoolSweep(
                    pending_apps,
                    catalog_fingerprints(pending_apps),
                    self.analyzer.settings,
                    workers,
                    self.max_attempts,
                    chart_timeout,
                    self.retry_backoff,
                    shipped_plan,
                )
                outcomes = sweep.run()
            else:
                outcomes = [
                    _run_isolated(
                        app,
                        self.analyzer,
                        app.fingerprint(),
                        self.max_attempts,
                        self.retry_backoff,
                    )
                    for app in pending_apps
                ]
        finally:
            if fault_plan is not None:
                faults.arm(previous_plan)

        result = EvaluationResult()
        fresh = iter(outcomes)
        merged = [
            reused[index] if index in reused else next(fresh)
            for index in range(len(applications))
        ]
        _split_outcomes(merged, result)
        apply_cluster_wide_pass(result)
        result.delta_stats = self._stats(
            plan,
            mode="memory",
            charts=len(applications),
            reused=len(reused),
            recomputed=len(pending),
            epoch=self.rounds + 1,
        )
        self.rounds += 1
        self._last = result
        return result

    def _evaluate_durable(
        self,
        applications: list[BuiltApplication],
        workers: int | None,
        chart_timeout: float | None,
        fault_plan: faults.FaultPlan | None,
        resume: bool,
    ) -> EvaluationResult:
        # Classify against the journal *before* the sweep rotates it, then
        # let the content-addressed durable path do the reuse -- it is the
        # proven byte-identical machinery, and the store read re-verifies
        # every entry (so even a lying journal cannot serve stale results).
        plan, _ = self._plan_with_index(applications, None, None)
        result = run_full_evaluation(
            applications=applications,
            workers=workers,
            max_attempts=self.max_attempts,
            chart_timeout=chart_timeout,
            retry_backoff=self.retry_backoff,
            fault_plan=fault_plan,
            store=self.store,
            resume=resume,
            settings=self.settings,
        )
        store_stats = result.store_stats or {}
        result.delta_stats = self._stats(
            plan,
            mode="store",
            charts=len(applications),
            reused=int(store_stats.get("loaded", 0)),
            recomputed=int(store_stats.get("computed", 0)),
            epoch=int(store_stats.get("journal_epoch", plan.prior_epoch)),
        )
        self.rounds += 1
        self._last = result
        return result

    def _stats(
        self,
        plan: DeltaPlan,
        mode: str,
        charts: int,
        reused: int,
        recomputed: int,
        epoch: int,
    ) -> dict:
        return {
            "mode": mode,
            "round": self.rounds + 1,
            "charts": charts,
            "classified": plan.counts(),
            "changed": [
                delta.unique_id
                for delta in plan.charts
                if delta.classification != DELTA_UNCHANGED
            ],
            "reasons": {
                delta.unique_id: list(delta.reasons)
                for delta in plan.charts
                if delta.reasons
            },
            "removed": list(plan.removed),
            "reused": reused,
            "recomputed": recomputed,
            "prior_epoch": plan.prior_epoch,
            "epoch": epoch,
        }


# Watch mode ------------------------------------------------------------------


@dataclass
class WatchedChart:
    """An on-disk chart under watch, quacking like a ``BuiltApplication``.

    The evaluation pipeline only touches ``chart`` / ``behaviors`` /
    ``dataset`` / ``name`` / ``fingerprint()``, so a watched directory
    needs no synthetic catalogue spec.  Behaviours default to an empty
    registry: unregistered images behave faithfully, the right null
    hypothesis for charts we have never observed.  Plain picklable, so
    pooled delta rounds fan watched charts out like catalogue ones.
    """

    chart: Chart
    behaviors: BehaviorRegistry = field(default_factory=BehaviorRegistry)
    dataset: str = "watch"
    use_case: str = "watch"
    _fingerprint: str | None = field(default=None, init=False, repr=False, compare=False)

    @property
    def name(self) -> str:
        """The chart name from ``Chart.yaml`` (or the directory name)."""
        return self.chart.name

    def fingerprint(self) -> str:
        """The chart's content fingerprint, hashed once and cached."""
        if self._fingerprint is None:
            self._fingerprint = self.chart.fingerprint()
        return self._fingerprint


def scan_chart_directory(
    root: Path | str, behaviors: BehaviorRegistry | None = None
) -> list[WatchedChart]:
    """Scan ``root`` for chart directories, sorted by name.

    ``root`` itself is the single chart when it holds a ``Chart.yaml``;
    otherwise every immediate subdirectory holding a ``Chart.yaml``, a
    ``values.yaml`` or a ``templates/`` directory is one chart.  Rescanned
    every watch round -- charts added to or removed from the directory
    show up as ``added`` / removed in the next delta plan.
    """
    base = Path(root)
    registry = behaviors if behaviors is not None else BehaviorRegistry()
    if (base / "Chart.yaml").is_file():
        candidates = [base]
    elif base.is_dir():
        candidates = sorted(
            (
                child
                for child in base.iterdir()
                if child.is_dir()
                and (
                    (child / "Chart.yaml").is_file()
                    or (child / "values.yaml").is_file()
                    or (child / "templates").is_dir()
                )
            ),
            key=lambda child: child.name,
        )
    else:
        candidates = []
    return [
        WatchedChart(chart=Chart.from_directory(candidate), behaviors=registry)
        for candidate in candidates
    ]


def format_watch_round(round_number: int, result: EvaluationResult) -> str:
    """One watch-round summary line: classifications, findings, failures."""
    stats = result.delta_stats or {}
    counts = stats.get("classified", {})
    parts = [
        f"{counts[classification]} {classification}"
        for classification in DELTA_CLASSES
        if counts.get(classification)
    ]
    removed = stats.get("removed") or []
    if removed:
        parts.append(f"{len(removed)} removed")
    body = ", ".join(parts) if parts else "no charts"
    summary = result.summary
    line = (
        f"round {round_number}: {stats.get('charts', len(result.analyzed))} "
        f"chart{'s' if stats.get('charts', len(result.analyzed)) != 1 else ''} "
        f"({body}); {summary.total_misconfigurations} findings, "
        f"{summary.affected_applications} affected"
    )
    if result.failed:
        line += f", {len(result.failed)} quarantined"
    return line


def watch_directory(
    root: Path | str,
    rounds: int = 0,
    interval: float = 2.0,
    evaluator: DeltaEvaluator | None = None,
    behaviors: BehaviorRegistry | None = None,
    on_round=None,
    printer=print,
    sleep=time.sleep,
) -> EvaluationResult | None:
    """Re-verify a chart directory every ``interval`` seconds.

    Each round rescans ``root``, runs one delta round against the previous
    one (first round: everything ``added``) and prints one summary line.
    ``rounds`` bounds the loop (0 = until interrupted); Ctrl-C exits
    cleanly with the last result.  ``on_round(number, result)`` is the
    programmatic hook the tests and any CI wrapper drive.
    """
    evaluator = evaluator or DeltaEvaluator()
    completed = 0
    result: EvaluationResult | None = None
    try:
        while True:
            charts = scan_chart_directory(root, behaviors=behaviors)
            result = evaluator.evaluate(charts)
            completed += 1
            printer(format_watch_round(completed, result))
            if on_round is not None:
                on_round(completed, result)
            if rounds and completed >= rounds:
                break
            sleep(interval)
    except KeyboardInterrupt:
        pass
    return result
