"""Table 3: comparison of our solution against the state of the art.

Methodology (Section 4.4.2): build representative Kubernetes configurations
exhibiting every misconfiguration of Table 1, deploy them into a running
cluster, and run each tool in the mode its category permits (static tools
see only manifests, runtime/hybrid/platform tools also see the cluster).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baselines import (
    FOUND,
    MISSED,
    NOT_APPLICABLE,
    PARTIAL,
    BaselineInput,
    BaselineTool,
    all_tools,
)
from ..cluster import Cluster
from ..core import MisconfigClass, TABLE_ORDER
from ..datasets import InjectionPlan, build_application
from ..helm import render_chart
from ..k8s import Inventory
from ..probe import RuntimeScanner

#: Symbols used by the paper's Table 3.
SYMBOLS = {FOUND: "Y", PARTIAL: "~", MISSED: "x", NOT_APPLICABLE: "-"}

#: The paper's reported matrix (for regression comparison in tests/docs).
PAPER_TABLE3: dict[str, dict[str, str]] = {
    "Checkov":      {"M1": "-", "M2": "-", "M3": "-", "M4A": "x", "M4B": "x", "M4C": "x", "M4*": "-",
                     "M5A": "-", "M5B": "x", "M5C": "x", "M5D": "x", "M6": "Y", "M7": "Y"},
    "Kubeaudit":    {"M1": "-", "M2": "-", "M3": "-", "M4A": "x", "M4B": "x", "M4C": "x", "M4*": "-",
                     "M5A": "-", "M5B": "x", "M5C": "x", "M5D": "x", "M6": "Y", "M7": "Y"},
    "KubeLinter":   {"M1": "-", "M2": "-", "M3": "-", "M4A": "x", "M4B": "x", "M4C": "x", "M4*": "-",
                     "M5A": "-", "M5B": "x", "M5C": "x", "M5D": "Y", "M6": "x", "M7": "Y"},
    "Kube-score":   {"M1": "-", "M2": "-", "M3": "-", "M4A": "x", "M4B": "x", "M4C": "x", "M4*": "-",
                     "M5A": "-", "M5B": "x", "M5C": "x", "M5D": "Y", "M6": "Y", "M7": "x"},
    "Kubesec":      {"M1": "-", "M2": "-", "M3": "-", "M4A": "x", "M4B": "x", "M4C": "x", "M4*": "-",
                     "M5A": "-", "M5B": "x", "M5C": "x", "M5D": "x", "M6": "x", "M7": "Y"},
    "SLI-KUBE":     {"M1": "-", "M2": "-", "M3": "-", "M4A": "x", "M4B": "x", "M4C": "x", "M4*": "-",
                     "M5A": "-", "M5B": "x", "M5C": "x", "M5D": "x", "M6": "x", "M7": "Y"},
    "Kube-bench":   {"M1": "x", "M2": "x", "M3": "x", "M4A": "x", "M4B": "x", "M4C": "x", "M4*": "-",
                     "M5A": "x", "M5B": "x", "M5C": "x", "M5D": "x", "M6": "x", "M7": "Y"},
    "Kubescape":    {"M1": "x", "M2": "x", "M3": "x", "M4A": "~", "M4B": "~", "M4C": "~", "M4*": "x",
                     "M5A": "x", "M5B": "x", "M5C": "x", "M5D": "x", "M6": "Y", "M7": "Y"},
    "Trivy":        {"M1": "x", "M2": "x", "M3": "x", "M4A": "x", "M4B": "x", "M4C": "x", "M4*": "x",
                     "M5A": "x", "M5B": "x", "M5C": "x", "M5D": "x", "M6": "x", "M7": "Y"},
    "NeuVector":    {"M1": "x", "M2": "x", "M3": "x", "M4A": "x", "M4B": "x", "M4C": "x", "M4*": "x",
                     "M5A": "x", "M5B": "x", "M5C": "x", "M5D": "x", "M6": "x", "M7": "Y"},
    "StackRox":     {"M1": "x", "M2": "x", "M3": "x", "M4A": "x", "M4B": "x", "M4C": "x", "M4*": "x",
                     "M5A": "x", "M5B": "x", "M5C": "x", "M5D": "x", "M6": "x", "M7": "Y"},
    "Our solution": {"M1": "Y", "M2": "Y", "M3": "~", "M4A": "Y", "M4B": "Y", "M4C": "Y", "M4*": "Y",
                     "M5A": "Y", "M5B": "Y", "M5C": "Y", "M5D": "Y", "M6": "Y", "M7": "Y"},
}


def representative_application():
    """One chart exhibiting every per-application misconfiguration class."""
    plan = InjectionPlan(
        m1=2, m2=1, m3=1, m4a=1, m4b=1, m4c=1, m5a=1, m5b=1, m5c=1, m5d=1, m6=True, m7=1,
        global_collision=True,
    )
    return build_application(
        "representative", "Comparison Fixtures", plan, archetype="microservices",
        dataset="fixtures",
    )


def neighbour_application():
    """A second chart sharing the global collision marker (for M4*)."""
    plan = InjectionPlan(m6=True, m1=1, global_collision=True)
    return build_application(
        "neighbour", "Comparison Fixtures", plan, archetype="web", dataset="fixtures"
    )


@dataclass
class ToolRow:
    """One row of Table 3."""

    tool: str
    version: str
    category: str
    outcomes: dict[MisconfigClass, str] = field(default_factory=dict)

    def cells(self) -> list[str]:
        return [self.tool, self.version, self.category] + [
            SYMBOLS[self.outcomes[cls]] for cls in TABLE_ORDER
        ]


@dataclass
class ComparisonResult:
    """The regenerated Table 3."""

    rows: list[ToolRow] = field(default_factory=list)

    def row_for(self, tool_name: str) -> ToolRow:
        for row in self.rows:
            if row.tool == tool_name:
                return row
        raise KeyError(tool_name)

    def format_text(self) -> str:
        header = ["Tool", "Version", "Type"] + [cls.value for cls in TABLE_ORDER]
        rows = [row.cells() for row in self.rows]
        widths = [max(len(str(r[i])) for r in [header] + rows) for i in range(len(header))]
        lines = ["  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(header))]
        lines.extend(
            "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)) for row in rows
        )
        lines.append("")
        lines.append("Y = found   ~ = partially found   x = missed   - = not applicable")
        return "\n".join(lines)


def run_comparison(tools: list[BaselineTool] | None = None) -> ComparisonResult:
    """Regenerate Table 3 by running every tool on the representative charts."""
    tools = tools or all_tools()
    fixture = representative_application()
    neighbour = neighbour_application()

    rendered = render_chart(fixture.chart)
    neighbour_rendered = render_chart(neighbour.chart)
    inventory = Inventory(rendered.objects)
    neighbour_inventory = Inventory(neighbour_rendered.objects)

    # Deploy the fixture for tools that observe a running cluster.
    behaviors = fixture.behaviors.merged_with(neighbour.behaviors)
    cluster = Cluster(name="comparison", behaviors=behaviors)
    cluster.install(rendered)
    cluster.install(neighbour_rendered)
    observation = RuntimeScanner(cluster).observe(fixture.name)

    result = ComparisonResult()
    for tool in tools:
        data = BaselineInput(
            inventory=inventory,
            observation=observation if tool.sees_runtime else None,
            cluster_inventories=[neighbour_inventory] if tool.sees_runtime else [],
        )
        findings = tool.run(data)
        outcomes = {
            cls: tool.detection_outcome(cls, findings) for cls in TABLE_ORDER
        }
        result.rows.append(
            ToolRow(tool=tool.name, version=tool.version, category=tool.category, outcomes=outcomes)
        )
    return result


def paper_row(tool_name: str) -> dict[str, str]:
    """The paper's reported outcomes for one tool (for comparisons in tests)."""
    return dict(PAPER_TABLE3[tool_name])
