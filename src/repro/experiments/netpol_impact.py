"""Figure 4b: impact of network policies on endpoint reachability.

Methodology (Section 4.3.2): take every chart that *defines* network
policies, enable them if they are not active by default, re-deploy the
application into a clean cluster, and check which endpoints corresponding to
misconfigured ports remain reachable from an attacker-controlled pod in the
same cluster.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import partial

from ..cluster import (
    AnalysisSession,
    Cluster,
    ClusterError,
    OBSERVE_FULL,
    ReachabilityMatrix,
)
from ..datasets import DATASET_ORDER, BuiltApplication, build_catalog, catalog_fingerprints
from ..helm import render_chart
from ..probe import ReachabilityProbe


@dataclass
class ApplicationReachability:
    """Reachability outcome for one chart with its policies force-enabled."""

    application: str
    dataset: str
    defines_policies: bool
    uses_dynamic_ports: bool
    policies_enabled_by_default: bool = False
    reachable_misconfigured_pod_endpoints: int = 0
    reachable_dynamic_pod_endpoints: int = 0
    reachable_pods: set[str] = field(default_factory=set)
    reachable_pods_via_dynamic: set[str] = field(default_factory=set)
    reachable_misconfigured_services: set[str] = field(default_factory=set)

    @property
    def affected(self) -> bool:
        """Misconfigured endpoints remain reachable despite the policies."""
        return bool(self.reachable_pods or self.reachable_misconfigured_services)


@dataclass
class DatasetReachabilityRow:
    """One row of Figure 4b."""

    dataset: str
    policies_defined: int = 0
    policies_enabled_by_default: int = 0
    affected: int = 0
    reachable_pods: int = 0
    reachable_pods_dynamic: int = 0
    reachable_services: int = 0

    def cells(self) -> list[str]:
        return [
            self.dataset,
            f"{self.policies_defined} ({self.policies_enabled_by_default})",
            str(self.affected),
            f"{self.reachable_pods} ({self.reachable_pods_dynamic})",
            str(self.reachable_services),
        ]


@dataclass
class NetpolImpactResult:
    """The full Figure 4b table."""

    applications: list[ApplicationReachability] = field(default_factory=list)

    def rows(self) -> list[DatasetReachabilityRow]:
        rows: dict[str, DatasetReachabilityRow] = {}
        for entry in self.applications:
            row = rows.setdefault(entry.dataset, DatasetReachabilityRow(dataset=entry.dataset))
            if not entry.defines_policies:
                continue
            row.policies_defined += 1
            if entry.policies_enabled_by_default:
                row.policies_enabled_by_default += 1
            if entry.affected:
                row.affected += 1
            row.reachable_pods += len(entry.reachable_pods)
            row.reachable_pods_dynamic += len(entry.reachable_pods_via_dynamic)
            row.reachable_services += len(entry.reachable_misconfigured_services)
        return [rows[dataset] for dataset in sorted(rows)]

    def format_text(self) -> str:
        header = ["Dataset", "Policies defined (enabled)", "Affected", "Reachable pods (dynamic)",
                  "Reachable services"]
        rows = [row.cells() for row in self.rows() if row.policies_defined]
        widths = [max(len(str(r[i])) for r in [header] + rows) for i in range(len(header))]
        lines = ["  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(header))]
        lines.extend(
            "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)) for row in rows
        )
        return "\n".join(lines)


#: Shared sessions for the sweep, one per ``compiled`` flag: each worker
#: process (or the serial sweep) recycles a single cluster skeleton across
#: every chart it probes instead of rebuilding one per chart.
_SESSIONS: dict[bool, AnalysisSession] = {}


def _shared_session(compiled: bool) -> AnalysisSession:
    session = _SESSIONS.get(compiled)
    if session is None:
        session = AnalysisSession(
            name="netpol-impact",
            observe_mode=OBSERVE_FULL,
            compiled_policies=compiled,
        )
        _SESSIONS[compiled] = session
    return session


def probe_application_with_policies(
    app: BuiltApplication,
    compiled: bool = True,
    fingerprint: str | None = None,
    session: AnalysisSession | None = None,
    pooled: bool = True,
) -> ApplicationReachability:
    """Force-enable the chart's policies, deploy it, and probe reachability.

    ``compiled=False`` pins the cluster to the naive policy evaluator -- the
    pre-compilation reference path kept for benchmarks.  ``fingerprint``
    keys the render cache without re-hashing the chart.  The cluster comes
    from ``session`` (default: a process-wide pooled session, recycled via
    ``Cluster.reset()`` between charts); ``pooled=False`` rebuilds a
    throw-away cluster per chart, the seed reference behaviour the
    conformance suite diffs against.
    """
    outcome = ApplicationReachability(
        application=app.name,
        dataset=app.dataset,
        defines_policies=app.defines_network_policies,
        uses_dynamic_ports=any(c.dynamic_ports for c in app.spec.components),
        policies_enabled_by_default=app.network_policies_enabled_by_default,
    )
    if not app.defines_network_policies:
        return outcome
    rendered = render_chart(
        app.chart,
        overrides={"networkPolicy": {"enabled": True}},
        fingerprint=fingerprint,
    )
    if session is None and pooled:
        session = _shared_session(compiled)
    try:
        if session is not None:
            with session.lease(app.behaviors) as cluster:
                _probe_installed(cluster, app, rendered, outcome)
        else:
            cluster = Cluster(
                name="netpol-impact", behaviors=app.behaviors, compiled_policies=compiled
            )
            _probe_installed(cluster, app, rendered, outcome)
    except ClusterError as exc:
        # Attribute the error to the chart before it propagates: sweep-level
        # callers (and the CLI) then print one actionable line instead of a
        # context-free traceback.  ``with_context`` survives the pickle back
        # from a pool worker (ClusterError.__reduce__).
        raise exc.with_context(f"{app.dataset}/{app.name}")
    return outcome


def _probe_installed(cluster, app, rendered, outcome) -> None:
    """Install ``rendered`` into ``cluster`` and fill in ``outcome``."""
    cluster.install(rendered)
    probe = ReachabilityProbe(cluster)
    attacker = probe.ensure_attacker()
    app_pods = cluster.running_pods(app_name=app.name)
    bindings = cluster.service_bindings()
    host_baseline = cluster.host_port_baseline()
    # One compiled index + decision cache for the whole probe run: replicas
    # and repeated ports resolve from the matrix memo instead of re-scanning
    # the policy list per connection attempt.  Built on the first attempt --
    # about a third of the catalogue's policy-bearing charts expose no
    # misconfigured endpoint at all and never need policy machinery.
    matrix: ReachabilityMatrix | None = None

    def attempt_matrix() -> ReachabilityMatrix:
        nonlocal matrix
        if matrix is None:
            matrix = cluster.network.reachability_matrix(
                cluster.policies_view(), app_pods, bindings
            )
        return matrix
    for pod in app_pods:
        declared = pod.declared_ports("TCP") | pod.declared_ports("UDP")
        for socket in pod.sockets:
            if not socket.reachable_from_network:
                continue
            misconfigured = (
                socket.dynamic
                or socket.port not in declared
                or pod.host_network
            )
            if pod.host_network and socket.port in host_baseline:
                # The node's own services are not part of the application.
                continue
            if not misconfigured:
                continue
            attempt = attempt_matrix().connect(
                attacker, pod, socket.port, socket.protocol
            )
            if attempt.success:
                outcome.reachable_misconfigured_pod_endpoints += 1
                outcome.reachable_pods.add(pod.name)
                if socket.dynamic:
                    outcome.reachable_dynamic_pod_endpoints += 1
                    outcome.reachable_pods_via_dynamic.add(pod.name)
    for binding in bindings:
        if not any(backend.app == app.name for backend in binding.backends):
            continue
        for service_port in binding.service.ports:
            target = service_port.resolved_target()
            targets_misconfigured = False
            for backend in binding.backends:
                resolved = (
                    target if isinstance(target, int) else backend.named_ports().get(str(target))
                )
                if resolved is None:
                    continue
                if resolved not in backend.declared_ports("TCP"):
                    targets_misconfigured = True
            if not targets_misconfigured:
                continue
            attempt = attempt_matrix().connect_via_service(
                attacker, binding, service_port.port, service_port.protocol
            )
            if attempt.success:
                outcome.reachable_misconfigured_services.add(binding.service.name)


def _probe_with_fingerprint(
    app: BuiltApplication, fingerprint: str, compiled: bool, pooled: bool = True
) -> ApplicationReachability:
    """Process-pool worker shim: positional ``(app, fingerprint)`` for map."""
    return probe_application_with_policies(
        app, compiled=compiled, fingerprint=fingerprint, pooled=pooled
    )


def run_netpol_impact(
    datasets: tuple[str, ...] = DATASET_ORDER,
    applications: list[BuiltApplication] | None = None,
    workers: int | None = None,
    compiled: bool = True,
    pooled: bool = True,
) -> NetpolImpactResult:
    """Run the Figure 4b experiment over the catalogue.

    Every chart is probed in an isolated cluster with picklable inputs and
    outputs, so ``workers`` fans the sweep out on a *process* pool (the
    probe is CPU-bound pure Python; threads would serialize on the GIL);
    ``Executor.map`` keeps the result order identical to the serial path.
    Each worker process recycles one pooled cluster skeleton across its
    charts (``pooled=False`` restores the throw-away-cluster-per-chart
    reference behaviour).  ``compiled=False`` runs the whole sweep on the
    naive reference evaluator (benchmark baseline).
    """
    applications = applications if applications is not None else build_catalog(datasets)
    result = NetpolImpactResult()
    if workers and workers > 1:
        # The parent ships content fingerprints with the charts: workers key
        # straight into their (fork-inherited) render cache instead of
        # re-hashing -- and skip re-rendering entirely when it is warm.
        fingerprints = catalog_fingerprints(applications)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # Chunked map: per-chart probes are milliseconds, so one-item
            # tasks would drown in pickling round-trips.
            result.applications = list(
                pool.map(
                    partial(_probe_with_fingerprint, compiled=compiled, pooled=pooled),
                    applications,
                    fingerprints,
                    chunksize=max(len(applications) // (workers * 4), 1),
                )
            )
    else:
        result.applications = [
            probe_application_with_policies(
                app, compiled=compiled, fingerprint=app.fingerprint(), pooled=pooled
            )
            for app in applications
        ]
    return result
