"""Figure 3 and Figure 4a: rankings and distribution of misconfigurations."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import AnalysisReport, EvaluationSummary, MisconfigClass, TABLE_ORDER


@dataclass
class RankedApplication:
    """One bar of Figure 3a / 3b."""

    label: str
    dataset: str
    total: int
    types: int
    counts: dict[MisconfigClass, int] = field(default_factory=dict)


def _ranked(report: AnalysisReport) -> RankedApplication:
    return RankedApplication(
        label=f"{report.application} ({report.dataset})",
        dataset=report.dataset,
        total=report.total,
        types=report.type_count(),
        counts={cls: count for cls, count in report.count_by_class().items() if count},
    )


def figure3a(summary: EvaluationSummary, limit: int = 10) -> list[RankedApplication]:
    """The applications with the highest number of misconfigurations."""
    return [_ranked(report) for report in summary.top_by_count(limit)]


def figure3b(summary: EvaluationSummary, limit: int = 10) -> list[RankedApplication]:
    """The applications with the highest number of misconfiguration *types*."""
    return [_ranked(report) for report in summary.top_by_types(limit)]


def format_figure3(ranked: list[RankedApplication], metric: str = "total") -> str:
    """Render a Figure 3 style horizontal bar chart as text."""
    lines: list[str] = []
    for entry in ranked:
        value = entry.total if metric == "total" else entry.types
        breakdown = " ".join(
            f"{cls.value}:{count}" for cls, count in sorted(entry.counts.items(), key=lambda kv: kv[0].value)
        )
        lines.append(f"{entry.label:<55} {'#' * value:<20} {value:>3}  [{breakdown}]")
    return "\n".join(lines)


@dataclass
class DistributionSummary:
    """Figure 4a: misconfigurations per application plus concentration stats."""

    per_application: list[int]
    share_apps_ge_10: float
    share_findings_ge_10: float
    share_apps_5_to_9: float
    share_findings_5_to_9: float

    @property
    def total(self) -> int:
        return sum(self.per_application)


def figure4a(summary: EvaluationSummary) -> DistributionSummary:
    """The distribution of misconfiguration counts across applications."""
    distribution = summary.distribution()
    apps_ge_10, findings_ge_10 = summary.concentration(10)
    apps_ge_5, findings_ge_5 = summary.concentration(5)
    return DistributionSummary(
        per_application=distribution,
        share_apps_ge_10=apps_ge_10,
        share_findings_ge_10=findings_ge_10,
        share_apps_5_to_9=apps_ge_5 - apps_ge_10,
        share_findings_5_to_9=findings_ge_5 - findings_ge_10,
    )


def format_figure4a(distribution: DistributionSummary, width: int = 60) -> str:
    """Render the Figure 4a curve as a text sparkline plus the headline stats."""
    values = distribution.per_application
    lines = []
    if values:
        maximum = max(values) or 1
        step = max(1, len(values) // width)
        samples = values[::step]
        bars = "".join("█▇▆▅▄▃▂▁ "[min(8, 8 - round(8 * value / maximum))] for value in samples)
        lines.append(f"misconfigurations per application (sorted): {bars}")
    lines.append(
        f"{distribution.share_apps_ge_10:.1%} of applications have >= 10 misconfigurations, "
        f"accounting for {distribution.share_findings_ge_10:.1%} of the total"
    )
    lines.append(
        f"{distribution.share_apps_5_to_9:.1%} of applications have 5-9 misconfigurations, "
        f"accounting for {distribution.share_findings_5_to_9:.1%} of the total"
    )
    return "\n".join(lines)


def class_breakdown_csv(summary: EvaluationSummary) -> str:
    """A CSV export of per-application class counts (useful for plotting)."""
    header = ["application", "dataset", "total", "types"] + [cls.value for cls in TABLE_ORDER]
    lines = [",".join(header)]
    for report in summary.reports:
        counts = report.count_by_class()
        row = [report.application, report.dataset, str(report.total), str(report.type_count())]
        row.extend(str(counts.get(cls, 0)) for cls in TABLE_ORDER)
        lines.append(",".join(row))
    return "\n".join(lines)
