"""Re-implementations of the state-of-the-art tools compared in Table 3."""

from .base import (
    CATEGORY_HYBRID,
    CATEGORY_PLATFORM,
    CATEGORY_RUNTIME,
    CATEGORY_STATIC,
    CLUSTER_WIDE_CLASSES,
    FOUND,
    MISSED,
    NOT_APPLICABLE,
    PARTIAL,
    RUNTIME_ONLY_CLASSES,
    BaselineFinding,
    BaselineInput,
    BaselineTool,
)
from .ours import OurSolution
from .registry import all_tools, third_party_tools, tool_by_name
from .runtime_tools import KubeBench, Kubescape, NeuVector, StackRox, Trivy
from .static_tools import Checkov, Kubeaudit, KubeLinter, KubeScore, Kubesec, SLIKube

__all__ = [
    "CATEGORY_HYBRID",
    "CATEGORY_PLATFORM",
    "CATEGORY_RUNTIME",
    "CATEGORY_STATIC",
    "CLUSTER_WIDE_CLASSES",
    "Checkov",
    "FOUND",
    "Kubeaudit",
    "KubeBench",
    "KubeLinter",
    "KubeScore",
    "Kubesec",
    "Kubescape",
    "MISSED",
    "NOT_APPLICABLE",
    "NeuVector",
    "OurSolution",
    "PARTIAL",
    "RUNTIME_ONLY_CLASSES",
    "SLIKube",
    "StackRox",
    "Trivy",
    "BaselineFinding",
    "BaselineInput",
    "BaselineTool",
    "all_tools",
    "third_party_tools",
    "tool_by_name",
]
