"""Our solution wrapped in the baseline interface, for Table 3.

The comparison table runs every tool -- including the paper's own hybrid
analyzer -- through the same harness; this adapter exposes the
:class:`~repro.core.MisconfigurationAnalyzer` with the ``BaselineTool``
interface so the matrix is produced uniformly.
"""

from __future__ import annotations

from ..core import ApplicationInventory, MisconfigurationAnalyzer, global_collision_findings
from .base import BaselineFinding, BaselineInput, BaselineTool, CATEGORY_HYBRID


class OurSolution(BaselineTool):
    """The paper's hybrid static + runtime analyzer."""

    name = "Our solution"
    version = "-"
    category = CATEGORY_HYBRID

    def __init__(self, analyzer: MisconfigurationAnalyzer | None = None) -> None:
        self.analyzer = analyzer or MisconfigurationAnalyzer()

    def run(self, data: BaselineInput) -> list[BaselineFinding]:
        report = self.analyzer.analyze_objects(
            list(data.inventory),
            application="baseline-comparison",
            observation=data.observation,
        )
        findings = [
            BaselineFinding(
                check_id=finding.misconfig_class.value,
                resource=finding.resource,
                message=finding.message,
                misconfig_class=finding.misconfig_class,
            )
            for finding in report.findings
        ]
        # Cluster-wide pass over the other applications installed alongside.
        if data.cluster_inventories:
            inventories = [
                ApplicationInventory(application="app-under-test", inventory=data.inventory)
            ]
            inventories.extend(
                ApplicationInventory(application=f"neighbour-{index}", inventory=inventory)
                for index, inventory in enumerate(data.cluster_inventories)
            )
            for finding in global_collision_findings(inventories):
                findings.append(
                    BaselineFinding(
                        check_id=finding.misconfig_class.value,
                        resource=finding.resource,
                        message=finding.message,
                        misconfig_class=finding.misconfig_class,
                    )
                )
        return findings
