"""Registry of the compared tools, in the order of Table 3."""

from __future__ import annotations

from .base import BaselineTool
from .ours import OurSolution
from .runtime_tools import KubeBench, Kubescape, NeuVector, StackRox, Trivy
from .static_tools import Checkov, Kubeaudit, KubeLinter, KubeScore, Kubesec, SLIKube


def third_party_tools() -> list[BaselineTool]:
    """The eleven third-party tools of Table 3, in presentation order."""
    return [
        Checkov(),
        Kubeaudit(),
        KubeLinter(),
        KubeScore(),
        Kubesec(),
        SLIKube(),
        KubeBench(),
        Kubescape(),
        Trivy(),
        NeuVector(),
        StackRox(),
    ]


def all_tools() -> list[BaselineTool]:
    """Third-party tools plus our solution, as in the last row of Table 3."""
    return third_party_tools() + [OurSolution()]


def tool_by_name(name: str) -> BaselineTool:
    for tool in all_tools():
        if tool.name.lower() == name.lower():
            return tool
    raise KeyError(f"unknown baseline tool: {name!r}")
