"""Common infrastructure for the state-of-the-art tool re-implementations.

Each baseline re-implements the *network-relevant checks* of one of the
eleven tools compared in Table 3, operating on the same inputs the real tool
consumes: static tools see only the rendered manifests, runtime tools see
the cluster API / runtime observation, hybrid tools and platforms see both.

The goal is that the Table 3 detection matrix emerges from what each tool
actually inspects, rather than being hard-coded.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ..core import MisconfigClass
from ..k8s import Inventory
from ..probe import RuntimeObservation

#: Tool categories used in Section 4.4.1.
CATEGORY_STATIC = "Static"
CATEGORY_RUNTIME = "Runtime"
CATEGORY_HYBRID = "Hybrid"
CATEGORY_PLATFORM = "Platform"

#: Detection outcomes, matching the symbols of Table 3.
FOUND = "found"
PARTIAL = "partial"
MISSED = "missed"
NOT_APPLICABLE = "n/a"

#: Misconfiguration classes that can only be observed at runtime.  These are
#: the columns the paper marks as "not applicable" for purely static tools.
RUNTIME_ONLY_CLASSES = {
    MisconfigClass.M1,
    MisconfigClass.M2,
    MisconfigClass.M3,
    MisconfigClass.M5A,
}

#: Classes that require correlating several applications across the cluster.
CLUSTER_WIDE_CLASSES = {MisconfigClass.M4_GLOBAL}


@dataclass
class BaselineFinding:
    """One issue reported by a baseline tool."""

    check_id: str
    message: str
    resource: str = ""
    misconfig_class: MisconfigClass | None = None
    partial: bool = False


@dataclass
class BaselineInput:
    """What a tool gets to look at."""

    inventory: Inventory
    observation: RuntimeObservation | None = None
    #: Inventories of the other applications installed in the same cluster
    #: (only security platforms and runtime tools can see these).
    cluster_inventories: list[Inventory] = field(default_factory=list)


class BaselineTool(ABC):
    """Base class of every re-implemented tool."""

    name: str = ""
    version: str = ""
    category: str = CATEGORY_STATIC

    @abstractmethod
    def run(self, data: BaselineInput) -> list[BaselineFinding]:
        """Run the tool's checks and return its findings."""

    # Capability reasoning ------------------------------------------------------
    @property
    def sees_runtime(self) -> bool:
        return self.category in (CATEGORY_RUNTIME, CATEGORY_HYBRID, CATEGORY_PLATFORM)

    @property
    def sees_manifests(self) -> bool:
        return self.category in (CATEGORY_STATIC, CATEGORY_HYBRID, CATEGORY_PLATFORM)

    def not_applicable(self, misconfig_class: MisconfigClass) -> bool:
        """Whether the class is out of reach *by the nature of the tool*.

        Static tools cannot observe runtime-only issues; tools that analyze
        one application at a time cannot observe cluster-wide collisions.
        These are the ``--`` cells of Table 3.
        """
        if misconfig_class in RUNTIME_ONLY_CLASSES and not self.sees_runtime:
            return True
        if misconfig_class in CLUSTER_WIDE_CLASSES and self.category in (
            CATEGORY_STATIC,
            CATEGORY_RUNTIME,
        ):
            return True
        return False

    def detection_outcome(
        self, misconfig_class: MisconfigClass, findings: list[BaselineFinding]
    ) -> str:
        """Classify the tool's result for one misconfiguration class."""
        relevant = [f for f in findings if f.misconfig_class == misconfig_class]
        if relevant:
            return PARTIAL if all(f.partial for f in relevant) else FOUND
        if self.not_applicable(misconfig_class):
            return NOT_APPLICABLE
        return MISSED

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name} {self.version}>"


def workloads_and_pods(inventory: Inventory):
    """Helper shared by several tools: every compute unit in the manifests."""
    return inventory.compute_units()
