"""Static-analysis baselines: Checkov, Kubeaudit, KubeLinter, Kube-score,
Kubesec, SLI-KUBE.

Each class re-implements the network-relevant checks the real tool ships
(check identifiers follow the tools' own naming where they exist).  None of
these tools correlates resources of different types beyond what is listed
here, which is why they miss the label-collision and most service-reference
misconfigurations (Section 4.4.3).
"""

from __future__ import annotations

from ..core import MisconfigClass
from .base import (
    BaselineFinding,
    BaselineInput,
    BaselineTool,
    CATEGORY_STATIC,
)


def _host_network_findings(data: BaselineInput, check_id: str) -> list[BaselineFinding]:
    """Shared check: pod templates requesting hostNetwork."""
    findings: list[BaselineFinding] = []
    for unit in data.inventory.compute_units():
        if unit.uses_host_network():
            findings.append(
                BaselineFinding(
                    check_id=check_id,
                    resource=unit.qualified_name(),
                    message=f"{unit.qualified_name()} shares the host network namespace",
                    misconfig_class=MisconfigClass.M7,
                )
            )
    return findings


def _missing_network_policy_findings(data: BaselineInput, check_id: str) -> list[BaselineFinding]:
    """Shared check: workloads not covered by any NetworkPolicy."""
    findings: list[BaselineFinding] = []
    policies = data.inventory.network_policies()
    for unit in data.inventory.compute_units():
        covered = any(policy.selects(unit.pod_labels(), unit.namespace) for policy in policies)
        if not covered:
            findings.append(
                BaselineFinding(
                    check_id=check_id,
                    resource=unit.qualified_name(),
                    message=f"{unit.qualified_name()} is not selected by any NetworkPolicy",
                    misconfig_class=MisconfigClass.M6,
                )
            )
    return findings


def _dangling_service_findings(data: BaselineInput, check_id: str) -> list[BaselineFinding]:
    """Shared check: services whose selector matches no workload."""
    findings: list[BaselineFinding] = []
    for service in data.inventory.services():
        if not service.has_selector:
            continue
        if not data.inventory.compute_units_selected_by(service):
            findings.append(
                BaselineFinding(
                    check_id=check_id,
                    resource=service.qualified_name(),
                    message=f"service {service.name!r} selects no existing workload",
                    misconfig_class=MisconfigClass.M5D,
                )
            )
    return findings


class Checkov(BaselineTool):
    """Checkov: IaC scanner with per-resource Kubernetes policies."""

    name = "Checkov"
    version = "3.2.23"
    category = CATEGORY_STATIC

    def run(self, data: BaselineInput) -> list[BaselineFinding]:
        findings = _host_network_findings(data, "CKV_K8S_19")
        findings.extend(_missing_network_policy_findings(data, "CKV2_K8S_6"))
        return findings


class Kubeaudit(BaselineTool):
    """Shopify kubeaudit: audits manifests or a live cluster per resource."""

    name = "Kubeaudit"
    version = "0.22.1"
    category = CATEGORY_STATIC

    def run(self, data: BaselineInput) -> list[BaselineFinding]:
        findings = _host_network_findings(data, "NamespaceHostNetworkTrue")
        findings.extend(_missing_network_policy_findings(data, "MissingDefaultDenyIngressNetworkPolicy"))
        return findings


class KubeLinter(BaselineTool):
    """StackRox kube-linter: per-object lints plus the dangling-service check."""

    name = "KubeLinter"
    version = "0.6.8"
    category = CATEGORY_STATIC

    def run(self, data: BaselineInput) -> list[BaselineFinding]:
        findings = _host_network_findings(data, "host-network")
        findings.extend(_dangling_service_findings(data, "dangling-service"))
        return findings


class KubeScore(BaselineTool):
    """kube-score: object analysis with service/pod and netpol checks."""

    name = "Kube-score"
    version = "1.18.0"
    category = CATEGORY_STATIC

    def run(self, data: BaselineInput) -> list[BaselineFinding]:
        findings = _dangling_service_findings(data, "service-targets-pod")
        findings.extend(_missing_network_policy_findings(data, "pod-networkpolicy"))
        return findings


class Kubesec(BaselineTool):
    """kubesec.io: risk scoring of individual manifests."""

    name = "Kubesec"
    version = "2.14.0"
    category = CATEGORY_STATIC

    def run(self, data: BaselineInput) -> list[BaselineFinding]:
        return _host_network_findings(data, "HostNetwork")


class SLIKube(BaselineTool):
    """SLI-KUBE: the static checker from Rahman et al. (TOSEM 2023)."""

    name = "SLI-KUBE"
    version = "research-prototype"
    category = CATEGORY_STATIC

    def run(self, data: BaselineInput) -> list[BaselineFinding]:
        return _host_network_findings(data, "hostNetwork")
