"""Runtime, hybrid, and platform baselines: Kube-bench, Kubescape, Trivy,
NeuVector, StackRox.

These tools query the Kubernetes API of a running cluster (and, for the
platforms, monitor traffic), but -- as the paper observes in Section 4.4.3 --
they do not inspect the runtime environment *inside* containers (open
sockets) and do not cross-reference resources of different types, so they
miss the port-mismatch and service-reference misconfigurations.
"""

from __future__ import annotations

from ..core import MisconfigClass
from ..k8s import LabelSet
from .base import (
    BaselineFinding,
    BaselineInput,
    BaselineTool,
    CATEGORY_HYBRID,
    CATEGORY_PLATFORM,
    CATEGORY_RUNTIME,
)
from .static_tools import _host_network_findings, _missing_network_policy_findings


class KubeBench(BaselineTool):
    """Aqua kube-bench: CIS benchmark checks against a running cluster.

    The CIS benchmark's networking section (5.3.x, namespaces should have
    NetworkPolicies) is a *manual* check that kube-bench prints but does not
    evaluate, so the tool reports nothing for M6; at the workload level it
    flags hostNetwork usage through the pod security checks.
    """

    name = "Kube-bench"
    version = "0.7.1"
    category = CATEGORY_RUNTIME

    def run(self, data: BaselineInput) -> list[BaselineFinding]:
        return _host_network_findings(data, "5.2.4")


class Kubescape(BaselineTool):
    """ARMO Kubescape: framework-based scanning of manifests and clusters.

    Besides the netpol / hostNetwork controls, Kubescape's `label-usage`
    controls report workloads that share the same labels, which *hints* at
    label collisions without identifying the colliding selectors -- the
    paper scores this as a partial detection of the M4 family.
    """

    name = "Kubescape"
    version = "3.0.3"
    category = CATEGORY_HYBRID

    def run(self, data: BaselineInput) -> list[BaselineFinding]:
        findings = _host_network_findings(data, "C-0041")
        findings.extend(_missing_network_policy_findings(data, "C-0260"))
        findings.extend(self._shared_label_hints(data))
        return findings

    @staticmethod
    def _shared_label_hints(data: BaselineInput) -> list[BaselineFinding]:
        findings: list[BaselineFinding] = []
        groups: dict[LabelSet, list[str]] = {}
        for unit in data.inventory.compute_units():
            labels = LabelSet(unit.pod_labels())
            if labels:
                groups.setdefault(labels, []).append(unit.qualified_name())
        shared = {labels: names for labels, names in groups.items() if len(names) > 1}
        for labels, names in shared.items():
            for misconfig in (MisconfigClass.M4A, MisconfigClass.M4B, MisconfigClass.M4C):
                findings.append(
                    BaselineFinding(
                        check_id="label-usage",
                        resource=names[0],
                        message=(
                            "workloads "
                            + ", ".join(names)
                            + " use common labels; verify that services select the intended pods"
                        ),
                        misconfig_class=misconfig,
                        partial=True,
                    )
                )
        return findings


class Trivy(BaselineTool):
    """Aqua Trivy: misconfiguration scanning of manifests and clusters."""

    name = "Trivy"
    version = "0.49.1"
    category = CATEGORY_HYBRID

    def run(self, data: BaselineInput) -> list[BaselineFinding]:
        return _host_network_findings(data, "KSV009")


class NeuVector(BaselineTool):
    """SUSE NeuVector: a runtime security platform.

    NeuVector records connections and can generate policies from observed
    traffic, but it does not flag misconfigured resources; the only
    network-related configuration it reports on is host-namespace sharing.
    """

    name = "NeuVector"
    version = "5.3.0"
    category = CATEGORY_PLATFORM

    def run(self, data: BaselineInput) -> list[BaselineFinding]:
        return _host_network_findings(data, "host_network_violation")


class StackRox(BaselineTool):
    """StackRox (RHACS): a continuous security platform."""

    name = "StackRox"
    version = "3.74.9"
    category = CATEGORY_PLATFORM

    def run(self, data: BaselineInput) -> list[BaselineFinding]:
        return _host_network_findings(data, "host-network-policy-violation")
