"""Rendering a Helm chart into Kubernetes objects.

The renderer mirrors how ``helm template`` works:

1. merge the chart's default values with user overrides;
2. build the template context (``.Values``, ``.Release``, ``.Chart``,
   ``.Capabilities``);
3. register helper templates (``_helpers.tpl``) so ``include`` works;
4. render every non-helper template and parse the resulting YAML documents
   into the typed Kubernetes model;
5. recurse into enabled dependencies, scoping ``.Values`` to the subchart key
   and honouring ``condition:`` flags and ``global`` values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import yaml

from ..k8s import Inventory, KubernetesObject, objects_from_dicts
from ..k8s.yamlio import yaml_load_all
from .chart import Chart
from .errors import RenderError, TemplateError
from .template import TemplateEngine
from .values import deep_merge, get_path


@dataclass
class ReleaseInfo:
    """The Helm release identity injected into templates as ``.Release``."""

    name: str
    namespace: str = "default"
    revision: int = 1
    is_install: bool = True
    service: str = "Helm"

    def to_context(self) -> dict[str, Any]:
        return {
            "Name": self.name,
            "Namespace": self.namespace,
            "Revision": self.revision,
            "IsInstall": self.is_install,
            "IsUpgrade": not self.is_install,
            "Service": self.service,
        }


@dataclass
class RenderedChart:
    """The output of rendering a chart: manifests plus typed objects."""

    chart: Chart
    release: ReleaseInfo
    values: dict[str, Any]
    documents: list[dict] = field(default_factory=list)
    objects: list[KubernetesObject] = field(default_factory=list)
    sources: dict[str, str] = field(default_factory=dict)

    def inventory(self) -> Inventory:
        return Inventory(self.objects)

    def objects_of_kind(self, kind: str) -> list[KubernetesObject]:
        return [obj for obj in self.objects if obj.kind == kind]


class HelmRenderer:
    """Renders charts (and their dependency trees) into Kubernetes objects."""

    def __init__(self) -> None:
        self._capabilities = {
            "KubeVersion": {"Version": "v1.25.0", "Major": "1", "Minor": "25"},
            "APIVersions": ["v1", "apps/v1", "networking.k8s.io/v1", "batch/v1"],
        }

    def render(
        self,
        chart: Chart,
        release: ReleaseInfo | None = None,
        overrides: Mapping[str, Any] | None = None,
    ) -> RenderedChart:
        """Render ``chart`` and all enabled dependencies."""
        release = release or ReleaseInfo(name=chart.name)
        values = chart.effective_values(overrides)
        documents: list[dict] = []
        sources: dict[str, str] = {}
        self._render_chart(chart, release, values, values, documents, sources, prefix="")
        objects = objects_from_dicts(documents)
        return RenderedChart(
            chart=chart,
            release=release,
            values=values,
            documents=documents,
            objects=objects,
            sources=sources,
        )

    # Internal ----------------------------------------------------------------
    def _render_chart(
        self,
        chart: Chart,
        release: ReleaseInfo,
        values: Mapping[str, Any],
        root_values: Mapping[str, Any],
        documents: list[dict],
        sources: dict[str, str],
        prefix: str,
    ) -> None:
        engine = TemplateEngine()
        context = {
            "Values": dict(values),
            "Release": release.to_context(),
            "Chart": {
                "Name": chart.name,
                "Version": chart.version,
                "AppVersion": chart.metadata.app_version or chart.version,
            },
            "Capabilities": dict(self._capabilities),
            "Template": {"Name": ""},
        }
        # Helper templates first so `include` targets are available.
        for template in chart.templates:
            if template.is_helper:
                try:
                    engine.register_source(template.source, template.name)
                except TemplateError as exc:
                    raise RenderError(f"{chart.name}/{template.name}: {exc}") from exc
        for template in chart.templates:
            if template.is_helper:
                continue
            context["Template"] = {"Name": f"{chart.name}/{template.name}"}
            try:
                rendered = engine.render(template.source, context, template.name)
            except TemplateError as exc:
                raise RenderError(f"{chart.name}/{template.name}: {exc}") from exc
            qualified = f"{prefix}{chart.name}/{template.name}"
            sources[qualified] = rendered
            for document in self._parse_documents(rendered, qualified):
                documents.append(document)
        # Dependencies.
        for dependency in chart.dependencies:
            if dependency.condition and not get_path(root_values, dependency.condition, False):
                continue
            subchart = chart.subcharts.get(dependency.effective_name)
            if subchart is None:
                continue
            sub_values = self._subchart_values(subchart, values, dependency.effective_name)
            self._render_chart(
                subchart,
                release,
                sub_values,
                root_values,
                documents,
                sources,
                prefix=f"{prefix}{chart.name}/charts/",
            )

    @staticmethod
    def _subchart_values(
        subchart: Chart, parent_values: Mapping[str, Any], key: str
    ) -> dict[str, Any]:
        """Scope parent values to a dependency, propagating ``global``."""
        scoped = parent_values.get(key)
        merged = deep_merge(subchart.values, scoped if isinstance(scoped, Mapping) else {})
        global_values = parent_values.get("global")
        if isinstance(global_values, Mapping):
            merged["global"] = deep_merge(merged.get("global", {}), global_values)
        return merged

    @staticmethod
    def _parse_documents(rendered: str, source_name: str) -> list[dict]:
        if not rendered.strip():
            return []
        try:
            parsed = list(yaml_load_all(rendered))
        except yaml.YAMLError as exc:
            raise RenderError(
                f"template {source_name} produced invalid YAML: {exc}\n--- output ---\n{rendered}"
            ) from exc
        return [document for document in parsed if document]


def render_chart(
    chart: Chart,
    release_name: str | None = None,
    namespace: str = "default",
    overrides: Mapping[str, Any] | None = None,
    cached: bool = True,
    fingerprint: str | None = None,
) -> RenderedChart:
    """Convenience wrapper: render a chart with a default release.

    Goes through the shared :class:`RenderCache` by default -- repeated
    renders of the same chart/values pair return a private copy of the
    memoized result instead of re-evaluating templates.  ``cached=False``
    forces a fresh render (the differential tests compare both paths);
    ``fingerprint`` skips re-hashing the chart when the caller already knows
    its content fingerprint.
    """
    release = ReleaseInfo(name=release_name or chart.name, namespace=namespace)
    if not cached:
        return HelmRenderer().render(chart, release, overrides)
    from .render_cache import shared_render_cache

    return shared_render_cache().render(chart, release, overrides, fingerprint=fingerprint)
