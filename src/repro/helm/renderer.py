"""Rendering a Helm chart into Kubernetes objects.

The renderer mirrors how ``helm template`` works:

1. merge the chart's default values with user overrides;
2. build the template context (``.Values``, ``.Release``, ``.Chart``,
   ``.Capabilities``);
3. register helper templates (``_helpers.tpl``) so ``include`` works;
4. render every non-helper template into manifest documents;
5. recurse into enabled dependencies, scoping ``.Values`` to the subchart key
   and honouring ``condition:`` flags and ``global`` values.

Step 4 comes in two flavours.  The classic **text path** (:meth:`
HelmRenderer.render`) joins each template's output into a YAML string and
re-parses it with ``yaml_load_all`` -- the reference implementation.  The
**structured path** (:meth:`HelmRenderer.render_structured`, the default
behind :func:`render_chart`) keeps rendered documents as Python dicts end to
end: compiled templates emit native values for ``toYaml`` pipelines and
compile-time document splits, and only the genuinely free-form text
segments are string-assembled and parsed (see :mod:`repro.helm.structured`).
Both paths produce dict-identical ``documents``/``objects``; they differ
only in ``RenderedChart.sources`` (the structured path records the skeleton
text it actually assembled, with structured values shown as placeholders).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping
from typing import Any

import yaml

from ..k8s import Inventory, KubernetesObject, objects_from_dicts
from ..k8s.yamlio import yaml_load_all
from .chart import Chart
from .errors import RenderError, TemplateError
from .structured import assemble_documents
from .template import TemplateEngine
from .values import deep_merge, get_path, merged_view


@dataclass
class ReleaseInfo:
    """The Helm release identity injected into templates as ``.Release``."""

    name: str
    namespace: str = "default"
    revision: int = 1
    is_install: bool = True
    service: str = "Helm"

    def to_context(self) -> dict[str, Any]:
        """The ``.Release`` mapping templates see."""
        return {
            "Name": self.name,
            "Namespace": self.namespace,
            "Revision": self.revision,
            "IsInstall": self.is_install,
            "IsUpgrade": not self.is_install,
            "Service": self.service,
        }


@dataclass
class RenderedChart:
    """The output of rendering a chart: manifests plus typed objects.

    ``documents`` and ``objects`` are identical whichever render path
    produced them.  ``sources`` maps each template's qualified name to the
    text that was assembled for it: the full rendered manifest on the text
    path, the skeleton (structured values as ``__repro_frag_N__``
    placeholders) on the structured path.
    """

    chart: Chart
    release: ReleaseInfo
    values: dict[str, Any]
    documents: list[dict] = field(default_factory=list)
    objects: list[KubernetesObject] = field(default_factory=list)
    sources: dict[str, str] = field(default_factory=dict)
    #: Content fingerprint of the full render identity (chart fingerprint +
    #: release + canonical overrides + render path), set by the render cache.
    #: ``None`` for uncached renders; consumers that key on render content
    #: (the observation memo) skip memoization when it is absent.
    render_fingerprint: str | None = field(default=None, compare=False)

    def inventory(self) -> Inventory:
        """The rendered objects wrapped as a queryable :class:`Inventory`."""
        return Inventory(self.objects)

    def objects_of_kind(self, kind: str) -> list[KubernetesObject]:
        """Every rendered object of one Kubernetes ``kind``."""
        return [obj for obj in self.objects if obj.kind == kind]


class HelmRenderer:
    """Renders charts (and their dependency trees) into Kubernetes objects."""

    def __init__(self) -> None:
        self._capabilities = {
            "KubeVersion": {"Version": "v1.25.0", "Major": "1", "Minor": "25"},
            "APIVersions": ["v1", "apps/v1", "networking.k8s.io/v1", "batch/v1"],
        }

    def render(
        self,
        chart: Chart,
        release: ReleaseInfo | None = None,
        overrides: Mapping[str, Any] | None = None,
        interned: bool = False,
    ) -> RenderedChart:
        """Render ``chart`` via the text path (the reference implementation)."""
        return self._render(chart, release, overrides, structured=False, interned=interned)

    def render_structured(
        self,
        chart: Chart,
        release: ReleaseInfo | None = None,
        overrides: Mapping[str, Any] | None = None,
        interned: bool = False,
    ) -> RenderedChart:
        """Render ``chart`` dict-natively: no YAML text round trip.

        Produces ``documents``/``objects`` dict-identical to :meth:`render`
        (the differential suite proves it across the whole catalogue) while
        skipping the ``toYaml`` dumps and most of the document parse.
        ``interned=True`` builds the typed objects through the shared intern
        table (sealed, structurally shared across identical documents); the
        default constructs fresh mutable objects.
        """
        return self._render(chart, release, overrides, structured=True, interned=interned)

    # Internal ----------------------------------------------------------------
    def _render(
        self,
        chart: Chart,
        release: ReleaseInfo | None,
        overrides: Mapping[str, Any] | None,
        structured: bool,
        interned: bool = False,
    ) -> RenderedChart:
        release = release or ReleaseInfo(name=chart.name)
        # The interned path produces read-only results (shared objects, shared
        # cache entries), so its values merge can structurally share untouched
        # subtrees with the chart defaults instead of deep-copying them.
        if interned:
            values = merged_view(chart.values, overrides or {})
        else:
            values = chart.effective_values(overrides)
        documents: list[dict] = []
        sources: dict[str, str] = {}
        self._render_chart(
            chart, release, values, values, documents, sources, prefix="",
            structured=structured, shared_values=interned,
        )
        objects = objects_from_dicts(documents, interned=interned)
        return RenderedChart(
            chart=chart,
            release=release,
            values=values,
            documents=documents,
            objects=objects,
            sources=sources,
        )

    def _render_chart(
        self,
        chart: Chart,
        release: ReleaseInfo,
        values: Mapping[str, Any],
        root_values: Mapping[str, Any],
        documents: list[dict],
        sources: dict[str, str],
        prefix: str,
        structured: bool = False,
        shared_values: bool = False,
    ) -> None:
        engine = TemplateEngine()
        context = {
            "Values": dict(values),
            "Release": release.to_context(),
            "Chart": {
                "Name": chart.name,
                "Version": chart.version,
                "AppVersion": chart.metadata.app_version or chart.version,
            },
            "Capabilities": dict(self._capabilities),
            "Template": {"Name": ""},
        }
        # Helper templates first so `include` targets are available.
        for template in chart.templates:
            if template.is_helper:
                try:
                    engine.register_source(template.source, template.name)
                except TemplateError as exc:
                    raise RenderError(f"{chart.name}/{template.name}: {exc}") from exc
        for template in chart.templates:
            if template.is_helper:
                continue
            context["Template"] = {"Name": f"{chart.name}/{template.name}"}
            qualified = f"{prefix}{chart.name}/{template.name}"
            try:
                if structured:
                    fragments = engine.render_fragments(
                        template.source, context, template.name
                    )
                    # shared_values == interned render: documents are
                    # read-only by contract, so assembly may alias
                    # placeholder-free subtrees from the parse memo.
                    parsed, skeleton = assemble_documents(
                        fragments, qualified, shared=shared_values
                    )
                    sources[qualified] = skeleton
                    documents.extend(parsed)
                else:
                    rendered = engine.render(template.source, context, template.name)
                    sources[qualified] = rendered
                    documents.extend(self._parse_documents(rendered, qualified))
            except TemplateError as exc:
                raise RenderError(f"{chart.name}/{template.name}: {exc}") from exc
        # Dependencies.
        for dependency in chart.dependencies:
            if dependency.condition and not get_path(root_values, dependency.condition, False):
                continue
            subchart = chart.subcharts.get(dependency.effective_name)
            if subchart is None:
                continue
            sub_values = self._subchart_values(
                subchart, values, dependency.effective_name, shared=shared_values
            )
            self._render_chart(
                subchart,
                release,
                sub_values,
                root_values,
                documents,
                sources,
                prefix=f"{prefix}{chart.name}/charts/",
                structured=structured,
                shared_values=shared_values,
            )

    @staticmethod
    def _subchart_values(
        subchart: Chart, parent_values: Mapping[str, Any], key: str, shared: bool = False
    ) -> dict[str, Any]:
        """Scope parent values to a dependency, propagating ``global``."""
        merge = merged_view if shared else deep_merge
        scoped = parent_values.get(key)
        merged = merge(subchart.values, scoped if isinstance(scoped, Mapping) else {})
        global_values = parent_values.get("global")
        if isinstance(global_values, Mapping):
            if shared and merged is subchart.values:
                # merged_view may alias the subchart defaults; don't write
                # the global layer through to them.
                merged = dict(merged)
            merged["global"] = merge(merged.get("global", {}), global_values)
        return merged

    @staticmethod
    def _parse_documents(rendered: str, source_name: str) -> list[dict]:
        if not rendered.strip():
            return []
        try:
            parsed = list(yaml_load_all(rendered))
        except yaml.YAMLError as exc:
            raise RenderError(
                f"template {source_name} produced invalid YAML: {exc}\n--- output ---\n{rendered}"
            ) from exc
        return [document for document in parsed if document]


def render_chart(
    chart: Chart,
    release_name: str | None = None,
    namespace: str = "default",
    overrides: Mapping[str, Any] | None = None,
    cached: bool = True,
    fingerprint: str | None = None,
    structured: bool = True,
) -> RenderedChart:
    """Convenience wrapper: render a chart with a default release.

    Goes through the shared :class:`RenderCache` by default -- repeated
    renders of the same chart/values pair return a private copy of the
    memoized result instead of re-evaluating templates.  ``cached=False``
    forces a fresh render (the differential tests compare both paths);
    ``fingerprint`` skips re-hashing the chart when the caller already knows
    its content fingerprint.  ``structured=False`` pins the classic text
    render pipeline, the reference implementation the structured default is
    differentially tested against.
    """
    release = ReleaseInfo(name=release_name or chart.name, namespace=namespace)
    if not cached:
        renderer = HelmRenderer()
        if structured:
            return renderer.render_structured(chart, release, overrides)
        return renderer.render(chart, release, overrides)
    from .render_cache import shared_render_cache

    return shared_render_cache().render(
        chart, release, overrides, fingerprint=fingerprint, structured=structured
    )
