"""Structured document assembly: fragments in, native dicts out.

The classic render path joins every fragment into one text blob and pays a
full YAML parse to get its documents back; this module is the dict-native
alternative.  It consumes the fragment stream a compiled template emits
(:mod:`repro.helm.template`) and assembles documents with as little YAML
text as possible:

* :class:`~repro.helm.template.DocumentSplit` markers (``---`` lines found
  at compile time) split the stream into per-document groups -- no document
  scanning over rendered text;
* :class:`~repro.helm.template.StructuredFragment` values (``toYaml``
  emissions) never touch YAML text: each one becomes a single placeholder
  line in its group's *skeleton*, and after the skeleton is parsed the
  native value is spliced into place (mappings splice entry-by-entry with
  last-wins duplicate semantics, everything else substitutes the scalar
  placeholder);
* the skeleton itself -- the genuinely free-form text segments -- goes
  through :func:`parse_simple_yaml`, a fast parser for the block-YAML
  subset rendered manifests actually use, with PyYAML as the fallback for
  anything outside that subset.

Every step is guarded: an unplaceable fragment, a placeholder collision, a
parse error, or an unsupported YAML construct drops the affected group back
to the reference behaviour -- stringify the fragments, parse the real text
-- so the structured path can only ever *accelerate* the text path, never
diverge from it.  The differential suite in
``tests/helm/test_structured_render.py`` proves dict-identical output over
the full catalogue, Hypothesis-generated charts and adversarial templates.
"""

from __future__ import annotations

import re
from collections.abc import Mapping
from typing import Any, Iterable

import yaml

from .. import faults
from ..k8s.yamlio import yaml_load_all
from .errors import RenderError
from .template import DocumentSplit, Fragment, ScalarFragment, StructuredFragment

#: Placeholder scalars stamped into the skeleton text, one per structured
#: fragment, numbered per group.  If rendered *text* happens to contain the
#: prefix (an adversarial value), the whole group falls back to the text
#: path -- a simple count check catches the collision.
PLACEHOLDER_PREFIX = "__repro_frag_"

#: Parse-result memo keyed on skeleton text.  Override-variant sweeps (the
#: Figure 4b experiment) re-render the same chart with values that only flow
#: through *structured* fragments: the skeleton -- placeholder tokens
#: included -- comes out byte-identical per template, so its parse result
#: can be reused across cold renders and only the splice differs.  Memoized
#: results are never mutated: the splice rebuilds every container it touches
#: and the no-splice path hands out deep-ish copies (:func:`_copy_document`).
_SKELETON_MEMO: dict[str, list] = {}
_SKELETON_MEMO_MAXSIZE = 4096
_SKELETON_PARSE_COUNT = 0


def skeleton_parse_count() -> int:
    """How many skeleton texts have actually been parsed (memo misses).

    The guard-hook twin of :func:`repro.helm.template.template_parse_count`:
    re-rendering a chart with override variants that only change structured
    values must not re-parse its skeletons.
    """
    return _SKELETON_PARSE_COUNT


def clear_skeleton_parse_memo() -> None:
    """Drop the skeleton parse memo (tests and benchmark cold starts)."""
    _SKELETON_MEMO.clear()


class _SpliceError(Exception):
    """The skeleton cannot host the structured values; use the text path."""


class _ScalarLayout(Exception):
    """A scalar placeholder's surroundings defeat clean substitution; the
    group re-assembles with the scalar texts inlined (the pre-placeholder
    behaviour, skeleton memo keyed on the joined text)."""


class _UnsupportedYaml(Exception):
    """The skeleton leaves the fast parser's subset; use PyYAML."""


# ---------------------------------------------------------------------------
# Assembly
# ---------------------------------------------------------------------------


def assemble_documents(
    fragments: Iterable[Fragment], source_name: str = "", shared: bool = False
) -> tuple[list[dict], str]:
    """Assemble a fragment stream into ``(documents, skeleton_text)``.

    ``documents`` matches the text path's parse byte-for-byte (empty and
    ``None`` documents dropped); ``skeleton_text`` is the text that was
    actually assembled -- structured fragments appear as their placeholder
    lines -- and is recorded as the template's source for debugging.

    ``shared=True`` (the interned render path) may return documents whose
    placeholder-free subtrees alias the skeleton parse memo: the caller
    promises the documents are read-only (the render-cache contract).  The
    default rebuilds every container, so mutable consumers stay safe.
    """
    faults.fault_point(faults.STRUCTURED_ASSEMBLE)
    documents: list[dict] = []
    skeleton_parts: list[str] = []
    group: list = []
    tail = ""  # last character of the group's rendered text so far

    def flush() -> None:
        nonlocal tail
        if group:
            skeleton_parts.append(_flush_group(group, documents, source_name, shared))
            group.clear()
        tail = ""

    for fragment in fragments:
        kind = type(fragment)
        if kind is str:
            if fragment:
                group.append(fragment)
                tail = fragment[-1]
        elif kind is ScalarFragment:
            # Interpolated expression output: rendered text for the tail
            # bookkeeping (document splits follow *real* line positions),
            # placeholder candidate for the group flush.
            group.append(fragment)
            tail = fragment.rendered[-1]
        elif kind is DocumentSplit:
            # A separator only separates at the start of an output line;
            # mid-line it is literal text (and the scoped parse, or the
            # fallback, deals with whatever that means).
            if not tail or tail == "\n":
                flush()
                skeleton_parts.append(fragment.literal)
            else:
                group.append(fragment.literal)
                tail = "\n"
        else:  # StructuredFragment
            group.append(fragment)
            tail = "_"  # placeholder lines never end with a newline
    flush()
    return documents, "".join(skeleton_parts)


def _flush_group(
    group: list,
    documents: list[dict],
    source_name: str,
    shared: bool = False,
) -> str:
    """Parse one document group, splicing its structured fragments in.

    Returns the skeleton text (placeholders included) for the sources map.
    """
    try:
        parts, structs, glued_after_placeholder = _group_parts(group)
    except _ScalarLayout:
        # A scalar placeholder turned out to be glued to following text
        # (``name: {{ .x }}-web``): re-assemble with every scalar inlined
        # as text, restoring the pre-placeholder behaviour for this group
        # (memoized on the joined text, one parse per distinct rendering).
        return _flush_group(
            [item.text() if type(item) is ScalarFragment else item for item in group],
            documents,
            source_name,
            shared,
        )
    skeleton = "".join(parts)
    if not skeleton.strip():
        # Whitespace-only group: the text path's early-out for blank output
        # (placeholder lines are never blank, so no structure is lost here).
        return skeleton
    if not structs:
        parsed = _parse_group_text_memo(skeleton, source_name)
        if shared:
            # Read-only consumer: hand out the memoized parse directly.
            documents.extend(document for document in parsed if document)
        else:
            documents.extend(
                _copy_document(document) for document in parsed if document
            )
        return skeleton
    if glued_after_placeholder or skeleton.count(PLACEHOLDER_PREFIX) != len(structs):
        # Glue on a placeholder line, or a rendered value containing the
        # placeholder prefix: ambiguous layouts go to the reference path.
        documents.extend(_parse_text_fallback(group, source_name))
        return skeleton
    try:
        parsed = _parse_group_text_memo(skeleton, source_name)
        table = {token: (as_mapping, value) for token, as_mapping, value in structs}
        consumed: set[str] = set()
        spliced = [
            _substitute(document, table, consumed, shared) for document in parsed
        ]
        if len(consumed) != len(structs):
            raise _SpliceError("unconsumed placeholder")
    except (_SpliceError, RenderError):
        documents.extend(_parse_text_fallback(group, source_name))
        return skeleton
    documents.extend(document for document in spliced if document)
    return skeleton


def _group_parts(group: list) -> tuple[list[str], list[tuple[str, bool, Any]], bool]:
    """Build one group's skeleton parts and placeholder table.

    Returns ``(parts, structs, glued_after_placeholder)`` where ``structs``
    holds ``(token, splice_as_mapping, value)`` for every placeholder --
    structured fragments splice their native value, scalar fragments their
    pre-resolved scalar.  A scalar fragment becomes a placeholder only when
    it owns a whole value position: directly after ``": "`` or ``"- "``,
    followed by a line break (or the end of the group), with rendered text
    the strict resolver understands.  Everything else contributes rendered
    text exactly as before; glue discovered *after* a scalar placeholder
    was already emitted raises :class:`_ScalarLayout` (the caller
    re-assembles with scalars inlined).
    """
    parts: list[str] = []
    structs: list[tuple[str, bool, Any]] = []
    tail = ""  # last character of the skeleton so far ("_" = placeholder)
    prev2 = ""  # last two characters, for the value-position check
    scalar_tail = False  # the trailing placeholder is a scalar's
    glued_after_placeholder = False
    for item in group:
        kind = type(item)
        if kind is str:
            if tail == "_" and not item.startswith("\n"):
                if scalar_tail:
                    raise _ScalarLayout(item[:32])
                # Text glued onto a placeholder line: the glue would land in
                # (or next to) the spliced value, which only the text path
                # can interpret.  Keep building the skeleton for `sources`,
                # but parse this group via the fallback.
                glued_after_placeholder = True
            parts.append(item)
            tail = item[-1]
            prev2 = (prev2 + item)[-2:]
            scalar_tail = False
            continue
        if kind is ScalarFragment:
            rendered = item.rendered
            if tail == "_":
                if scalar_tail:
                    raise _ScalarLayout(rendered[:32])
                glued_after_placeholder = True
            elif prev2 in (": ", "- "):
                try:
                    resolved = _resolve_scalar_text(rendered)
                except _UnsupportedYaml:
                    pass
                else:
                    token = f"{PLACEHOLDER_PREFIX}{len(structs)}__"
                    parts.append(token)
                    structs.append((token, False, resolved))
                    tail = "_"
                    prev2 = "__"
                    scalar_tail = True
                    continue
            # Mid-line or unresolvable text: inline, the pre-placeholder
            # behaviour (the skeleton then varies with the value).
            parts.append(rendered)
            tail = rendered[-1]
            prev2 = (prev2 + rendered)[-2:]
            scalar_tail = False
            continue
        # StructuredFragment
        if tail == "_" and not item.leading_newline:
            if scalar_tail:
                raise _ScalarLayout("structured fragment glue")
            glued_after_placeholder = True
        at_line_start = item.leading_newline or not parts or tail == "\n"
        if not at_line_start:
            # Mid-line structure (``foo: {{ toYaml .x }}``): no whole line
            # to own, so this fragment contributes text like the text path.
            text = item.text()
            if text:
                parts.append(text)
                tail = text[-1]
                prev2 = (prev2 + text)[-2:]
            scalar_tail = False
            continue
        token = f"{PLACEHOLDER_PREFIX}{len(structs)}__"
        prefix = ("\n" if item.leading_newline else "") + " " * item.indent
        if type(item.value) is dict or isinstance(item.value, Mapping):
            parts.append(f"{prefix}{token}: null")
            structs.append((token, True, item.value))
        else:
            parts.append(prefix + token)
            structs.append((token, False, item.value))
        tail = "_"
        prev2 = "__"
        scalar_tail = False
    return parts, structs, glued_after_placeholder


def _resolve_scalar_text(text: str) -> Any:
    """What the text path parses for ``text`` in a whole value position.

    Mirrors the ``key: <text>`` / ``- <text>`` contexts exactly:
    value-position spaces strip, an empty value is ``null``, everything
    else goes through the strict inline resolver (quoted strings, empty
    flow collections, unambiguous plain scalars).  Raises
    :class:`_UnsupportedYaml` whenever the real text could mean anything
    more -- newlines restructure the document, ``#`` can start a comment,
    a bare ``-`` or document marker is indentation-sensitive -- sending
    the fragment down the inline-text path instead.
    """
    if "\n" in text or _UNSUPPORTED_CHARS_RE.search(text):
        raise _UnsupportedYaml("structural characters in scalar text")
    stripped = text.strip(" ")
    if not stripped:
        return None
    if stripped == "-" or stripped.startswith(("---", "...")):
        raise _UnsupportedYaml("indicator-only scalar")
    return _resolve_flow(stripped)


def _parse_group_text_memo(text: str, source_name: str) -> list[Any]:
    """:func:`_parse_group_text`, memoized on the skeleton text.

    The memoized result is shared: callers must either rebuild every
    container they emit (the splice does) or copy (:func:`_copy_document`).
    Parse *errors* are not memoized -- the error path re-raises fresh with
    the offending source name.
    """
    cached = _SKELETON_MEMO.get(text)
    if cached is None:
        cached = _parse_group_text(text, source_name)
        _SKELETON_MEMO[text] = cached
        while len(_SKELETON_MEMO) > _SKELETON_MEMO_MAXSIZE:
            _SKELETON_MEMO.pop(next(iter(_SKELETON_MEMO)), None)
    return cached


def _parse_group_text(text: str, source_name: str) -> list[Any]:
    """Parse one group's text: fast subset parser first, PyYAML second."""
    global _SKELETON_PARSE_COUNT
    _SKELETON_PARSE_COUNT += 1
    try:
        return parse_simple_yaml(text)
    except _UnsupportedYaml:
        pass
    try:
        return list(yaml_load_all(text))
    except yaml.YAMLError as exc:
        raise RenderError(
            f"template {source_name} produced invalid YAML: {exc}\n--- output ---\n{text}"
        ) from exc


def _copy_document(document: Any) -> Any:
    """A mutation-safe copy of a memoized parse result.

    Containers are rebuilt recursively; scalars (strings, numbers, booleans,
    ``None``, and whatever else PyYAML resolved -- dates included) are
    immutable and pass through shared.
    """
    if isinstance(document, dict):
        return {key: _copy_document(value) for key, value in document.items()}
    if isinstance(document, list):
        return [_copy_document(item) for item in document]
    return document


def _parse_text_fallback(group: list, source_name: str) -> list[dict]:
    """The reference behaviour: stringify the fragments, parse the text."""
    text = "".join(item if type(item) is str else item.text() for item in group)
    if not text.strip():
        return []
    try:
        parsed = list(yaml_load_all(text))
    except yaml.YAMLError as exc:
        raise RenderError(
            f"template {source_name} produced invalid YAML: {exc}\n--- output ---\n{text}"
        ) from exc
    return [document for document in parsed if document]


# ---------------------------------------------------------------------------
# Placeholder substitution
# ---------------------------------------------------------------------------


def _substitute(
    node: Any, table: dict[str, tuple[bool, Any]], consumed: set[str], shared: bool = False
) -> Any:
    """Rebuild ``node`` with placeholders replaced by native values.

    Rebuilding (rather than mutating) doubles as the copy that keeps parse
    caches and chart values isolated from whatever the caller mutates later.
    Mapping placeholders splice their entries in place with sequential
    insertion -- the same last-wins-first-position semantics PyYAML applies
    to duplicate keys in real text.

    ``shared=True`` (read-only consumers) stops rebuilding once every
    placeholder has been consumed: the group-level count guard guarantees
    the skeleton contains exactly ``len(table)`` placeholder occurrences, so
    the remaining subtrees are placeholder-free and safe to alias.
    """
    if shared and len(consumed) == len(table):
        return node
    # Parsed nodes come from the subset parser or PyYAML's SafeLoader: the
    # containers are exactly ``dict``/``list`` and the scalars plain types,
    # so identity checks are safe (an exotic subclass would fall through to
    # ``return node``, leave its placeholder unconsumed, and send the group
    # to the text fallback via the unconsumed-placeholder guard).
    kind = type(node)
    if kind is dict:
        out: dict = {}
        for key, value in node.items():
            entry = table.get(key) if type(key) is str else None
            if entry is not None:
                as_mapping, payload = entry
                if not as_mapping or key in consumed:
                    raise _SpliceError(key)
                consumed.add(key)
                for spliced_key, spliced_value in payload.items():
                    out[_native_key(spliced_key)] = _native_value(spliced_value)
            else:
                out[key] = _substitute(value, table, consumed, shared)
        return out
    if kind is list:
        return [_substitute(item, table, consumed, shared) for item in node]
    if kind is str:
        entry = table.get(node)
        if entry is not None:
            as_mapping, payload = entry
            if as_mapping or node in consumed:
                raise _SpliceError(node)
            consumed.add(node)
            return _native_value(payload)
        if PLACEHOLDER_PREFIX in node:
            # A placeholder fused into a larger scalar: layout we do not
            # understand, let the text path handle it.
            raise _SpliceError(node)
    return node


def _native_value(value: Any) -> Any:
    """What dumping ``value`` and parsing it back produces, without YAML.

    Containers are copied (the text path always yields fresh objects, and
    aliasing chart values into documents would let caller mutations corrupt
    the chart), tuples become lists, scalars pass through -- PyYAML's
    emitter quotes any string the resolver would re-type, so strings are
    round-trip stable.  Exotic types abort the splice; the text-path
    fallback then reproduces the reference behaviour, errors included.
    """
    kind = type(value)
    if kind is str or kind is bool or kind is int or kind is float or value is None:
        return value
    if kind is dict or isinstance(value, Mapping):
        return {_native_key(key): _native_value(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_native_value(item) for item in value]
    if isinstance(value, (str, bool, int, float)):
        # Scalar subclasses, after the container checks (a str subclass is
        # not a Mapping; behaviour matches the pre-fast-path ordering).
        return value
    raise _SpliceError(value)


def _native_key(key: Any) -> Any:
    """Mapping keys must stay scalar: YAML would turn a tuple key into an
    (unhashable) list and fail the parse -- the fallback reproduces that."""
    if isinstance(key, (str, bool, int, float)) or key is None:
        return key
    raise _SpliceError(key)


# ---------------------------------------------------------------------------
# Fast parser for the block-YAML subset rendered skeletons use
# ---------------------------------------------------------------------------
#
# Rendered manifests are almost entirely plain block YAML: nested mappings,
# block sequences, inline scalars, the occasional ``{}``/``[]``.  Parsing
# that subset directly is several times faster than a general YAML load
# (even libyaml's C scanner pays Python-side construction and resolution).
# The parser *must never guess*: any construct outside the subset -- flow
# collections, quotes it cannot decode exactly, anchors, tags, block
# scalars, comments, tabs, multi-line or ambiguous plain scalars -- raises
# ``_UnsupportedYaml`` and the caller re-parses with PyYAML.  Scalar
# resolution replicates PyYAML's YAML 1.1 ``SafeLoader`` rules (booleans,
# ints with base prefixes, floats, nulls); anything it is not sure about
# (timestamps, sexagesimals, ``=``) bails out.

_BOOL_VALUES = {
    "yes": True, "Yes": True, "YES": True, "true": True, "True": True, "TRUE": True,
    "on": True, "On": True, "ON": True,
    "no": False, "No": False, "NO": False, "false": False, "False": False,
    "FALSE": False, "off": False, "Off": False, "OFF": False,
}
_NULL_VALUES = frozenset(("~", "null", "Null", "NULL"))
_INT_PLAIN_RE = re.compile(r"[-+]?(?:0|[1-9][0-9_]*)\Z")
_INT_BASE_RE = re.compile(r"[-+]?0(?:b[0-1_]+|x[0-9a-fA-F_]+|[0-7_]+)\Z")
_FLOAT_PLAIN_RE = re.compile(
    r"(?:[-+]?(?:[0-9][0-9_]*)\.[0-9_]*(?:[eE][-+][0-9]+)?"
    r"|\.[0-9_]+(?:[eE][-+][0-9]+)?"
    r"|[-+]?\.(?:inf|Inf|INF)"
    r"|\.(?:nan|NaN|NAN))\Z"
)
#: Plain scalars PyYAML may resolve to types we do not reproduce: timestamps
#: (dates), sexagesimal numbers (handled by the ``:`` bail-out anyway) and
#: the ``=`` value special.  Conservative by construction.
_AMBIGUOUS_PLAIN_RE = re.compile(r"(?:[0-9][0-9]{3}-[0-9][0-9]?-[0-9][0-9]?|=)")
#: Leading characters that start YAML constructs outside the subset.
_UNSUPPORTED_LEAD = tuple("&*!|>%@`?,}]")
#: Characters that disqualify a whole group from the fast parser: tabs,
#: comments, and the YAML 1.1 line breaks this parser does not split on.
_UNSUPPORTED_CHARS_RE = re.compile("[\t#\r\x85\u2028\u2029]")


def parse_simple_yaml(text: str) -> list[Any]:
    """Parse block-YAML subset ``text`` into its (non-empty) documents.

    Raises :class:`_UnsupportedYaml` whenever the text could mean anything
    the subset does not model bit-exactly; the caller falls back to PyYAML.
    """
    if _UNSUPPORTED_CHARS_RE.search(text):
        # Tabs, comments, and every non-"\n" YAML 1.1 line break (CR, NEL,
        # LS, PS): this parser splits on "\n" only, PyYAML does not.
        raise _UnsupportedYaml("tabs, comments or exotic line breaks")
    lines: list[tuple[int, str]] = []
    for raw in text.split("\n"):
        stripped = raw.strip(" ")
        if not stripped:
            continue
        if stripped.startswith(("---", "...")):
            raise _UnsupportedYaml("document markers in group text")
        lines.append((len(raw) - len(raw.lstrip(" ")), stripped))
    if not lines:
        return []
    value, next_index = _parse_node(lines, 0, lines[0][0])
    if next_index != len(lines):
        raise _UnsupportedYaml("trailing content")
    return [value] if value is not None else []


def _parse_node(lines: list[tuple[int, str]], index: int, indent: int) -> tuple[Any, int]:
    content = lines[index][1]
    if content == "-" or content.startswith("- "):
        return _parse_sequence(lines, index, indent)
    if content.endswith(":") or ": " in content:
        return _parse_mapping(lines, index, indent)
    value = _resolve_flow(content)
    index += 1
    if index < len(lines) and lines[index][0] >= indent:
        raise _UnsupportedYaml("multi-line scalar")
    return value, index


def _parse_mapping(lines: list[tuple[int, str]], index: int, indent: int) -> tuple[dict, int]:
    out: dict = {}
    total = len(lines)
    while index < total:
        line_indent, content = lines[index]
        if line_indent < indent:
            break
        if line_indent > indent or content == "-" or content.startswith("- "):
            raise _UnsupportedYaml("irregular mapping layout")
        key, rest = _split_key(content)
        if rest:
            out[key] = _resolve_flow(rest)
            index += 1
            if index < total and lines[index][0] > indent:
                raise _UnsupportedYaml("continuation under inline value")
        else:
            index += 1
            if index < total and lines[index][0] > indent:
                out[key], index = _parse_node(lines, index, lines[index][0])
            elif index < total and lines[index][0] == indent and (
                lines[index][1] == "-" or lines[index][1].startswith("- ")
            ):
                # Block sequences may sit at the same indent as their key.
                out[key], index = _parse_sequence(lines, index, indent)
            else:
                out[key] = None
    return out, index


def _parse_sequence(lines: list[tuple[int, str]], index: int, indent: int) -> tuple[list, int]:
    items: list = []
    total = len(lines)
    while index < total:
        line_indent, content = lines[index]
        if line_indent != indent or not (content == "-" or content.startswith("- ")):
            if line_indent > indent:
                raise _UnsupportedYaml("irregular sequence layout")
            break
        if content == "-":
            index += 1
            if index < total and lines[index][0] > indent:
                value, index = _parse_node(lines, index, lines[index][0])
            else:
                value = None
        else:
            inner = content[2:].lstrip(" ")
            inner_indent = indent + (len(content) - len(inner))
            # Re-enter the parser as if the inline content started a line of
            # its own at its real column; continuation lines line up with it.
            lines[index] = (inner_indent, inner)
            value, index = _parse_node(lines, index, inner_indent)
        items.append(value)
    return items, index


#: Successful key-split memo: manifest lines repeat heavily across rendered
#: charts (``apiVersion: v1``, ``metadata:``, ``protocol: TCP``...), so the
#: split + scalar resolution runs once per distinct line.  Results are
#: ``(resolved key, rest)`` tuples of immutable scalars/strings, safe to
#: share; unsupported lines keep raising (never memoized).
_SPLIT_KEY_MEMO: dict[str, tuple[Any, str]] = {}
_SPLIT_KEY_MEMO_MAX = 16384


def _split_key(content: str) -> tuple[Any, str]:
    """Split ``key: value`` / ``key:`` content into (resolved key, rest)."""
    cached = _SPLIT_KEY_MEMO.get(content)
    if cached is not None:
        return cached
    result = _split_key_uncached(content)
    if len(_SPLIT_KEY_MEMO) < _SPLIT_KEY_MEMO_MAX:
        _SPLIT_KEY_MEMO[content] = result
    return result


def _split_key_uncached(content: str) -> tuple[Any, str]:
    if content.endswith(":") and ": " not in content:
        key_text, rest = content[:-1], ""
    else:
        cut = content.find(": ")
        if cut < 0:
            raise _UnsupportedYaml("scalar line in mapping context")
        key_text, rest = content[:cut], content[cut + 2 :].strip(" ")
        if ": " in rest or rest.endswith(":"):
            raise _UnsupportedYaml("nested colon in value")
    if not key_text or key_text[0] in "\"'{[" or key_text.startswith(_UNSUPPORTED_LEAD):
        raise _UnsupportedYaml("non-plain mapping key")
    if key_text == "<<":
        raise _UnsupportedYaml("merge key")
    return _resolve_plain(key_text), rest


def _resolve_flow(text: str) -> Any:
    """Resolve an inline value: empty flow collections, quotes, or plain."""
    if text == "{}":
        return {}
    if text == "[]":
        return []
    first = text[0]
    if first in "\"'":
        if len(text) < 2 or text[-1] != first or text.find(first, 1) != len(text) - 1:
            raise _UnsupportedYaml("complex quoted scalar")
        body = text[1:-1]
        if "\\" in body:
            raise _UnsupportedYaml("escape sequence")
        return body
    if first in "{[" or first in _UNSUPPORTED_LEAD or (first == "-"
                                                       and not text[1:2].strip()):
        # A lone "-" included: in value position it is a block-sequence
        # indicator PyYAML rejects, never the string "-".
        raise _UnsupportedYaml("flow or special construct")
    return _resolve_plain(text)


#: Resolution memo: mapping keys and plain scalars repeat across every
#: rendered manifest (``metadata``, ``spec``, ``containers``, protocol
#: names, ...), so the per-scalar resolver runs its regex cascade once per
#: distinct string.  Only successful resolutions are memoized (unsupported
#: scalars must keep raising for the PyYAML fallback); resolved values are
#: immutable scalars, safe to share.  The cap bounds adversarial growth.
_PLAIN_MEMO: dict[str, Any] = {}
_PLAIN_MEMO_MAX = 16384


def _resolve_plain(text: str) -> Any:
    """YAML 1.1 plain-scalar resolution, exactly where it is unambiguous."""
    try:
        return _PLAIN_MEMO[text]
    except KeyError:
        pass
    if ":" in text:
        # Sexagesimal ints/floats and odd mapping shapes live here.
        raise _UnsupportedYaml("colon in plain scalar")
    resolved = _resolve_plain_uncached(text)
    if len(_PLAIN_MEMO) < _PLAIN_MEMO_MAX:
        _PLAIN_MEMO[text] = resolved
    return resolved


def _resolve_plain_uncached(text: str) -> Any:
    if text in _BOOL_VALUES:
        return _BOOL_VALUES[text]
    if text in _NULL_VALUES:
        return None
    head = text[0]
    if head.isdigit() or head in "+-.":
        if _INT_PLAIN_RE.match(text):
            return int(text.replace("_", ""))
        if _INT_BASE_RE.match(text):
            return _int_with_base(text)
        if _FLOAT_PLAIN_RE.match(text):
            return _float_value(text)
        if _AMBIGUOUS_PLAIN_RE.match(text):
            raise _UnsupportedYaml("ambiguous scalar")
    if _AMBIGUOUS_PLAIN_RE.match(text):
        raise _UnsupportedYaml("ambiguous scalar")
    return text


def _int_with_base(text: str) -> int:
    sign = -1 if text[0] == "-" else 1
    magnitude = text.lstrip("+-").replace("_", "")
    if magnitude.startswith("0b"):
        return sign * int(magnitude[2:], 2)
    if magnitude.startswith("0x"):
        return sign * int(magnitude[2:], 16)
    return sign * int(magnitude[1:] or "0", 8)


def _float_value(text: str) -> float:
    lowered = text.replace("_", "").lower()
    if lowered.endswith(".inf"):
        return float("-inf") if lowered[0] == "-" else float("inf")
    if lowered.endswith(".nan"):
        return float("nan")
    return float(lowered)
