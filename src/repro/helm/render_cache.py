"""Memoized chart rendering with shared-reference warm hits.

Rendering a chart -- template evaluation plus document assembly plus
typed-object construction -- dominates the catalogue sweep.
:class:`RenderCache` memoizes full render results (the dict-native
structured form by default) keyed on ``(chart fingerprint, release
identity, canonical merged values, structured?)``:

* **Key**: the chart fingerprint covers every input that affects rendering
  (:meth:`Chart.fingerprint`), and the values component is canonical
  (:func:`canonical_values`), so equal-but-not-identical override dicts and
  freshly rebuilt but content-identical charts hit the same entry.
* **Shared-reference hits** (the default, ``shared=True``): entries hold the
  rendered documents and *content-interned sealed objects*
  (:mod:`repro.k8s.inventory`) directly, and every hit returns them by
  reference behind fresh top-level containers.  A warm hit therefore skips
  ``objects_from_dicts``, the namespace-defaulting walk and the validation
  walk entirely -- there is no per-hit unpickle.  The price is a contract:
  cached render results are read-only.  Objects enforce it themselves
  (sealed objects raise on attribute assignment); documents and values are
  read-only by convention (the differential suites would catch a violator).
* **Copy-on-read reference mode** (``shared=False``): the pre-interning
  behaviour -- entries are pickle blobs of un-interned mutable objects and
  every hit pays an unpickle.  Kept in-tree as the reference implementation
  the interning property suite diffs against.
* **Fingerprint shipping**: callers that already know the chart fingerprint
  (the process-pool fan-out computes them once in the parent) pass it in and
  skip the re-hash.

The module-level :func:`shared_render_cache` instance backs
``repro.helm.render_chart``; per-experiment caches can be constructed
directly for isolation.
"""

from __future__ import annotations

import pickle
from typing import Any, Mapping

from .chart import Chart
from .renderer import HelmRenderer, ReleaseInfo, RenderedChart
from .values import canonical_values


class RenderCache:
    """A bounded memo of fully rendered charts."""

    def __init__(
        self,
        renderer: HelmRenderer | None = None,
        maxsize: int = 2048,
        shared: bool = True,
    ) -> None:
        self._renderer = renderer or HelmRenderer()
        self._maxsize = maxsize
        self.shared = shared
        #: key -> (release, values, documents, objects, sources) when shared,
        #: else the pickle blob of that tuple (copy-on-read reference mode).
        self._entries: dict[tuple, Any] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict[str, int]:
        """Hit/miss/entry counters (the cache-behaviour tests key on these)."""
        return {"hits": self.hits, "misses": self.misses, "entries": len(self._entries)}

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    # Rendering ----------------------------------------------------------------
    def render(
        self,
        chart: Chart,
        release: ReleaseInfo | None = None,
        overrides: Mapping[str, Any] | None = None,
        fingerprint: str | None = None,
        structured: bool = True,
    ) -> RenderedChart:
        """Render ``chart`` (or return a view of the cached render).

        The key's values component is the canonical form of ``overrides``:
        together with the chart fingerprint (which covers the chart's default
        values) it determines the canonical *merged* values exactly, while
        letting cache hits skip the deep merge entirely.  ``structured``
        selects the dict-native render pipeline (the default) or the classic
        text path; the flag is part of the key because the two produce
        different ``sources`` maps.

        In shared mode a hit returns the cached components by reference
        (fresh top-level list/dict containers, shared content); in reference
        mode it returns a private unpickled copy.
        """
        release = release or ReleaseInfo(name=chart.name)
        fingerprint = fingerprint or chart.fingerprint()
        key = (
            fingerprint,
            release.name,
            release.namespace,
            release.revision,
            release.is_install,
            release.service,
            canonical_values(overrides or {}),
            structured,
        )
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            if self.shared:
                cached_release, values, documents, objects, sources = entry
            else:
                cached_release, values, documents, objects, sources = pickle.loads(entry)
            return RenderedChart(
                chart=chart,
                release=cached_release,
                values=dict(values),
                documents=list(documents),
                objects=list(objects),
                sources=dict(sources),
            )
        self.misses += 1
        if structured:
            rendered = self._renderer.render_structured(
                chart, release, overrides, interned=self.shared
            )
        else:
            rendered = self._renderer.render(
                chart, release, overrides, interned=self.shared
            )
        if self.shared:
            # The entry keeps its own top-level containers, so callers that
            # append to the returned lists cannot grow the cached render.
            self._entries[key] = (
                rendered.release,
                dict(rendered.values),
                list(rendered.documents),
                list(rendered.objects),
                dict(rendered.sources),
            )
        else:
            # Snapshot the pristine result *before* handing it to the caller:
            # the blob is immutable bytes, so later mutations cannot leak back.
            self._entries[key] = pickle.dumps(
                (
                    rendered.release,
                    rendered.values,
                    rendered.documents,
                    rendered.objects,
                    rendered.sources,
                ),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        while len(self._entries) > self._maxsize:
            # pop with a default: under the thread-pool render path two
            # threads may race to evict the same oldest key.
            self._entries.pop(next(iter(self._entries)), None)
        return rendered


_SHARED = RenderCache()


def shared_render_cache() -> RenderCache:
    """The process-wide cache behind ``repro.helm.render_chart``."""
    return _SHARED
