"""Memoized chart rendering with verified shared-reference warm hits.

Rendering a chart -- template evaluation plus document assembly plus
typed-object construction -- dominates the catalogue sweep.
:class:`RenderCache` memoizes full render results (the dict-native
structured form by default) keyed on ``(chart fingerprint, release
identity, canonical merged values, structured?)``:

* **Key**: the chart fingerprint covers every input that affects rendering
  (:meth:`Chart.fingerprint`), and the values component is canonical
  (:func:`canonical_values`), so equal-but-not-identical override dicts and
  freshly rebuilt but content-identical charts hit the same entry.
* **Shared-reference hits** (the default, ``shared=True``): entries hold the
  rendered documents and *content-interned sealed objects*
  (:mod:`repro.k8s.inventory`) directly, and every hit returns them by
  reference behind fresh top-level containers.  A warm hit therefore skips
  ``objects_from_dicts``, the namespace-defaulting walk and the validation
  walk entirely -- there is no per-hit unpickle.  The price is a contract:
  cached render results are read-only.  Objects enforce it themselves
  (sealed objects raise on attribute assignment); documents and values are
  read-only by convention.
* **Corruption detection**: because shared entries live as mutable Python
  state, a convention violator (or an injected ``corrupt`` fault -- see
  :mod:`repro.faults`) could poison every later hit.  Each shared entry
  therefore stores a structural check recorded at store time, re-verified
  on every hit; a mismatch counts in ``corruptions``, evicts the entry and
  falls back to a fresh recompute instead of serving poisoned state.  The
  default check is a near-free shape summary; ``paranoid=True`` upgrades it
  to a content digest of the entry's pickle, catching in-place value edits
  the shape summary cannot see (at real per-hit cost -- benchmarking and
  forensics only).
* **Copy-on-read reference mode** (``shared=False``): the pre-interning
  behaviour -- entries are pickle blobs of un-interned mutable objects and
  every hit pays an unpickle.  Immutable bytes cannot be corrupted in
  place, so no verification applies.  Kept in-tree as the reference
  implementation the interning property suite diffs against.
* **Fingerprint shipping**: callers that already know the chart fingerprint
  (the process-pool fan-out computes them once in the parent) pass it in and
  skip the re-hash.

The module-level :func:`shared_render_cache` instance backs
``repro.helm.render_chart``; per-experiment caches can be constructed
directly for isolation.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import Any, Mapping

from .. import faults
from .chart import Chart
from .renderer import HelmRenderer, ReleaseInfo, RenderedChart
from .values import canonical_values


class RenderCache:
    """A bounded memo of fully rendered charts."""

    def __init__(
        self,
        renderer: HelmRenderer | None = None,
        maxsize: int = 2048,
        shared: bool = True,
        paranoid: bool = False,
    ) -> None:
        self._renderer = renderer or HelmRenderer()
        self._maxsize = maxsize
        self.shared = shared
        self.paranoid = paranoid
        #: key -> (release, values, documents, objects, sources, render_fp,
        #: check) when shared, else the pickle blob of the six components
        #: (copy-on-read reference mode; immutable, so it carries no check).
        #: ``render_fp`` is the render fingerprint -- hashed once on the miss
        #: and replayed on every hit, so warm hits stay hash-free.
        self._entries: dict[tuple, Any] = {}
        self.hits = 0
        self.misses = 0
        self.corruptions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict[str, int]:
        """Hit/miss/corruption/entry counters (the cache tests key on these)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corruptions": self.corruptions,
            "entries": len(self._entries),
        }

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.corruptions = 0

    # Verification -------------------------------------------------------------
    def _check_of(self, values, documents, objects, sources) -> tuple:
        """The integrity check stored with (and re-verified against) an entry.

        Default: a shape summary -- container lengths plus each document's
        top-level key count -- cheap enough for every warm hit.  Paranoid: a
        digest of the full entry pickle, which sees value-level edits too.
        """
        if self.paranoid:
            blob = pickle.dumps(
                (values, documents, objects, sources), protocol=pickle.HIGHEST_PROTOCOL
            )
            return ("digest", hashlib.sha256(blob).hexdigest())
        return (
            len(values),
            len(documents),
            len(objects),
            len(sources),
            tuple(len(doc) if isinstance(doc, dict) else -1 for doc in documents),
        )

    # Rendering ----------------------------------------------------------------
    def render(
        self,
        chart: Chart,
        release: ReleaseInfo | None = None,
        overrides: Mapping[str, Any] | None = None,
        fingerprint: str | None = None,
        structured: bool = True,
    ) -> RenderedChart:
        """Render ``chart`` (or return a verified view of the cached render).

        The key's values component is the canonical form of ``overrides``:
        together with the chart fingerprint (which covers the chart's default
        values) it determines the canonical *merged* values exactly, while
        letting cache hits skip the deep merge entirely.  ``structured``
        selects the dict-native render pipeline (the default) or the classic
        text path; the flag is part of the key because the two produce
        different ``sources`` maps.

        In shared mode a hit re-verifies the entry's integrity check first:
        a corrupted entry is evicted and recomputed rather than served.  A
        verified hit returns the cached components by reference (fresh
        top-level list/dict containers, shared content); in reference mode a
        hit returns a private unpickled copy.
        """
        release = release or ReleaseInfo(name=chart.name)
        fingerprint = fingerprint or chart.fingerprint()
        key = (
            fingerprint,
            release.name,
            release.namespace,
            release.revision,
            release.is_install,
            release.service,
            canonical_values(overrides or {}),
            structured,
        )
        entry = self._entries.get(key)
        if entry is not None:
            faults.fault_point(faults.RENDER_CACHE_READ)
            if self.shared:
                cached_release, values, documents, objects, sources, render_fp, check = entry
                if faults.corruption_requested(faults.RENDER_CACHE_READ):
                    _corrupt_entry(documents, objects)
                if self._check_of(values, documents, objects, sources) != check:
                    # Poisoned entry: never serve it.  Evict and fall through
                    # to a full recompute, which re-stores a pristine entry.
                    self.corruptions += 1
                    self._entries.pop(key, None)
                    entry = None
                else:
                    self.hits += 1
                    return RenderedChart(
                        chart=chart,
                        release=cached_release,
                        values=dict(values),
                        documents=list(documents),
                        objects=list(objects),
                        sources=dict(sources),
                        render_fingerprint=render_fp,
                    )
            else:
                self.hits += 1
                cached_release, values, documents, objects, sources, render_fp = pickle.loads(entry)
                return RenderedChart(
                    chart=chart,
                    release=cached_release,
                    values=dict(values),
                    documents=list(documents),
                    objects=list(objects),
                    sources=dict(sources),
                    render_fingerprint=render_fp,
                )
        self.misses += 1
        render_fp = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
        if structured:
            rendered = self._renderer.render_structured(
                chart, release, overrides, interned=self.shared
            )
        else:
            rendered = self._renderer.render(
                chart, release, overrides, interned=self.shared
            )
        rendered.render_fingerprint = render_fp
        if self.shared:
            # The entry keeps its own top-level containers, so callers that
            # append to the returned lists cannot grow the cached render.
            values = dict(rendered.values)
            documents = list(rendered.documents)
            objects = list(rendered.objects)
            sources = dict(rendered.sources)
            self._entries[key] = (
                rendered.release,
                values,
                documents,
                objects,
                sources,
                render_fp,
                self._check_of(values, documents, objects, sources),
            )
        else:
            # Snapshot the pristine result *before* handing it to the caller:
            # the blob is immutable bytes, so later mutations cannot leak back.
            self._entries[key] = pickle.dumps(
                (
                    rendered.release,
                    rendered.values,
                    rendered.documents,
                    rendered.objects,
                    rendered.sources,
                    render_fp,
                ),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        while len(self._entries) > self._maxsize:
            # pop with a default: under the thread-pool render path two
            # threads may race to evict the same oldest key.
            self._entries.pop(next(iter(self._entries)), None)
        return rendered


def _corrupt_entry(documents: list, objects: list) -> None:
    """Damage a cached entry in place (the injected ``corrupt`` fault).

    Truncates the stored documents/objects -- the kind of damage a read-only
    contract violator would cause -- so the shape check must catch it.
    """
    if documents:
        documents.pop()
    else:
        documents.append({"corrupted": True})
    if objects:
        objects.pop()


_SHARED = RenderCache()


def shared_render_cache() -> RenderCache:
    """The process-wide cache behind ``repro.helm.render_chart``."""
    return _SHARED
