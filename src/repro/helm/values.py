"""Helm values: deep merging and dotted-path access.

A Helm *manifest* (``values.yaml``) is a nested mapping.  Users override it
with ``--set`` style assignments or additional value files; overrides are
merged recursively, with later layers winning, exactly as Helm does.
"""

from __future__ import annotations

import copy
import hashlib
import marshal
from collections.abc import Mapping
from typing import Any, Iterable

import yaml

from ..k8s.yamlio import yaml_dump, yaml_load
from .errors import ValuesError


def deep_merge(base: Mapping[str, Any], override: Mapping[str, Any]) -> dict[str, Any]:
    """Recursively merge ``override`` on top of ``base`` and return a new dict.

    Mappings are merged key by key; any other type (including lists) is
    replaced wholesale, matching Helm's coalescing behaviour.
    """
    merged: dict[str, Any] = copy.deepcopy(dict(base))
    for key, value in override.items():
        existing = merged.get(key)
        if isinstance(existing, Mapping) and isinstance(value, Mapping):
            merged[key] = deep_merge(existing, value)
        else:
            merged[key] = copy.deepcopy(value)
    return merged


def merged_view(base: Mapping[str, Any], override: Mapping[str, Any]) -> dict[str, Any]:
    """:func:`deep_merge` with structural sharing instead of deep copies.

    Subtrees the override does not touch are returned *by reference* from
    ``base``; only the mapping spines along overridden paths are rebuilt.
    The result is therefore a read-only view: callers must not mutate it (or
    anything reachable from it), because that would write through to the
    chart's default values.  The interned render path uses this -- its
    outputs are read-only by contract anyway -- while :func:`deep_merge`
    remains the mutable-result reference used everywhere else.
    """
    if not override:
        return base if isinstance(base, dict) else dict(base)
    merged: dict[str, Any] = dict(base)
    for key, value in override.items():
        existing = merged.get(key)
        if isinstance(existing, Mapping) and isinstance(value, Mapping):
            merged[key] = merged_view(existing, value)
        else:
            merged[key] = value
    return merged


def get_path(values: Mapping[str, Any], path: str, default: Any = None) -> Any:
    """Look up a dotted path (``primary.service.ports.mysql``) in ``values``."""
    current: Any = values
    if not path:
        return current
    for part in path.split("."):
        if isinstance(current, Mapping) and part in current:
            current = current[part]
        else:
            return default
    return current


def set_path(values: dict[str, Any], path: str, value: Any) -> None:
    """Set a dotted path inside ``values`` in place, creating nested dicts."""
    if not path:
        raise ValuesError("cannot set an empty path")
    parts = path.split(".")
    current: dict[str, Any] = values
    for part in parts[:-1]:
        node = current.get(part)
        if not isinstance(node, dict):
            node = {}
            current[part] = node
        current = node
    current[parts[-1]] = value


def parse_set_string(assignment: str) -> tuple[str, Any]:
    """Parse a single ``--set key=value`` assignment into ``(path, value)``.

    Values are coerced the way Helm does: ``true``/``false`` become booleans,
    integers become ``int``, ``null`` becomes ``None``; anything else stays a
    string.
    """
    if "=" not in assignment:
        raise ValuesError(f"invalid --set assignment: {assignment!r}")
    path, _, raw = assignment.partition("=")
    path = path.strip()
    raw = raw.strip()
    if not path:
        raise ValuesError(f"invalid --set assignment: {assignment!r}")
    value: Any
    if raw.lower() == "true":
        value = True
    elif raw.lower() == "false":
        value = False
    elif raw.lower() in ("null", "~", ""):
        value = None
    else:
        try:
            value = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                value = raw
    return path, value


def apply_set_strings(values: Mapping[str, Any], assignments: Iterable[str]) -> dict[str, Any]:
    """Apply a sequence of ``--set`` assignments on top of ``values``."""
    result = copy.deepcopy(dict(values))
    for assignment in assignments:
        path, value = parse_set_string(assignment)
        set_path(result, path, value)
    return result


def load_values(text: str) -> dict[str, Any]:
    """Parse a ``values.yaml`` document; an empty document yields ``{}``."""
    try:
        data = yaml_load(text)
    except yaml.YAMLError as exc:
        raise ValuesError(f"invalid values YAML: {exc}") from exc
    if data is None:
        return {}
    if not isinstance(data, dict):
        raise ValuesError("values.yaml must contain a mapping at the top level")
    return data


def dump_values(values: Mapping[str, Any]) -> str:
    """Serialize values back to YAML (stable key order for reproducibility)."""
    return yaml_dump(dict(values), sort_keys=True, default_flow_style=False)


def _feed_values(update, value: Any) -> None:
    """Feed one values node into a running digest, canonically.

    Mirrors :func:`canonical_values` semantics -- mapping key order and
    identity insensitive, ``list`` and ``tuple`` equivalent, scalars
    tagged by type -- but streams byte chunks straight to ``update``
    (a ``list.append`` collecting for one hash call, or a running
    ``digest.update``) instead of materializing a canonical tuple tree
    and its ``repr``.
    """
    kind = type(value)
    if kind is str:
        update(b"s")
        update(value.encode("utf-8"))
    elif kind is dict:
        update(b"{")
        try:
            items = sorted(value.items())
        except TypeError:
            # Mixed-type keys (YAML allows them): fall back to the
            # canonical_values ordering, by type name and string form.
            items = sorted(
                value.items(), key=lambda kv: (type(kv[0]).__name__, str(kv[0]))
            )
        for key, item in items:
            update(f"k{type(key).__name__}:{key}".encode("utf-8"))
            update(b"\x00")
            _feed_values(update, item)
        update(b"}")
    elif kind is bool:
        update(b"b1" if value else b"b0")
    elif kind is int:
        update(b"i%d" % value)
    elif kind is float:
        update(b"f")
        update(repr(value).encode("utf-8"))
    elif value is None:
        update(b"n")
    elif kind is list or kind is tuple:
        update(b"[")
        for item in value:
            _feed_values(update, item)
        update(b"]")
    else:
        update(f"o{kind.__name__}:{value!r}".encode("utf-8"))
    update(b"\x00")


def fingerprint_values(value: Any) -> str:
    """A blake2b *change-detection* fingerprint of a values tree (hex, 16 bytes).

    This is the delta classifier's hot loop -- a watch round re-hashes
    every chart's values every time -- so the tree is serialized by
    ``marshal`` in C rather than walked in Python.  The contract is
    one-sided on purpose: a content change always changes the
    fingerprint, but a *reordered* mapping with equal content may change
    it too (``marshal`` preserves insertion order).  Every consumer errs
    safe on that axis: a spurious mismatch reclassifies the chart for
    re-rendering, which is wasted work but never a stale reuse.  Use
    :func:`canonical_values` where order-insensitive equality matters
    (the render cache's override keys, ``Chart.fingerprint``).

    Marshal version 2 is pinned because later versions emit object
    back-references, which would make the bytes depend on string-sharing
    patterns (object identity) rather than content alone.  Trees
    containing types marshal cannot serialize fall back to the canonical
    :func:`_feed_values` walk.
    """
    try:
        payload = marshal.dumps(value, 2)
    except ValueError:
        parts: list[bytes] = []
        _feed_values(parts.append, value)
        payload = b"".join(parts)
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


def canonical_values(value: Any) -> Any:
    """A hashable, order-insensitive canonical form of a values tree.

    Two values dictionaries that compare equal produce identical canonical
    forms regardless of key insertion order or object identity -- the render
    cache keys on this, so equal-but-not-identical overrides share a cache
    entry.  Mappings sort their items by type name and string form (YAML
    allows non-string keys, which Python cannot sort against strings).
    """
    if isinstance(value, Mapping):
        return (
            "map",
            tuple(
                sorted(
                    (type(key).__name__, str(key), canonical_values(item))
                    for key, item in value.items()
                )
            ),
        )
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(canonical_values(item) for item in value))
    if isinstance(value, (str, int, float, bool)) or value is None:
        return (type(value).__name__, value)
    return (type(value).__name__, repr(value))
