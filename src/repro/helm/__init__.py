"""Helm chart engine substrate.

Models Helm charts (values, templates, dependencies), renders them with a
Go-template subset engine, and produces typed Kubernetes objects the analyzer
and cluster simulator consume.
"""

from .chart import Chart, ChartDependency, ChartMetadata, ChartRepository, ChartTemplate
from .errors import ChartError, HelmError, RenderError, TemplateError, ValuesError
from .render_cache import RenderCache, shared_render_cache
from .renderer import HelmRenderer, ReleaseInfo, RenderedChart, render_chart
from .structured import clear_skeleton_parse_memo, skeleton_parse_count
from .template import (
    CompiledTemplate,
    TemplateEngine,
    clear_template_cache,
    compile_source,
    parse_template,
    template_parse_count,
    tokenize_expression,
)
from .values import (
    apply_set_strings,
    canonical_values,
    deep_merge,
    dump_values,
    fingerprint_values,
    get_path,
    load_values,
    parse_set_string,
    set_path,
)

__all__ = [
    "Chart",
    "ChartDependency",
    "ChartError",
    "ChartMetadata",
    "ChartRepository",
    "ChartTemplate",
    "CompiledTemplate",
    "HelmError",
    "HelmRenderer",
    "ReleaseInfo",
    "RenderCache",
    "RenderError",
    "RenderedChart",
    "TemplateEngine",
    "TemplateError",
    "ValuesError",
    "apply_set_strings",
    "canonical_values",
    "clear_skeleton_parse_memo",
    "clear_template_cache",
    "compile_source",
    "deep_merge",
    "dump_values",
    "fingerprint_values",
    "get_path",
    "load_values",
    "parse_set_string",
    "parse_template",
    "render_chart",
    "set_path",
    "shared_render_cache",
    "skeleton_parse_count",
    "template_parse_count",
    "tokenize_expression",
]
