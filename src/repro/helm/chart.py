"""Chart model: metadata, values, templates and dependencies."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from .errors import ChartError
from .values import _feed_values, deep_merge, load_values


@dataclass
class ChartMetadata:
    """The ``Chart.yaml`` contents we care about."""

    name: str
    version: str = "0.1.0"
    app_version: str = ""
    description: str = ""
    home: str = ""
    organization: str = ""

    def to_dict(self) -> dict:
        """The ``Chart.yaml`` mapping this metadata serializes to."""
        data = {
            "apiVersion": "v2",
            "name": self.name,
            "version": self.version,
        }
        if self.app_version:
            data["appVersion"] = self.app_version
        if self.description:
            data["description"] = self.description
        if self.home:
            data["home"] = self.home
        return data


@dataclass
class ChartDependency:
    """A dependency entry from ``Chart.yaml``.

    ``condition`` follows Helm semantics: a dotted path into the parent's
    values which, when falsy, disables the dependency.
    """

    name: str
    version: str = "*"
    repository: str = ""
    condition: str = ""
    alias: str = ""

    @property
    def effective_name(self) -> str:
        """The values key and subchart slot this dependency occupies."""
        return self.alias or self.name


@dataclass
class ChartTemplate:
    """One file under ``templates/``."""

    name: str
    source: str

    @property
    def is_helper(self) -> bool:
        """Helper files (``_*.tpl``) only contribute ``define`` blocks."""
        base = self.name.rsplit("/", 1)[-1]
        return base.startswith("_") or base.endswith(".tpl")


@dataclass
class Chart:
    """An in-memory Helm chart."""

    metadata: ChartMetadata
    values: dict[str, Any] = field(default_factory=dict)
    templates: list[ChartTemplate] = field(default_factory=list)
    dependencies: list[ChartDependency] = field(default_factory=list)
    subcharts: dict[str, "Chart"] = field(default_factory=dict)

    @property
    def name(self) -> str:
        """The chart name from ``Chart.yaml``."""
        return self.metadata.name

    @property
    def version(self) -> str:
        """The chart version from ``Chart.yaml``."""
        return self.metadata.version

    # Construction helpers ---------------------------------------------------
    def add_template(self, name: str, source: str) -> None:
        """Add one ``templates/`` file to the chart."""
        self.templates.append(ChartTemplate(name=name, source=source))

    def add_subchart(self, chart: "Chart", condition: str = "", alias: str = "") -> None:
        """Package ``chart`` as a dependency (with optional condition/alias)."""
        dependency = ChartDependency(
            name=chart.name, version=chart.version, condition=condition, alias=alias
        )
        self.dependencies.append(dependency)
        self.subcharts[dependency.effective_name] = chart

    def template_named(self, name: str) -> ChartTemplate | None:
        """Look up one template file by its name (``None`` when absent)."""
        for template in self.templates:
            if template.name == name:
                return template
        return None

    # Identity -----------------------------------------------------------------
    def fingerprint(self) -> str:
        """A content fingerprint over everything that affects rendering.

        Covers metadata, default values, template names and sources,
        dependency declarations and (recursively) packaged subcharts.  Two
        charts with equal content produce the same fingerprint in any
        process, so render-cache keys survive the process-pool fan-out and
        catalogue rebuilds.
        """
        digest = hashlib.blake2b(digest_size=16)

        def feed(text: str) -> None:
            digest.update(text.encode())
            digest.update(b"\x00")

        meta = self.metadata
        for part in (meta.name, meta.version, meta.app_version, meta.description,
                     meta.home, meta.organization):
            feed(part)
        values_parts: list[bytes] = []
        _feed_values(values_parts.append, self.values)
        digest.update(b"".join(values_parts))
        for template in self.templates:
            feed(template.name)
            feed(template.source)
        for dependency in self.dependencies:
            for part in (dependency.name, dependency.version, dependency.repository,
                         dependency.condition, dependency.alias):
                feed(part)
        for name in sorted(self.subcharts):
            feed(name)
            feed(self.subcharts[name].fingerprint())
        return digest.hexdigest()

    # Values handling ----------------------------------------------------------
    def effective_values(self, overrides: Mapping[str, Any] | None = None) -> dict[str, Any]:
        """The chart's default values with user overrides merged on top."""
        return deep_merge(self.values, overrides or {})

    def validate(self) -> None:
        """Check structural invariants: a name, unique templates, packaged deps."""
        if not self.metadata.name:
            raise ChartError("chart name is required")
        seen: set[str] = set()
        for template in self.templates:
            if template.name in seen:
                raise ChartError(f"duplicate template file name: {template.name!r}")
            seen.add(template.name)
        for dependency in self.dependencies:
            if dependency.effective_name not in self.subcharts:
                raise ChartError(
                    f"dependency {dependency.effective_name!r} of chart {self.name!r} "
                    "has no packaged subchart"
                )

    @classmethod
    def from_files(
        cls,
        name: str,
        values_yaml: str = "",
        templates: Mapping[str, str] | None = None,
        version: str = "0.1.0",
        description: str = "",
        organization: str = "",
        values: Mapping[str, Any] | None = None,
    ) -> "Chart":
        """Build a chart from raw file contents (the way charts ship on disk).

        ``values`` accepts an already-parsed values tree directly -- the
        synthetic catalogue builders construct values as dicts, and handing
        them over dict-natively skips a pointless dump/re-parse round trip
        per chart.  The dict is adopted by reference (build-and-hand-over, no
        defensive copy); it is mutually exclusive with ``values_yaml``.
        """
        if values is not None and values_yaml:
            raise ChartError("pass either values_yaml or values, not both")
        chart = cls(
            metadata=ChartMetadata(
                name=name, version=version, description=description, organization=organization
            ),
            values=dict(values) if values is not None
            else load_values(values_yaml) if values_yaml else {},
        )
        for template_name, source in (templates or {}).items():
            chart.add_template(template_name, source)
        return chart

    @classmethod
    def from_directory(cls, path: Path | str) -> "Chart":
        """Load a chart from an on-disk directory (watch mode's entry point).

        Reads ``Chart.yaml`` (name, version, appVersion, description --
        the directory name is the fallback name), ``values.yaml`` and
        every file under ``templates/`` (sorted, so the content
        fingerprint is stable across filesystems).  Dependencies are not
        resolved from disk: watch mode treats each directory as a
        standalone chart.
        """
        root = Path(path)
        meta: dict[str, Any] = {}
        chart_yaml = root / "Chart.yaml"
        if chart_yaml.is_file():
            loaded = load_values(chart_yaml.read_text(encoding="utf-8"))
            if isinstance(loaded, dict):
                meta = loaded
        values_file = root / "values.yaml"
        chart = cls(
            metadata=ChartMetadata(
                name=str(meta.get("name") or root.name),
                version=str(meta.get("version") or "0.1.0"),
                app_version=str(meta.get("appVersion") or ""),
                description=str(meta.get("description") or ""),
            ),
            values=load_values(values_file.read_text(encoding="utf-8"))
            if values_file.is_file()
            else {},
        )
        templates_dir = root / "templates"
        if templates_dir.is_dir():
            for file in sorted(templates_dir.iterdir()):
                if file.is_file():
                    chart.add_template(file.name, file.read_text(encoding="utf-8"))
        return chart


class ChartRepository:
    """An in-memory chart repository, the stand-in for ArtifactHub."""

    def __init__(self) -> None:
        self._charts: dict[tuple[str, str], Chart] = {}

    def publish(self, chart: Chart, organization: str = "") -> None:
        """Publish ``chart`` under ``organization`` (stamped onto its metadata)."""
        if organization:
            chart.metadata.organization = organization
        self._charts[(chart.metadata.organization, chart.name)] = chart

    def get(self, name: str, organization: str = "") -> Chart:
        """Fetch a published chart; raises :class:`ChartError` when missing."""
        chart = self._charts.get((organization, name))
        if chart is None:
            raise ChartError(f"chart {organization}/{name} is not published")
        return chart

    def charts(self, organization: str | None = None) -> list[Chart]:
        """All published charts, optionally filtered to one organization."""
        return [
            chart
            for (org, _), chart in sorted(self._charts.items())
            if organization is None or org == organization
        ]

    def organizations(self) -> list[str]:
        """The organizations that have published at least one chart."""
        return sorted({org for org, _ in self._charts})

    def __len__(self) -> int:
        return len(self._charts)

    def __iter__(self) -> Iterable[Chart]:
        return iter(self.charts())
