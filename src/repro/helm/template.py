"""A Go-template subset engine sufficient to render Helm charts.

Helm templates are Go ``text/template`` documents extended with the Sprig
function library.  This module implements the subset that real-world charts
rely on for the networking-relevant parts the paper studies:

* actions ``{{ ... }}`` with whitespace trimming (``{{-``, ``-}}``);
* dotted paths rooted at the current context (``.Values.service.port``),
  the root context (``$.Values...``) and template variables (``$name``);
* pipelines (``.Values.tag | default "latest" | quote``);
* control structures ``if``/``else if``/``else``, ``range``, ``with``,
  ``define``/``include``/``template``;
* the most common Sprig/Go functions (``default``, ``quote``, ``toYaml``,
  ``nindent``, ``printf``, comparison and boolean helpers, ...).

Templates are parsed into a small AST and then *compiled*: every node and
every pipeline expression becomes a precomputed closure (dotted paths are
pre-split, literals pre-decoded, functions resolved against a shared dispatch
table), so rendering pays no per-render tokenization, parsing or token
re-interpretation.  Compiled templates are cached module-wide keyed on their
content, which makes repeated renders of the same chart amortized-free:
only the first render of a given template source parses anything at all
(``template_parse_count`` exposes the parse counter for guard tests).

Compiled closures emit **fragments** rather than plain strings: literal text
stays ``str``, a ``toYaml`` pipeline (optionally piped through ``nindent`` /
``indent``) becomes a :class:`StructuredFragment` carrying the *native*
Python value, and ``---`` separator lines found in literal text become
:class:`DocumentSplit` markers at compile time.  The classic text path joins
the fragments back into the exact byte stream the pre-fragment engine
produced (``CompiledTemplate.render``), while the structured render path
(``repro.helm.structured``) splices the native values straight into parsed
documents without ever dumping them to YAML text.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from collections.abc import Mapping
from typing import Any, Callable, Sequence

import yaml

from .. import faults
from ..k8s.yamlio import yaml_dump, yaml_load
from .errors import TemplateError

# --------------------------------------------------------------------------
# Lexing
# --------------------------------------------------------------------------

_ACTION_RE = re.compile(r"\{\{(-?)\s*(.*?)\s*(-?)\}\}", re.DOTALL)


@dataclass
class _RawAction:
    """A single ``{{ ... }}`` action with trim markers and source position."""

    content: str
    trim_left: bool
    trim_right: bool
    line: int


def _split_source(source: str) -> list[str | _RawAction]:
    """Split template source into literal text and raw actions."""
    parts: list[str | _RawAction] = []
    position = 0
    for match in _ACTION_RE.finditer(source):
        if match.start() > position:
            parts.append(source[position : match.start()])
        line = source.count("\n", 0, match.start()) + 1
        parts.append(
            _RawAction(
                content=match.group(2).strip(),
                trim_left=match.group(1) == "-",
                trim_right=match.group(3) == "-",
                line=line,
            )
        )
        position = match.end()
    if position < len(source):
        parts.append(source[position:])
    return parts


def _apply_trimming(parts: list[str | _RawAction]) -> list[str | _RawAction]:
    """Apply ``{{-`` / ``-}}`` whitespace trimming to adjacent text chunks."""
    trimmed: list[str | _RawAction] = list(parts)
    for index, part in enumerate(trimmed):
        if not isinstance(part, _RawAction):
            continue
        if part.trim_left and index > 0 and isinstance(trimmed[index - 1], str):
            trimmed[index - 1] = trimmed[index - 1].rstrip(" \t\n\r")  # type: ignore[union-attr]
        if part.trim_right and index + 1 < len(trimmed) and isinstance(trimmed[index + 1], str):
            trimmed[index + 1] = trimmed[index + 1].lstrip(" \t\n\r")  # type: ignore[union-attr]
    return trimmed


# --------------------------------------------------------------------------
# Expression tokenizer
# --------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    \s*(
        "(?:[^"\\]|\\.)*"          # double-quoted string
      | `[^`]*`                    # backtick string
      | -?\d+\.\d+                 # float
      | -?\d+                      # int
      | \$[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z0-9_]+)*   # variable (optionally with path)
      | \$\.[A-Za-z0-9_][A-Za-z0-9_.]*                 # root-relative path ($.Values.x)
      | \$                         # bare root variable
      | \.[A-Za-z_][A-Za-z0-9_.]*  # dotted path
      | \.                         # bare dot
      | [A-Za-z_][A-Za-z0-9_]*     # identifier / function name
      | :=                         # declaration
      | \|                         # pipe
      | [()]                       # parentheses
      | ,                          # comma (range var list)
    )""",
    re.VERBOSE,
)


def tokenize_expression(expression: str) -> list[str]:
    """Split an action expression into tokens."""
    tokens: list[str] = []
    position = 0
    while position < len(expression):
        match = _TOKEN_RE.match(expression, position)
        if not match:
            remainder = expression[position:].strip()
            if not remainder:
                break
            raise TemplateError(f"cannot tokenize expression near {remainder!r}")
        tokens.append(match.group(1))
        position = match.end()
    return tokens


# --------------------------------------------------------------------------
# AST nodes
# --------------------------------------------------------------------------


@dataclass
class TextNode:
    """Literal template text between actions."""

    text: str


@dataclass
class ActionNode:
    """A ``{{ pipeline }}`` output action."""

    tokens: list[str]
    line: int = 0


@dataclass
class IfNode:
    """An ``if``/``else if``/``else`` chain."""

    #: ``(condition_tokens, body)`` pairs; a ``None`` condition is the else arm.
    branches: list[tuple[list[str] | None, list[Any]]] = field(default_factory=list)


@dataclass
class RangeNode:
    """A ``range`` loop with optional key/value variables."""

    tokens: list[str]
    key_var: str = ""
    value_var: str = ""
    body: list[Any] = field(default_factory=list)
    else_body: list[Any] = field(default_factory=list)


@dataclass
class WithNode:
    """A ``with`` block re-scoping the dot."""

    tokens: list[str]
    body: list[Any] = field(default_factory=list)
    else_body: list[Any] = field(default_factory=list)


@dataclass
class DefineNode:
    """A named ``define`` block (an ``include`` target)."""

    name: str
    body: list[Any] = field(default_factory=list)


@dataclass
class VariableNode:
    """A ``$name := pipeline`` assignment."""

    name: str
    tokens: list[str] = field(default_factory=list)


Node = Any


# --------------------------------------------------------------------------
# Parser
# --------------------------------------------------------------------------


class _Parser:
    """Builds an AST from the interleaved text/action stream."""

    def __init__(self, parts: list[str | _RawAction], template_name: str) -> None:
        self._parts = parts
        self._template_name = template_name
        self._index = 0

    def parse(self) -> list[Node]:
        nodes, terminator = self._parse_block(expect_end=False)
        if terminator is not None:
            raise TemplateError(
                f"unexpected {terminator!r} outside of a block", self._template_name
            )
        return nodes

    # Internal helpers -------------------------------------------------------
    def _next_part(self) -> str | _RawAction | None:
        if self._index >= len(self._parts):
            return None
        part = self._parts[self._index]
        self._index += 1
        return part

    def _parse_block(self, expect_end: bool) -> tuple[list[Node], str | None]:
        """Parse nodes until ``end``/``else`` or end of input.

        Returns the parsed nodes and the keyword that terminated the block
        (``"end"``, ``"else"``, ``"else if"`` with its tokens attached, or
        ``None`` at end of input).
        """
        nodes: list[Node] = []
        while True:
            part = self._next_part()
            if part is None:
                if expect_end:
                    raise TemplateError("missing {{ end }}", self._template_name)
                return nodes, None
            if isinstance(part, str):
                nodes.append(TextNode(part))
                continue
            content = part.content
            if not content or content.startswith("/*"):
                continue
            keyword, _, rest = content.partition(" ")
            if keyword == "end":
                return nodes, "end"
            if keyword == "else":
                self._pending_else = rest.strip()
                return nodes, "else"
            if keyword == "if":
                nodes.append(self._parse_if(rest))
            elif keyword == "range":
                nodes.append(self._parse_range(rest))
            elif keyword == "with":
                nodes.append(self._parse_with(rest))
            elif keyword == "define":
                nodes.append(self._parse_define(rest))
            elif keyword == "template":
                # {{ template "name" ctx }} is equivalent to include without pipe.
                nodes.append(ActionNode(["include"] + tokenize_expression(rest), part.line))
            elif keyword.startswith("$") and rest.startswith(":="):
                nodes.append(
                    VariableNode(name=keyword, tokens=tokenize_expression(rest[2:].strip()))
                )
            else:
                nodes.append(ActionNode(tokenize_expression(content), part.line))

    def _parse_if(self, condition: str) -> IfNode:
        node = IfNode()
        tokens = tokenize_expression(condition)
        while True:
            body, terminator = self._parse_block(expect_end=True)
            node.branches.append((tokens, body))
            if terminator == "end":
                return node
            # terminator == "else": either a plain else or an "else if ..."
            pending = getattr(self, "_pending_else", "")
            if pending.startswith("if "):
                tokens = tokenize_expression(pending[3:])
                continue
            else_body, terminator = self._parse_block(expect_end=True)
            node.branches.append((None, else_body))
            if terminator != "end":
                raise TemplateError("malformed if/else block", self._template_name)
            return node

    def _parse_range(self, expression: str) -> RangeNode:
        key_var = value_var = ""
        if ":=" in expression:
            declaration, _, expression = expression.partition(":=")
            variables = [var.strip() for var in declaration.split(",") if var.strip()]
            if len(variables) == 1:
                value_var = variables[0]
            elif len(variables) == 2:
                key_var, value_var = variables
            else:
                raise TemplateError("range accepts at most two variables", self._template_name)
        node = RangeNode(
            tokens=tokenize_expression(expression.strip()),
            key_var=key_var,
            value_var=value_var,
        )
        body, terminator = self._parse_block(expect_end=True)
        node.body = body
        if terminator == "else":
            node.else_body, terminator = self._parse_block(expect_end=True)
        if terminator != "end":
            raise TemplateError("malformed range block", self._template_name)
        return node

    def _parse_with(self, expression: str) -> WithNode:
        node = WithNode(tokens=tokenize_expression(expression.strip()))
        body, terminator = self._parse_block(expect_end=True)
        node.body = body
        if terminator == "else":
            node.else_body, terminator = self._parse_block(expect_end=True)
        if terminator != "end":
            raise TemplateError("malformed with block", self._template_name)
        return node

    def _parse_define(self, expression: str) -> DefineNode:
        tokens = tokenize_expression(expression.strip())
        if not tokens or not tokens[0].startswith('"'):
            raise TemplateError("define requires a quoted template name", self._template_name)
        name = tokens[0][1:-1]
        body, terminator = self._parse_block(expect_end=True)
        if terminator != "end":
            raise TemplateError("malformed define block", self._template_name)
        return DefineNode(name=name, body=body)


def parse_template(source: str, template_name: str = "") -> list[Node]:
    """Parse template source into an AST."""
    parts = _apply_trimming(_split_source(source))
    return _Parser(parts, template_name).parse()


# --------------------------------------------------------------------------
# Rendering context
# --------------------------------------------------------------------------


class RenderContext:
    """Evaluation state: the dot, the root context, and template variables."""

    def __init__(self, root: Any, dot: Any = None, variables: dict[str, Any] | None = None) -> None:
        self.root = root
        self.dot = root if dot is None else dot
        self.variables = dict(variables or {})

    def child(self, dot: Any) -> "RenderContext":
        """A nested scope with a new dot (``with``/``range`` bodies)."""
        return RenderContext(self.root, dot, self.variables)


def _resolve_path(base: Any, path: Sequence[str]) -> Any:
    current = base
    for part in path:
        if isinstance(current, Mapping):
            current = current.get(part)
        else:
            current = getattr(current, part, None)
        if current is None:
            return None
    return current


def _is_truthy(value: Any) -> bool:
    """Go template truthiness: zero values, empty collections and None are false."""
    if value is None or value is False:
        return False
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return value != 0
    if isinstance(value, (str, list, tuple, dict, set)):
        return len(value) > 0
    return True


def _to_yaml(value: Any) -> str:
    text = yaml_dump(value, default_flow_style=False, sort_keys=False)
    return text.rstrip("\n")


def _indent(spaces: int, text: str) -> str:
    prefix = " " * int(spaces)
    return "\n".join(prefix + line if line else line for line in str(text).split("\n"))


def _format_value(value: Any) -> str:
    """Convert an evaluated value to template output text."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


# --------------------------------------------------------------------------
# Fragments: what compiled closures emit
# --------------------------------------------------------------------------


class StructuredFragment:
    """A native value emitted by a compiled ``toYaml`` pipeline.

    The text path stringifies it exactly the way the pre-fragment engine
    did (``"\\n"`` for ``nindent``, then the indented YAML dump); the
    structured path splices :attr:`value` into the parsed document without
    ever dumping it.
    """

    __slots__ = ("value", "indent", "leading_newline")

    def __init__(self, value: Any, indent: int = 0, leading_newline: bool = False) -> None:
        self.value = value
        self.indent = indent
        self.leading_newline = leading_newline

    def text(self) -> str:
        """The exact text the ``toYaml``(+``nindent``/``indent``) stage emits."""
        try:
            dumped = _to_yaml(self.value)
        except Exception as exc:  # noqa: BLE001 - mirror run_function's wrapping
            raise TemplateError(f"error calling toYaml: {exc}") from exc
        rendered = _indent(self.indent, dumped) if self.indent else dumped
        return "\n" + rendered if self.leading_newline else rendered


class ScalarFragment:
    """The rendered text of one interpolated expression (``{{ .Values.x }}``).

    The text path concatenates :attr:`rendered` verbatim -- byte-identical
    to the plain-string emission this class replaced.  The structured
    assembler may turn a *cleanly placed* scalar (a whole value position,
    ``key: {{ .x }}`` / ``- {{ .x }}``) into a placeholder so the skeleton
    parse memo keys on the template's shape instead of the interpolated
    value: override-variant sweeps (the Figure 4b runs) re-render the same
    chart with different names and would otherwise miss the memo on every
    variant.  Anything unclear about the placement falls back to emitting
    the text inline, exactly as before.
    """

    __slots__ = ("rendered",)

    def __init__(self, rendered: str) -> None:
        self.rendered = rendered

    def text(self) -> str:
        """The rendered expression text, for the text path."""
        return self.rendered


class DocumentSplit:
    """A ``---`` separator line detected in literal template text.

    Document boundaries become list splits for the structured path; the
    text path re-emits :attr:`literal` unchanged.  The marker is only a
    *candidate* boundary: the assembler honours it iff it lands at the
    start of an output line (see ``repro.helm.structured``).
    """

    __slots__ = ("literal",)

    def __init__(self, literal: str) -> None:
        self.literal = literal

    def text(self) -> str:
        """The literal separator bytes, for the text path."""
        return self.literal


#: What compiled renderers append to their output sink.
Fragment = Any  # str | ScalarFragment | StructuredFragment | DocumentSplit


def fragments_text(fragments: Sequence[Fragment]) -> str:
    """Join fragments into the byte-identical classic text rendering."""
    return "".join(
        fragment if type(fragment) is str else fragment.text() for fragment in fragments
    )


#: Separator lines eligible for compile-time document splitting.  The match
#: must include the trailing newline: a ``---`` dangling at the very end of a
#: text node could be continued by the next action's output, so it stays
#: literal text (the scoped-parse fallback still handles it correctly).
_DOC_SPLIT_RE = re.compile(r"(?m)^---[ \t]*\n")


# --------------------------------------------------------------------------
# Compiler: AST -> closures
# --------------------------------------------------------------------------

#: A compiled node: appends its output fragments to the sink list given the
#: engine (for ``include``) and the evaluation state.
Renderer = Callable[["TemplateEngine", RenderContext, list], None]
#: A compiled expression term or pipeline: produces a value.
ValueFn = Callable[["TemplateEngine", RenderContext], Any]

_INT_RE = re.compile(r"-?\d+")
_FLOAT_RE = re.compile(r"-?\d+\.\d+")


@dataclass
class CompiledTemplate:
    """One template source compiled to closures, plus its ``define`` blocks.

    Only the compiled form is kept -- the parse AST is discarded after
    compilation so the process-wide compile cache stores closures, not trees.
    """

    name: str
    renderers: list[Renderer]
    defines: dict[str, list[Renderer]]

    def render_fragments(self, engine: "TemplateEngine", ctx: RenderContext) -> list[Fragment]:
        """Render into the raw fragment stream (the structured path input)."""
        out: list[Fragment] = []
        for fn in self.renderers:
            fn(engine, ctx, out)
        return out

    def render(self, engine: "TemplateEngine", ctx: RenderContext) -> str:
        """Render to text, byte-identical to the pre-fragment engine."""
        return fragments_text(self.render_fragments(engine, ctx))


def _constant(value: Any) -> ValueFn:
    return lambda engine, ctx: value


def _compile_term(token: str) -> ValueFn:
    """Compile a single expression token into a value closure.

    The checks mirror the term grammar exactly; all string decoding and path
    splitting happens here, once, instead of on every evaluation.
    """
    if token.startswith('"'):
        return _constant(
            token[1:-1].replace('\\"', '"').replace("\\n", "\n").replace("\\\\", "\\")
        )
    if token.startswith("`"):
        return _constant(token[1:-1])
    if token == "true":
        return _constant(True)
    if token == "false":
        return _constant(False)
    if token == "nil":
        return _constant(None)
    if _INT_RE.fullmatch(token):
        return _constant(int(token))
    if _FLOAT_RE.fullmatch(token):
        return _constant(float(token))
    if token == ".":
        return lambda engine, ctx: ctx.dot
    if token == "$":
        return lambda engine, ctx: ctx.root
    if token.startswith("$."):
        root_parts = tuple(part for part in token[2:].split(".") if part)
        return lambda engine, ctx: _resolve_path(ctx.root, root_parts)
    if token.startswith("$"):
        name, _, rest = token.partition(".")
        var_parts = tuple(rest.split(".")) if rest else ()

        def lookup_variable(engine: "TemplateEngine", ctx: RenderContext) -> Any:
            if name not in ctx.variables:
                raise TemplateError(f"undefined template variable {name!r}")
            base = ctx.variables[name]
            return _resolve_path(base, var_parts) if var_parts else base

        return lookup_variable
    if token.startswith("."):
        parts = tuple(part for part in token.split(".") if part)
        if len(parts) == 1:
            key = parts[0]

            def lookup_attr(engine: "TemplateEngine", ctx: RenderContext) -> Any:
                dot = ctx.dot
                if isinstance(dot, Mapping):
                    return dot.get(key)
                return getattr(dot, key, None)

            return lookup_attr
        return lambda engine, ctx: _resolve_path(ctx.dot, parts)
    # Bare identifier used as a value (rare); treat as function call with no args.
    return _compile_stage([token], piped=False)


def _compile_terms(tokens: Sequence[str]) -> list[ValueFn]:
    """Compile each term of a command, handling parenthesised pipelines."""
    fns: list[ValueFn] = []
    index = 0
    while index < len(tokens):
        token = tokens[index]
        if token == "(":
            depth = 1
            closing = index + 1
            while closing < len(tokens) and depth:
                if tokens[closing] == "(":
                    depth += 1
                elif tokens[closing] == ")":
                    depth -= 1
                closing += 1
            if depth:
                raise TemplateError("unbalanced parentheses in expression")
            fns.append(_compile_pipeline(tokens[index + 1 : closing - 1]))
            index = closing
            continue
        fns.append(_compile_term(token))
        index += 1
    return fns


def _compile_stage(tokens: Sequence[str], piped: bool) -> Callable[..., Any]:
    """Compile one pipeline stage.

    Non-first stages receive the previous stage's value as a third argument
    and append it as the final function argument, mirroring Go template
    semantics.  The returned closure takes ``(engine, ctx)`` for the first
    stage and ``(engine, ctx, piped_value)`` otherwise.
    """
    if not tokens:
        if piped:
            return lambda engine, ctx, value: value
        return lambda engine, ctx: None
    head = tokens[0]
    head_is_function = (
        not head.startswith(('"', "`", ".", "$", "("))
        and not head.lstrip("-").replace(".", "").isdigit()
        and head not in ("true", "false", "nil")
    )
    if head_is_function:
        arg_fns = tuple(_compile_terms(tokens[1:]))
        if head == "include":

            def run_include(engine: "TemplateEngine", ctx: RenderContext, *piped_value: Any) -> Any:
                args = [fn(engine, ctx) for fn in arg_fns]
                args.extend(piped_value)
                if not args:
                    raise TemplateError("include requires a template name")
                dot = args[1] if len(args) > 1 else ctx.dot
                return engine.include(str(args[0]), dot, ctx)

            return run_include
        function = _FUNCTIONS.get(head)
        if function is None:
            # Unknown functions stay lazy: the error only fires if the stage
            # is actually evaluated (it may sit in a never-taken branch).
            def unknown(engine: "TemplateEngine", ctx: RenderContext, *piped_value: Any) -> Any:
                raise TemplateError(f"unknown template function {head!r}")

            return unknown

        def run_function(engine: "TemplateEngine", ctx: RenderContext, *piped_value: Any) -> Any:
            args = [fn(engine, ctx) for fn in arg_fns]
            args.extend(piped_value)
            try:
                return function(*args)
            except TemplateError:
                raise
            except Exception as exc:  # noqa: BLE001 - surface as template error
                raise TemplateError(f"error calling {head}: {exc}") from exc

        return run_function
    term_fns = _compile_terms(tokens)
    if len(term_fns) == 1:
        fn = term_fns[0]
        if piped:
            return lambda engine, ctx, value, fn=fn: fn(engine, ctx)
        return fn
    expression = " ".join(tokens)

    def unsupported(engine: "TemplateEngine", ctx: RenderContext, *piped_value: Any) -> Any:
        raise TemplateError(f"cannot evaluate expression: {expression!r}")

    return unsupported


def _pipe_segments(tokens: Sequence[str]) -> list[list[str]]:
    """Split pipeline tokens into stages at top-level ``|`` separators."""
    segments: list[list[str]] = [[]]
    depth = 0
    for token in tokens:
        if token == "(":
            depth += 1
        elif token == ")":
            depth -= 1
        if token == "|" and depth == 0:
            segments.append([])
        else:
            segments[-1].append(token)
    return segments


def _native_roundtrip(value: Any) -> Any:
    """What ``fromYaml (toYaml value)`` produces, without the text round trip.

    Plain trees (mappings, sequences, scalars) survive a YAML dump/load as
    fresh copies with tuples becoming lists; anything subtler -- strings the
    YAML resolver would re-type (``"2024-01-01"``, ``"yes"``), exotic
    objects -- falls back to the real dump+load so the peephole is
    observation-equivalent to the two text stages it replaces.
    """
    try:
        return _native_yaml_copy(value)
    except _NotPlainYaml:
        pass
    try:
        return yaml_load(_to_yaml(value))
    except TemplateError:
        raise
    except Exception as exc:  # noqa: BLE001 - mirror run_function's wrapping
        raise TemplateError(f"error calling toYaml: {exc}") from exc


class _NotPlainYaml(Exception):
    """Raised when a value cannot be round-tripped without real YAML."""


_YAML_RESOLVER = yaml.resolver.Resolver()


def _native_yaml_copy(value: Any) -> Any:
    if isinstance(value, str):
        if _YAML_RESOLVER.resolve(yaml.nodes.ScalarNode, value, (True, False)) != (
            "tag:yaml.org,2002:str"
        ):
            raise _NotPlainYaml(value)
        return value
    if isinstance(value, (bool, int, float)) or value is None:
        return value
    if isinstance(value, Mapping):
        return {_native_yaml_copy(key): _native_yaml_copy(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_native_yaml_copy(item) for item in value]
    raise _NotPlainYaml(value)


def _compile_pipeline(tokens: Sequence[str]) -> ValueFn:
    """Compile a full pipeline: stages separated by top-level ``|``.

    A ``toYaml | fromYaml`` stage pair collapses into a native round trip:
    the value never touches YAML text unless its type demands it.
    """
    segments = _pipe_segments(tokens)
    stages: list[Callable[..., Any]] = []
    index = 0
    roundtrip = lambda engine, ctx, value: _native_roundtrip(value)  # noqa: E731
    while index < len(segments):
        segment = segments[index]
        piped = bool(stages)
        pair = (
            index + 1 < len(segments)
            and segment and segment[0] == "toYaml"
            and segments[index + 1] == ["fromYaml"]
        )
        if pair and len(segment) > 1 and not piped:
            # ``fromYaml (toYaml X)`` head: evaluate X, round-trip natively.
            stages.append(_compile_stage(segment[1:], piped=False))
            stages.append(roundtrip)
            index += 2
        elif pair and len(segment) == 1 and piped:
            # ``... | toYaml | fromYaml``: collapse the pair into one stage.
            stages.append(roundtrip)
            index += 2
        else:
            stages.append(_compile_stage(segment, piped=piped))
            index += 1
    first = stages[0]
    if len(stages) == 1:
        return first
    rest = tuple(stages[1:])

    def run(engine: "TemplateEngine", ctx: RenderContext) -> Any:
        value = first(engine, ctx)
        for stage in rest:
            value = stage(engine, ctx, value)
        return value

    return run


def _render_nothing(engine: "TemplateEngine", ctx: RenderContext, out: list) -> None:
    return None


def _compile_text_node(text: str) -> Renderer:
    """Compile literal text, carving out ``---`` document-boundary lines.

    Splitting happens once, at compile time; the render closure just extends
    the sink with the precomputed pieces.  Matches at offset 0 of the node
    are still only *candidates* (the preceding action's output may not end
    with a newline) -- the structured assembler re-checks line position at
    render time, and the text path re-emits the literal either way.
    """
    pieces: list[str | DocumentSplit] = []
    position = 0
    for match in _DOC_SPLIT_RE.finditer(text):
        if match.start() > position:
            pieces.append(text[position : match.start()])
        pieces.append(DocumentSplit(match.group(0)))
        position = match.end()
    if position < len(text):
        pieces.append(text[position:])
    if len(pieces) == 1 and isinstance(pieces[0], str):
        piece = pieces[0]

        def emit_text(engine: "TemplateEngine", ctx: RenderContext, out: list) -> None:
            out.append(piece)

        return emit_text
    frozen = tuple(pieces)

    def emit_pieces(engine: "TemplateEngine", ctx: RenderContext, out: list) -> None:
        out.extend(frozen)

    return emit_pieces


def _compile_structured_action(tokens: Sequence[str]) -> Renderer | None:
    """Compile a statement-level ``toYaml`` pipeline into a structured emit.

    Recognized shapes (the ones Helm charts actually use)::

        {{ toYaml .Values.x }}
        {{ .Values.x | toYaml }}
        {{ toYaml .Values.x | nindent 4 }}
        {{ .Values.x | toYaml | indent 6 }}

    Anything else returns ``None`` and compiles as ordinary text output.
    The emitted :class:`StructuredFragment` stringifies to the exact bytes
    of the text path, so one compiled form serves both render modes.
    """
    segments = _pipe_segments(tokens)
    indent = 0
    leading_newline = False
    value_segments = segments
    last = segments[-1]
    if (
        len(segments) >= 2
        and len(last) == 2
        and last[0] in ("nindent", "indent")
        and _INT_RE.fullmatch(last[1])
    ):
        indent = int(last[1])
        leading_newline = last[0] == "nindent"
        value_segments = segments[:-1]
    tail = value_segments[-1]
    if tail == ["toYaml"] and len(value_segments) >= 2:
        value_fn = _compile_pipeline(
            [token for segment in value_segments[:-1] for token in segment + ["|"]][:-1]
        )
    elif len(value_segments) == 1 and len(tail) > 1 and tail[0] == "toYaml":
        term_fns = _compile_terms(tail[1:])
        if len(term_fns) != 1:
            return None
        value_fn = term_fns[0]
    else:
        return None

    def emit_structured(engine: "TemplateEngine", ctx: RenderContext, out: list) -> None:
        out.append(StructuredFragment(value_fn(engine, ctx), indent, leading_newline))

    return emit_structured


def _compile_nodes(
    nodes: Sequence[Node], defines: dict[str, list[Renderer]] | None
) -> list[Renderer]:
    """Compile AST nodes into fragment-emitting render closures.

    ``defines`` collects compiled ``define`` blocks; only top-level defines
    are registered (nested ones render to nothing, matching the interpreter
    this compiler replaced).
    """
    renderers: list[Renderer] = []
    for node in nodes:
        if isinstance(node, TextNode):
            renderers.append(_compile_text_node(node.text))
        elif isinstance(node, DefineNode):
            if defines is not None:
                defines[node.name] = _compile_nodes(node.body, None)
            renderers.append(_render_nothing)
        elif isinstance(node, VariableNode):
            pipeline = _compile_pipeline(node.tokens)
            name = node.name

            def assign(
                engine: "TemplateEngine",
                ctx: RenderContext,
                out: list,
                pipeline: ValueFn = pipeline,
                name: str = name,
            ) -> None:
                ctx.variables[name] = pipeline(engine, ctx)

            renderers.append(assign)
        elif isinstance(node, ActionNode):
            structured = _compile_structured_action(node.tokens)
            if structured is not None:
                renderers.append(structured)
                continue
            pipeline = _compile_pipeline(node.tokens)

            def emit_action(
                engine: "TemplateEngine",
                ctx: RenderContext,
                out: list,
                pipeline: ValueFn = pipeline,
            ) -> None:
                text = _format_value(pipeline(engine, ctx))
                if text:
                    out.append(ScalarFragment(text))

            renderers.append(emit_action)
        elif isinstance(node, IfNode):
            branches = tuple(
                (
                    None if condition is None else _compile_pipeline(condition),
                    tuple(_compile_nodes(body, None)),
                )
                for condition, body in node.branches
            )

            def render_if(
                engine: "TemplateEngine", ctx: RenderContext, out: list, branches=branches
            ) -> None:
                for condition, body in branches:
                    if condition is None or _is_truthy(condition(engine, ctx)):
                        for fn in body:
                            fn(engine, ctx, out)
                        return

            renderers.append(render_if)
        elif isinstance(node, WithNode):
            pipeline = _compile_pipeline(node.tokens)
            body = tuple(_compile_nodes(node.body, None))
            else_body = tuple(_compile_nodes(node.else_body, None))

            def render_with(
                engine: "TemplateEngine",
                ctx: RenderContext,
                out: list,
                pipeline: ValueFn = pipeline,
                body=body,
                else_body=else_body,
            ) -> None:
                value = pipeline(engine, ctx)
                if _is_truthy(value):
                    child = ctx.child(value)
                    for fn in body:
                        fn(engine, child, out)
                else:
                    for fn in else_body:
                        fn(engine, ctx, out)

            renderers.append(render_with)
        elif isinstance(node, RangeNode):
            renderers.append(_compile_range(node))
        else:
            raise TemplateError(f"unknown template node: {node!r}")
    return renderers


def _compile_range(node: RangeNode) -> Renderer:
    pipeline = _compile_pipeline(node.tokens)
    body = tuple(_compile_nodes(node.body, None))
    else_body = tuple(_compile_nodes(node.else_body, None))
    key_var = node.key_var
    value_var = node.value_var

    def render_range(engine: "TemplateEngine", ctx: RenderContext, out: list) -> None:
        value = pipeline(engine, ctx)
        items: list[tuple[Any, Any]]
        if isinstance(value, Mapping):
            items = list(value.items())
        elif isinstance(value, (list, tuple)):
            items = list(enumerate(value))
        elif value is None:
            items = []
        else:
            raise TemplateError(f"cannot range over {type(value).__name__}")
        if not items:
            for fn in else_body:
                fn(engine, ctx, out)
            return
        for key, item in items:
            child = ctx.child(item)
            if key_var:
                child.variables[key_var] = key
            if value_var:
                child.variables[value_var] = item
            for fn in body:
                fn(engine, child, out)

    return render_range


# --------------------------------------------------------------------------
# Compile cache
# --------------------------------------------------------------------------

#: Compiled templates keyed by (template name, full source) -- content-keyed,
#: so identical template files shared across charts compile exactly once.
_COMPILE_CACHE: dict[tuple[str, str], CompiledTemplate] = {}
_PARSE_COUNT = 0


def compile_source(source: str, template_name: str = "") -> CompiledTemplate:
    """Compile (or fetch from the cache) one template source."""
    key = (template_name, source)
    compiled = _COMPILE_CACHE.get(key)
    if compiled is None:
        global _PARSE_COUNT
        _PARSE_COUNT += 1
        # Fault site: the actual parse.  A compile-cache hit bypasses it,
        # exactly like it bypasses the parse cost.
        faults.fault_point(faults.TEMPLATE_PARSE)
        nodes = parse_template(source, template_name)
        defines: dict[str, list[Renderer]] = {}
        renderers = _compile_nodes(nodes, defines)
        compiled = CompiledTemplate(template_name, renderers, defines)
        _COMPILE_CACHE[key] = compiled
    return compiled


def template_parse_count() -> int:
    """How many template sources have been lexed/parsed/compiled so far.

    A warm render must not move this counter -- the render-cache guard tests
    assert exactly that.
    """
    return _PARSE_COUNT


def clear_template_cache() -> None:
    """Drop every compiled template (benchmarks measure cold compiles)."""
    _COMPILE_CACHE.clear()


# --------------------------------------------------------------------------
# Engine
# --------------------------------------------------------------------------


class TemplateEngine:
    """Renders compiled templates, holding named ``define`` blocks."""

    def __init__(self) -> None:
        self._defines: dict[str, list[Renderer]] = {}
        self._functions: dict[str, Callable[..., Any]] = _FUNCTIONS

    # Public API -----------------------------------------------------------
    def register_source(self, source: str, template_name: str = "") -> CompiledTemplate:
        """Compile a template, record its ``define`` blocks, return it."""
        compiled = compile_source(source, template_name)
        self._defines.update(compiled.defines)
        return compiled

    def render(self, source: str, context: Mapping[str, Any], template_name: str = "") -> str:
        """Render template ``source`` with ``context`` as the root dot."""
        compiled = self.register_source(source, template_name)
        return compiled.render(self, RenderContext(dict(context)))

    def render_fragments(
        self, source: str, context: Mapping[str, Any], template_name: str = ""
    ) -> list[Fragment]:
        """Render ``source`` into its fragment stream (the structured path)."""
        compiled = self.register_source(source, template_name)
        return compiled.render_fragments(self, RenderContext(dict(context)))

    def render_nodes(self, nodes: Sequence[Node], ctx: RenderContext) -> str:
        """Render already-parsed AST nodes (compiled on the fly, uncached)."""
        defines: dict[str, list[Renderer]] = {}
        renderers = _compile_nodes(nodes, defines)
        self._defines.update(defines)
        out: list[Fragment] = []
        for fn in renderers:
            fn(self, ctx, out)
        return fragments_text(out)

    # Defines ----------------------------------------------------------------
    def include(self, name: str, dot: Any, ctx: RenderContext) -> str:
        """Render a ``define`` block to text (``include`` is string-valued).

        Structure emitted inside the define (a ``toYaml`` there) is
        stringified here: an included template's value participates in
        string pipelines (``| nindent``), exactly as in Go templates.
        """
        body = self._defines.get(name)
        if body is None:
            raise TemplateError(f"included template {name!r} is not defined")
        child = RenderContext(ctx.root, dot, ctx.variables)
        out: list[Fragment] = []
        for fn in body:
            fn(self, child, out)
        return fragments_text(out)


def _build_functions() -> dict[str, Callable[..., Any]]:
    def default(fallback: Any, value: Any = None) -> Any:
        return value if _is_truthy(value) else fallback

    def required(message: str, value: Any = None) -> Any:
        if not _is_truthy(value):
            raise TemplateError(str(message))
        return value

    def printf(fmt: str, *args: Any) -> str:
        converted = re.sub(r"%[#+\- 0]*\d*\.?\d*[vdsqfgt]", _printf_to_python, str(fmt))
        return converted % tuple(args)

    def _printf_to_python(match: re.Match[str]) -> str:
        spec = match.group(0)
        kind = spec[-1]
        if kind in ("v", "s", "t"):
            return spec[:-1] + "s"
        if kind == "d":
            return spec[:-1] + "d"
        if kind == "q":
            return '"%s"'
        if kind in ("f", "g"):
            return spec[:-1] + kind
        return spec

    def ternary(if_true: Any, if_false: Any, condition: Any) -> Any:
        return if_true if _is_truthy(condition) else if_false

    functions: dict[str, Callable[..., Any]] = {
        "default": default,
        "required": required,
        "quote": lambda *values: " ".join(f'"{_format_value(v)}"' for v in values),
        "squote": lambda *values: " ".join(f"'{_format_value(v)}'" for v in values),
        "upper": lambda value: str(value).upper(),
        "lower": lambda value: str(value).lower(),
        "title": lambda value: str(value).title(),
        "trim": lambda value: str(value).strip(),
        "trunc": lambda length, value: str(value)[: int(length)]
        if int(length) >= 0
        else str(value)[int(length) :],
        "trimSuffix": lambda suffix, value: str(value).removesuffix(str(suffix)),
        "trimPrefix": lambda prefix, value: str(value).removeprefix(str(prefix)),
        "replace": lambda old, new, value: str(value).replace(str(old), str(new)),
        "contains": lambda needle, haystack: str(needle) in str(haystack),
        "hasPrefix": lambda prefix, value: str(value).startswith(str(prefix)),
        "hasSuffix": lambda suffix, value: str(value).endswith(str(suffix)),
        "repeat": lambda count, value: str(value) * int(count),
        "join": lambda separator, values: str(separator).join(
            _format_value(v) for v in (values or [])
        ),
        "splitList": lambda separator, value: str(value).split(str(separator)),
        "toString": _format_value,
        "toYaml": _to_yaml,
        "fromYaml": lambda value: yaml_load(str(value)),
        "toJson": lambda value: yaml_dump(value, default_flow_style=True).strip(),
        "indent": _indent,
        "nindent": lambda spaces, text: "\n" + _indent(spaces, text),
        "b64enc": lambda value: __import__("base64").b64encode(str(value).encode()).decode(),
        "b64dec": lambda value: __import__("base64").b64decode(str(value).encode()).decode(),
        "int": lambda value: int(float(value)) if value not in (None, "") else 0,
        "int64": lambda value: int(float(value)) if value not in (None, "") else 0,
        "float64": lambda value: float(value) if value not in (None, "") else 0.0,
        "add": lambda *values: sum(int(v) for v in values),
        "add1": lambda value: int(value) + 1,
        "sub": lambda a, b: int(a) - int(b),
        "mul": lambda *values: __import__("math").prod(int(v) for v in values),
        "div": lambda a, b: int(a) // int(b),
        "mod": lambda a, b: int(a) % int(b),
        "max": lambda *values: max(int(v) for v in values),
        "min": lambda *values: min(int(v) for v in values),
        "eq": lambda a, b: a == b,
        "ne": lambda a, b: a != b,
        "lt": lambda a, b: a < b,
        "le": lambda a, b: a <= b,
        "gt": lambda a, b: a > b,
        "ge": lambda a, b: a >= b,
        "not": lambda value: not _is_truthy(value),
        "and": lambda *values: next((v for v in values if not _is_truthy(v)), values[-1]),
        "or": lambda *values: next((v for v in values if _is_truthy(v)), values[-1]),
        "empty": lambda value: not _is_truthy(value),
        "coalesce": lambda *values: next((v for v in values if _is_truthy(v)), None),
        "ternary": ternary,
        "list": lambda *values: list(values),
        "dict": lambda *pairs: {
            str(pairs[i]): pairs[i + 1] for i in range(0, len(pairs) - 1, 2)
        },
        "get": lambda mapping, key: (mapping or {}).get(key),
        "hasKey": lambda mapping, key: key in (mapping or {}),
        "keys": lambda mapping: sorted((mapping or {}).keys()),
        "values": lambda mapping: list((mapping or {}).values()),
        "len": lambda value: len(value) if value is not None else 0,
        "first": lambda value: value[0] if value else None,
        "last": lambda value: value[-1] if value else None,
        "printf": printf,
        "print": lambda *values: "".join(_format_value(v) for v in values),
        "kindIs": lambda kind, value: _kind_of(value) == kind,
        "typeOf": lambda value: _kind_of(value),
        "lookup": lambda *args: {},
        "randAlphaNum": lambda length: "x" * int(length),
        "uuidv4": lambda: "00000000-0000-4000-8000-000000000000",
        "now": lambda: "1970-01-01T00:00:00Z",
        "semverCompare": lambda constraint, version: True,
    }
    return functions


#: The shared function dispatch table: built once, resolved at compile time.
_FUNCTIONS: dict[str, Callable[..., Any]] = _build_functions()


def _kind_of(value: Any) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float64"
    if isinstance(value, str):
        return "string"
    if isinstance(value, Mapping):
        return "map"
    if isinstance(value, (list, tuple)):
        return "slice"
    if value is None:
        return "invalid"
    return type(value).__name__
