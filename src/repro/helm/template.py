"""A Go-template subset engine sufficient to render Helm charts.

Helm templates are Go ``text/template`` documents extended with the Sprig
function library.  This module implements the subset that real-world charts
rely on for the networking-relevant parts the paper studies:

* actions ``{{ ... }}`` with whitespace trimming (``{{-``, ``-}}``);
* dotted paths rooted at the current context (``.Values.service.port``),
  the root context (``$.Values...``) and template variables (``$name``);
* pipelines (``.Values.tag | default "latest" | quote``);
* control structures ``if``/``else if``/``else``, ``range``, ``with``,
  ``define``/``include``/``template``;
* the most common Sprig/Go functions (``default``, ``quote``, ``toYaml``,
  ``nindent``, ``printf``, comparison and boolean helpers, ...).

The engine is deliberately explicit rather than clever: templates are parsed
into a small AST and evaluated recursively.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import yaml

from .errors import TemplateError

# --------------------------------------------------------------------------
# Lexing
# --------------------------------------------------------------------------

_ACTION_RE = re.compile(r"\{\{(-?)\s*(.*?)\s*(-?)\}\}", re.DOTALL)


@dataclass
class _RawAction:
    """A single ``{{ ... }}`` action with trim markers and source position."""

    content: str
    trim_left: bool
    trim_right: bool
    line: int


def _split_source(source: str) -> list[str | _RawAction]:
    """Split template source into literal text and raw actions."""
    parts: list[str | _RawAction] = []
    position = 0
    for match in _ACTION_RE.finditer(source):
        if match.start() > position:
            parts.append(source[position : match.start()])
        line = source.count("\n", 0, match.start()) + 1
        parts.append(
            _RawAction(
                content=match.group(2).strip(),
                trim_left=match.group(1) == "-",
                trim_right=match.group(3) == "-",
                line=line,
            )
        )
        position = match.end()
    if position < len(source):
        parts.append(source[position:])
    return parts


def _apply_trimming(parts: list[str | _RawAction]) -> list[str | _RawAction]:
    """Apply ``{{-`` / ``-}}`` whitespace trimming to adjacent text chunks."""
    trimmed: list[str | _RawAction] = list(parts)
    for index, part in enumerate(trimmed):
        if not isinstance(part, _RawAction):
            continue
        if part.trim_left and index > 0 and isinstance(trimmed[index - 1], str):
            trimmed[index - 1] = trimmed[index - 1].rstrip(" \t\n\r")  # type: ignore[union-attr]
        if part.trim_right and index + 1 < len(trimmed) and isinstance(trimmed[index + 1], str):
            trimmed[index + 1] = trimmed[index + 1].lstrip(" \t\n\r")  # type: ignore[union-attr]
    return trimmed


# --------------------------------------------------------------------------
# Expression tokenizer
# --------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    \s*(
        "(?:[^"\\]|\\.)*"          # double-quoted string
      | `[^`]*`                    # backtick string
      | -?\d+\.\d+                 # float
      | -?\d+                      # int
      | \$[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z0-9_]+)*   # variable (optionally with path)
      | \$\.[A-Za-z0-9_][A-Za-z0-9_.]*                 # root-relative path ($.Values.x)
      | \$                         # bare root variable
      | \.[A-Za-z_][A-Za-z0-9_.]*  # dotted path
      | \.                         # bare dot
      | [A-Za-z_][A-Za-z0-9_]*     # identifier / function name
      | :=                         # declaration
      | \|                         # pipe
      | [()]                       # parentheses
      | ,                          # comma (range var list)
    )""",
    re.VERBOSE,
)


def tokenize_expression(expression: str) -> list[str]:
    """Split an action expression into tokens."""
    tokens: list[str] = []
    position = 0
    while position < len(expression):
        match = _TOKEN_RE.match(expression, position)
        if not match:
            remainder = expression[position:].strip()
            if not remainder:
                break
            raise TemplateError(f"cannot tokenize expression near {remainder!r}")
        tokens.append(match.group(1))
        position = match.end()
    return tokens


# --------------------------------------------------------------------------
# AST nodes
# --------------------------------------------------------------------------


@dataclass
class TextNode:
    text: str


@dataclass
class ActionNode:
    tokens: list[str]
    line: int = 0


@dataclass
class IfNode:
    #: ``(condition_tokens, body)`` pairs; a ``None`` condition is the else arm.
    branches: list[tuple[list[str] | None, list[Any]]] = field(default_factory=list)


@dataclass
class RangeNode:
    tokens: list[str]
    key_var: str = ""
    value_var: str = ""
    body: list[Any] = field(default_factory=list)
    else_body: list[Any] = field(default_factory=list)


@dataclass
class WithNode:
    tokens: list[str]
    body: list[Any] = field(default_factory=list)
    else_body: list[Any] = field(default_factory=list)


@dataclass
class DefineNode:
    name: str
    body: list[Any] = field(default_factory=list)


@dataclass
class VariableNode:
    name: str
    tokens: list[str] = field(default_factory=list)


Node = Any


# --------------------------------------------------------------------------
# Parser
# --------------------------------------------------------------------------


class _Parser:
    """Builds an AST from the interleaved text/action stream."""

    def __init__(self, parts: list[str | _RawAction], template_name: str) -> None:
        self._parts = parts
        self._template_name = template_name
        self._index = 0

    def parse(self) -> list[Node]:
        nodes, terminator = self._parse_block(expect_end=False)
        if terminator is not None:
            raise TemplateError(
                f"unexpected {terminator!r} outside of a block", self._template_name
            )
        return nodes

    # Internal helpers -------------------------------------------------------
    def _next_part(self) -> str | _RawAction | None:
        if self._index >= len(self._parts):
            return None
        part = self._parts[self._index]
        self._index += 1
        return part

    def _parse_block(self, expect_end: bool) -> tuple[list[Node], str | None]:
        """Parse nodes until ``end``/``else`` or end of input.

        Returns the parsed nodes and the keyword that terminated the block
        (``"end"``, ``"else"``, ``"else if"`` with its tokens attached, or
        ``None`` at end of input).
        """
        nodes: list[Node] = []
        while True:
            part = self._next_part()
            if part is None:
                if expect_end:
                    raise TemplateError("missing {{ end }}", self._template_name)
                return nodes, None
            if isinstance(part, str):
                nodes.append(TextNode(part))
                continue
            content = part.content
            if not content or content.startswith("/*"):
                continue
            keyword, _, rest = content.partition(" ")
            if keyword == "end":
                return nodes, "end"
            if keyword == "else":
                self._pending_else = rest.strip()
                return nodes, "else"
            if keyword == "if":
                nodes.append(self._parse_if(rest))
            elif keyword == "range":
                nodes.append(self._parse_range(rest))
            elif keyword == "with":
                nodes.append(self._parse_with(rest))
            elif keyword == "define":
                nodes.append(self._parse_define(rest))
            elif keyword == "template":
                # {{ template "name" ctx }} is equivalent to include without pipe.
                nodes.append(ActionNode(["include"] + tokenize_expression(rest), part.line))
            elif keyword.startswith("$") and rest.startswith(":="):
                nodes.append(
                    VariableNode(name=keyword, tokens=tokenize_expression(rest[2:].strip()))
                )
            else:
                nodes.append(ActionNode(tokenize_expression(content), part.line))

    def _parse_if(self, condition: str) -> IfNode:
        node = IfNode()
        tokens = tokenize_expression(condition)
        while True:
            body, terminator = self._parse_block(expect_end=True)
            node.branches.append((tokens, body))
            if terminator == "end":
                return node
            # terminator == "else": either a plain else or an "else if ..."
            pending = getattr(self, "_pending_else", "")
            if pending.startswith("if "):
                tokens = tokenize_expression(pending[3:])
                continue
            else_body, terminator = self._parse_block(expect_end=True)
            node.branches.append((None, else_body))
            if terminator != "end":
                raise TemplateError("malformed if/else block", self._template_name)
            return node

    def _parse_range(self, expression: str) -> RangeNode:
        key_var = value_var = ""
        if ":=" in expression:
            declaration, _, expression = expression.partition(":=")
            variables = [var.strip() for var in declaration.split(",") if var.strip()]
            if len(variables) == 1:
                value_var = variables[0]
            elif len(variables) == 2:
                key_var, value_var = variables
            else:
                raise TemplateError("range accepts at most two variables", self._template_name)
        node = RangeNode(
            tokens=tokenize_expression(expression.strip()),
            key_var=key_var,
            value_var=value_var,
        )
        body, terminator = self._parse_block(expect_end=True)
        node.body = body
        if terminator == "else":
            node.else_body, terminator = self._parse_block(expect_end=True)
        if terminator != "end":
            raise TemplateError("malformed range block", self._template_name)
        return node

    def _parse_with(self, expression: str) -> WithNode:
        node = WithNode(tokens=tokenize_expression(expression.strip()))
        body, terminator = self._parse_block(expect_end=True)
        node.body = body
        if terminator == "else":
            node.else_body, terminator = self._parse_block(expect_end=True)
        if terminator != "end":
            raise TemplateError("malformed with block", self._template_name)
        return node

    def _parse_define(self, expression: str) -> DefineNode:
        tokens = tokenize_expression(expression.strip())
        if not tokens or not tokens[0].startswith('"'):
            raise TemplateError("define requires a quoted template name", self._template_name)
        name = tokens[0][1:-1]
        body, terminator = self._parse_block(expect_end=True)
        if terminator != "end":
            raise TemplateError("malformed define block", self._template_name)
        return DefineNode(name=name, body=body)


def parse_template(source: str, template_name: str = "") -> list[Node]:
    """Parse template source into an AST."""
    parts = _apply_trimming(_split_source(source))
    return _Parser(parts, template_name).parse()


# --------------------------------------------------------------------------
# Rendering context
# --------------------------------------------------------------------------


class RenderContext:
    """Evaluation state: the dot, the root context, and template variables."""

    def __init__(self, root: Any, dot: Any = None, variables: dict[str, Any] | None = None) -> None:
        self.root = root
        self.dot = root if dot is None else dot
        self.variables = dict(variables or {})

    def child(self, dot: Any) -> "RenderContext":
        return RenderContext(self.root, dot, self.variables)


def _resolve_path(base: Any, path: Sequence[str]) -> Any:
    current = base
    for part in path:
        if isinstance(current, Mapping):
            current = current.get(part)
        else:
            current = getattr(current, part, None)
        if current is None:
            return None
    return current


def _is_truthy(value: Any) -> bool:
    """Go template truthiness: zero values, empty collections and None are false."""
    if value is None or value is False:
        return False
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return value != 0
    if isinstance(value, (str, list, tuple, dict, set)):
        return len(value) > 0
    return True


def _to_yaml(value: Any) -> str:
    text = yaml.safe_dump(value, default_flow_style=False, sort_keys=False)
    return text.rstrip("\n")


def _indent(spaces: int, text: str) -> str:
    prefix = " " * int(spaces)
    return "\n".join(prefix + line if line else line for line in str(text).split("\n"))


def _format_value(value: Any) -> str:
    """Convert an evaluated value to template output text."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


# --------------------------------------------------------------------------
# Engine
# --------------------------------------------------------------------------


class TemplateEngine:
    """Parses and renders templates, holding named ``define`` blocks."""

    def __init__(self) -> None:
        self._defines: dict[str, list[Node]] = {}
        self._functions: dict[str, Callable[..., Any]] = self._build_functions()

    # Public API -----------------------------------------------------------
    def register_source(self, source: str, template_name: str = "") -> list[Node]:
        """Parse a template, record its ``define`` blocks, return its AST."""
        nodes = parse_template(source, template_name)
        self._collect_defines(nodes)
        return nodes

    def render(self, source: str, context: Mapping[str, Any], template_name: str = "") -> str:
        """Render template ``source`` with ``context`` as the root dot."""
        nodes = self.register_source(source, template_name)
        return self.render_nodes(nodes, RenderContext(dict(context)))

    def render_nodes(self, nodes: Sequence[Node], ctx: RenderContext) -> str:
        output: list[str] = []
        for node in nodes:
            output.append(self._render_node(node, ctx))
        return "".join(output)

    # Defines ----------------------------------------------------------------
    def _collect_defines(self, nodes: Sequence[Node]) -> None:
        for node in nodes:
            if isinstance(node, DefineNode):
                self._defines[node.name] = node.body

    def include(self, name: str, dot: Any, ctx: RenderContext) -> str:
        body = self._defines.get(name)
        if body is None:
            raise TemplateError(f"included template {name!r} is not defined")
        return self.render_nodes(body, RenderContext(ctx.root, dot, ctx.variables))

    # Node rendering -----------------------------------------------------------
    def _render_node(self, node: Node, ctx: RenderContext) -> str:
        if isinstance(node, TextNode):
            return node.text
        if isinstance(node, DefineNode):
            return ""
        if isinstance(node, VariableNode):
            ctx.variables[node.name] = self._eval_pipeline(node.tokens, ctx)
            return ""
        if isinstance(node, ActionNode):
            return _format_value(self._eval_pipeline(node.tokens, ctx))
        if isinstance(node, IfNode):
            for condition, body in node.branches:
                if condition is None or _is_truthy(self._eval_pipeline(condition, ctx)):
                    return self.render_nodes(body, ctx)
            return ""
        if isinstance(node, WithNode):
            value = self._eval_pipeline(node.tokens, ctx)
            if _is_truthy(value):
                return self.render_nodes(node.body, ctx.child(value))
            return self.render_nodes(node.else_body, ctx)
        if isinstance(node, RangeNode):
            return self._render_range(node, ctx)
        raise TemplateError(f"unknown template node: {node!r}")

    def _render_range(self, node: RangeNode, ctx: RenderContext) -> str:
        value = self._eval_pipeline(node.tokens, ctx)
        items: list[tuple[Any, Any]]
        if isinstance(value, Mapping):
            items = list(value.items())
        elif isinstance(value, (list, tuple)):
            items = list(enumerate(value))
        elif value is None:
            items = []
        else:
            raise TemplateError(f"cannot range over {type(value).__name__}")
        if not items:
            return self.render_nodes(node.else_body, ctx)
        output: list[str] = []
        for key, item in items:
            child = ctx.child(item)
            if node.key_var:
                child.variables[node.key_var] = key
            if node.value_var:
                child.variables[node.value_var] = item
            output.append(self.render_nodes(node.body, child))
        return "".join(output)

    # Expression evaluation ------------------------------------------------------
    def _eval_pipeline(self, tokens: Sequence[str], ctx: RenderContext) -> Any:
        """Evaluate a full pipeline: stages separated by top-level ``|``."""
        segments: list[list[str]] = [[]]
        depth = 0
        for token in tokens:
            if token == "(":
                depth += 1
            elif token == ")":
                depth -= 1
            if token == "|" and depth == 0:
                segments.append([])
            else:
                segments[-1].append(token)
        value = self._eval_stage(segments[0], ctx, piped=None, append_piped=False)
        for segment in segments[1:]:
            value = self._eval_stage(segment, ctx, piped=value, append_piped=True)
        return value

    def _eval_stage(
        self, tokens: list[str], ctx: RenderContext, piped: Any, append_piped: bool
    ) -> Any:
        """Evaluate one pipeline stage.

        The value produced by the previous stage (``piped``) is appended as the
        final function argument, mirroring Go template semantics.
        """
        if not tokens:
            return piped
        head_token = tokens[0]
        head_is_function = (
            not head_token.startswith(('"', "`", ".", "$", "("))
            and not head_token.lstrip("-").replace(".", "").isdigit()
            and head_token not in ("true", "false", "nil")
        )
        if head_is_function:
            args, index = self._collect_terms(tokens[1:], ctx)
            if index != len(tokens) - 1:
                raise TemplateError(f"trailing tokens in expression: {tokens[1 + index:]!r}")
            if append_piped:
                args = args + [piped]
            return self._call_function(head_token, args, ctx)
        terms, index = self._collect_terms(tokens, ctx)
        if index != len(tokens):
            raise TemplateError(f"trailing tokens in expression: {tokens[index:]!r}")
        if len(terms) == 1:
            return terms[0]
        raise TemplateError(f"cannot evaluate expression: {' '.join(tokens)!r}")

    def _collect_terms(self, tokens: list[str], ctx: RenderContext) -> tuple[list[Any], int]:
        """Evaluate each term of a command, handling parenthesised pipelines."""
        terms: list[Any] = []
        index = 0
        while index < len(tokens):
            token = tokens[index]
            if token == "(":
                depth = 1
                closing = index + 1
                while closing < len(tokens) and depth:
                    if tokens[closing] == "(":
                        depth += 1
                    elif tokens[closing] == ")":
                        depth -= 1
                    closing += 1
                if depth:
                    raise TemplateError("unbalanced parentheses in expression")
                terms.append(self._eval_pipeline(tokens[index + 1 : closing - 1], ctx))
                index = closing
                continue
            terms.append(self._eval_term(token, ctx))
            index += 1
        return terms, index

    def _eval_term(self, token: str, ctx: RenderContext) -> Any:
        if token.startswith('"'):
            return token[1:-1].replace('\\"', '"').replace("\\n", "\n").replace("\\\\", "\\")
        if token.startswith("`"):
            return token[1:-1]
        if token == "true":
            return True
        if token == "false":
            return False
        if token == "nil":
            return None
        if re.fullmatch(r"-?\d+", token):
            return int(token)
        if re.fullmatch(r"-?\d+\.\d+", token):
            return float(token)
        if token == ".":
            return ctx.dot
        if token == "$":
            return ctx.root
        if token.startswith("$."):
            return _resolve_path(ctx.root, [part for part in token[2:].split(".") if part])
        if token.startswith("$"):
            name, _, rest = token.partition(".")
            if name not in ctx.variables:
                raise TemplateError(f"undefined template variable {name!r}")
            base = ctx.variables[name]
            return _resolve_path(base, rest.split(".")) if rest else base
        if token.startswith("."):
            return _resolve_path(ctx.dot, [part for part in token.split(".") if part])
        # Bare identifier used as a value (rare); treat as function call with no args.
        return self._call_function(token, [], ctx)

    # Function library --------------------------------------------------------
    def _call_function(self, name: str, args: list[Any], ctx: RenderContext) -> Any:
        if name == "include":
            if not args:
                raise TemplateError("include requires a template name")
            template_name = args[0]
            dot = args[1] if len(args) > 1 else ctx.dot
            return self.include(str(template_name), dot, ctx)
        function = self._functions.get(name)
        if function is None:
            raise TemplateError(f"unknown template function {name!r}")
        try:
            return function(*args)
        except TemplateError:
            raise
        except Exception as exc:  # noqa: BLE001 - surface as template error
            raise TemplateError(f"error calling {name}: {exc}") from exc

    @staticmethod
    def _build_functions() -> dict[str, Callable[..., Any]]:
        def default(fallback: Any, value: Any = None) -> Any:
            return value if _is_truthy(value) else fallback

        def required(message: str, value: Any = None) -> Any:
            if not _is_truthy(value):
                raise TemplateError(str(message))
            return value

        def printf(fmt: str, *args: Any) -> str:
            converted = re.sub(r"%[#+\- 0]*\d*\.?\d*[vdsqfgt]", _printf_to_python, str(fmt))
            return converted % tuple(args)

        def _printf_to_python(match: re.Match[str]) -> str:
            spec = match.group(0)
            kind = spec[-1]
            if kind in ("v", "s", "t"):
                return spec[:-1] + "s"
            if kind == "d":
                return spec[:-1] + "d"
            if kind == "q":
                return '"%s"'
            if kind in ("f", "g"):
                return spec[:-1] + kind
            return spec

        def ternary(if_true: Any, if_false: Any, condition: Any) -> Any:
            return if_true if _is_truthy(condition) else if_false

        functions: dict[str, Callable[..., Any]] = {
            "default": default,
            "required": required,
            "quote": lambda *values: " ".join(f'"{_format_value(v)}"' for v in values),
            "squote": lambda *values: " ".join(f"'{_format_value(v)}'" for v in values),
            "upper": lambda value: str(value).upper(),
            "lower": lambda value: str(value).lower(),
            "title": lambda value: str(value).title(),
            "trim": lambda value: str(value).strip(),
            "trunc": lambda length, value: str(value)[: int(length)]
            if int(length) >= 0
            else str(value)[int(length) :],
            "trimSuffix": lambda suffix, value: str(value).removesuffix(str(suffix)),
            "trimPrefix": lambda prefix, value: str(value).removeprefix(str(prefix)),
            "replace": lambda old, new, value: str(value).replace(str(old), str(new)),
            "contains": lambda needle, haystack: str(needle) in str(haystack),
            "hasPrefix": lambda prefix, value: str(value).startswith(str(prefix)),
            "hasSuffix": lambda suffix, value: str(value).endswith(str(suffix)),
            "repeat": lambda count, value: str(value) * int(count),
            "join": lambda separator, values: str(separator).join(
                _format_value(v) for v in (values or [])
            ),
            "splitList": lambda separator, value: str(value).split(str(separator)),
            "toString": _format_value,
            "toYaml": _to_yaml,
            "fromYaml": lambda value: yaml.safe_load(str(value)),
            "toJson": lambda value: yaml.safe_dump(value, default_flow_style=True).strip(),
            "indent": _indent,
            "nindent": lambda spaces, text: "\n" + _indent(spaces, text),
            "b64enc": lambda value: __import__("base64").b64encode(str(value).encode()).decode(),
            "b64dec": lambda value: __import__("base64").b64decode(str(value).encode()).decode(),
            "int": lambda value: int(float(value)) if value not in (None, "") else 0,
            "int64": lambda value: int(float(value)) if value not in (None, "") else 0,
            "float64": lambda value: float(value) if value not in (None, "") else 0.0,
            "add": lambda *values: sum(int(v) for v in values),
            "add1": lambda value: int(value) + 1,
            "sub": lambda a, b: int(a) - int(b),
            "mul": lambda *values: __import__("math").prod(int(v) for v in values),
            "div": lambda a, b: int(a) // int(b),
            "mod": lambda a, b: int(a) % int(b),
            "max": lambda *values: max(int(v) for v in values),
            "min": lambda *values: min(int(v) for v in values),
            "eq": lambda a, b: a == b,
            "ne": lambda a, b: a != b,
            "lt": lambda a, b: a < b,
            "le": lambda a, b: a <= b,
            "gt": lambda a, b: a > b,
            "ge": lambda a, b: a >= b,
            "not": lambda value: not _is_truthy(value),
            "and": lambda *values: next((v for v in values if not _is_truthy(v)), values[-1]),
            "or": lambda *values: next((v for v in values if _is_truthy(v)), values[-1]),
            "empty": lambda value: not _is_truthy(value),
            "coalesce": lambda *values: next((v for v in values if _is_truthy(v)), None),
            "ternary": ternary,
            "list": lambda *values: list(values),
            "dict": lambda *pairs: {
                str(pairs[i]): pairs[i + 1] for i in range(0, len(pairs) - 1, 2)
            },
            "get": lambda mapping, key: (mapping or {}).get(key),
            "hasKey": lambda mapping, key: key in (mapping or {}),
            "keys": lambda mapping: sorted((mapping or {}).keys()),
            "values": lambda mapping: list((mapping or {}).values()),
            "len": lambda value: len(value) if value is not None else 0,
            "first": lambda value: value[0] if value else None,
            "last": lambda value: value[-1] if value else None,
            "printf": printf,
            "print": lambda *values: "".join(_format_value(v) for v in values),
            "kindIs": lambda kind, value: _kind_of(value) == kind,
            "typeOf": lambda value: _kind_of(value),
            "lookup": lambda *args: {},
            "randAlphaNum": lambda length: "x" * int(length),
            "uuidv4": lambda: "00000000-0000-4000-8000-000000000000",
            "now": lambda: "1970-01-01T00:00:00Z",
            "semverCompare": lambda constraint, version: True,
        }
        return functions


def _kind_of(value: Any) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float64"
    if isinstance(value, str):
        return "string"
    if isinstance(value, Mapping):
        return "map"
    if isinstance(value, (list, tuple)):
        return "slice"
    if value is None:
        return "invalid"
    return type(value).__name__
