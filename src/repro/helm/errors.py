"""Exceptions raised by the Helm chart engine."""

from __future__ import annotations


class HelmError(Exception):
    """Base class for all errors raised by :mod:`repro.helm`."""


class TemplateError(HelmError):
    """A template could not be parsed or rendered."""

    def __init__(self, message: str, template: str = "", line: int | None = None) -> None:
        self.template = template
        self.line = line
        location = ""
        if template:
            location = f" in template {template!r}"
            if line is not None:
                location += f" (line {line})"
        super().__init__(f"{message}{location}")


class ValuesError(HelmError):
    """A values file is malformed or a required value is missing."""


class ChartError(HelmError):
    """A chart definition is inconsistent (missing metadata, bad dependency...)."""


class RenderError(HelmError):
    """Rendering a chart produced invalid Kubernetes manifests."""
