"""Exceptions raised by the Kubernetes object model."""

from __future__ import annotations


class KubernetesModelError(Exception):
    """Base class for all errors raised by :mod:`repro.k8s`."""


class ValidationError(KubernetesModelError):
    """A resource definition violates the Kubernetes object schema.

    The error carries the ``path`` of the offending field (dotted notation,
    e.g. ``spec.containers[0].ports[1].containerPort``) so callers can point
    users at the exact location inside a YAML document.
    """

    def __init__(self, message: str, path: str = "") -> None:
        self.path = path
        if path:
            message = f"{path}: {message}"
        super().__init__(message)


class ImmutableObjectError(KubernetesModelError):
    """An attribute assignment hit a sealed (content-interned) object.

    Sealed objects are shared across render-cache entries and inventories;
    mutating one in place would corrupt every other consumer.  Callers that
    need a mutable variant take a ``copy.deepcopy`` (which thaws) or rebuild
    the object through its constructor.
    """


class UnknownKindError(KubernetesModelError):
    """A manifest declares a ``kind`` that the model does not know about."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        super().__init__(f"unknown Kubernetes kind: {kind!r}")


class SelectorError(KubernetesModelError):
    """A label selector is malformed (bad operator, missing values, ...)."""


class ParseError(KubernetesModelError):
    """A YAML document could not be converted into model objects."""
