"""Kind registry and YAML parsing.

Converts raw manifests (dictionaries or multi-document YAML text) into the
typed objects of this package, falling back to :class:`GenericObject` for
unknown kinds so that real-world charts with CRDs still parse.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Callable, Iterable

import yaml

from .errors import ParseError
from .meta import KubernetesObject
from .yamlio import yaml_dump_all, yaml_load_all
from .misc import (
    ClusterRole,
    ClusterRoleBinding,
    ConfigMap,
    GenericObject,
    Ingress,
    Namespace,
    Role,
    RoleBinding,
    Secret,
    ServiceAccount,
)
from .networkpolicy import NetworkPolicy
from .pod import Pod
from .service import Service
from .workloads import CronJob, DaemonSet, Deployment, Job, ReplicaSet, StatefulSet

#: Mapping from ``kind`` to the constructor handling it.
KIND_REGISTRY: dict[str, Callable[[Mapping], KubernetesObject]] = {
    "Pod": Pod.from_dict,
    "Deployment": Deployment.from_dict,
    "ReplicaSet": ReplicaSet.from_dict,
    "StatefulSet": StatefulSet.from_dict,
    "DaemonSet": DaemonSet.from_dict,
    "Job": Job.from_dict,
    "CronJob": CronJob.from_dict,
    "Service": Service.from_dict,
    "NetworkPolicy": NetworkPolicy.from_dict,
    "Namespace": Namespace.from_dict,
    "ConfigMap": ConfigMap.from_dict,
    "Secret": Secret.from_dict,
    "ServiceAccount": ServiceAccount.from_dict,
    "Role": Role.from_dict,
    "ClusterRole": ClusterRole.from_dict,
    "RoleBinding": RoleBinding.from_dict,
    "ClusterRoleBinding": ClusterRoleBinding.from_dict,
    "Ingress": Ingress.from_dict,
}


def known_kinds() -> list[str]:
    """Return the kinds that parse into a dedicated model class."""
    return sorted(KIND_REGISTRY)


def object_from_dict(data: Mapping) -> KubernetesObject:
    """Convert a single manifest dictionary into a model object."""
    if not isinstance(data, Mapping):
        raise ParseError(f"manifest must be a mapping, got {type(data).__name__}")
    kind = data.get("kind")
    if not kind:
        raise ParseError("manifest is missing the 'kind' field")
    constructor = KIND_REGISTRY.get(str(kind), GenericObject.from_dict)
    return constructor(data)


def objects_from_dicts(
    documents: Iterable[Mapping | None], interned: bool = False
) -> list[KubernetesObject]:
    """Convert an iterable of manifest dictionaries, skipping empty documents.

    ``interned=True`` routes each document through the shared intern table
    (:mod:`repro.k8s.inventory`): documents with a previously seen content
    fingerprint return the same sealed object instead of building a new one.
    The default un-interned build constructs fresh mutable objects -- the
    reference path the interning property suite diffs against.
    """
    if interned:
        from .inventory import intern_object

        constructor = intern_object
    else:
        constructor = object_from_dict
    objects: list[KubernetesObject] = []
    for document in documents:
        if not document:
            continue
        objects.append(constructor(document))
    return objects


def load_yaml(text: str) -> list[KubernetesObject]:
    """Parse multi-document YAML text into model objects."""
    try:
        documents = list(yaml_load_all(text))
    except yaml.YAMLError as exc:
        raise ParseError(f"invalid YAML: {exc}") from exc
    return objects_from_dicts(documents)


def dump_yaml(objects: Iterable[KubernetesObject]) -> str:
    """Serialize model objects back to multi-document YAML."""
    documents = [obj.to_dict() for obj in objects]
    return yaml_dump_all(documents, sort_keys=False, default_flow_style=False)
