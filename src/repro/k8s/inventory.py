"""Inventory: a queryable view over a set of Kubernetes objects.

Both the static analyzer and the cluster simulator need the same queries
("all compute units", "services selecting this workload", "network policies
that select these labels", ...).  :class:`Inventory` centralizes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from .meta import KubernetesObject
from .networkpolicy import NetworkPolicy
from .pod import Pod, PodTemplateSpec
from .service import Service
from .workloads import Workload


@dataclass
class ComputeUnit:
    """A uniform wrapper over anything that owns pods (Workload or bare Pod)."""

    obj: KubernetesObject

    @property
    def kind(self) -> str:
        return self.obj.kind

    @property
    def name(self) -> str:
        return self.obj.name

    @property
    def namespace(self) -> str:
        return self.obj.namespace

    def qualified_name(self) -> str:
        return self.obj.qualified_name()

    def pod_template(self) -> PodTemplateSpec:
        if isinstance(self.obj, Workload):
            return self.obj.pod_template()
        assert isinstance(self.obj, Pod)
        return PodTemplateSpec(metadata=self.obj.metadata, spec=self.obj.spec)

    def pod_labels(self) -> Mapping[str, str]:
        if isinstance(self.obj, Workload):
            return self.obj.pod_labels()
        return self.obj.labels

    def replica_count(self) -> int:
        if isinstance(self.obj, Workload):
            return self.obj.replica_count()
        return 1

    def declared_port_numbers(self, protocol: str | None = None) -> set[int]:
        return self.pod_template().spec.declared_port_numbers(protocol)

    def resolve_port_name(self, name: str) -> int | None:
        return self.pod_template().spec.resolve_port_name(name)

    def uses_host_network(self) -> bool:
        return self.pod_template().spec.host_network


class Inventory:
    """An indexed collection of Kubernetes objects."""

    def __init__(self, objects: Iterable[KubernetesObject] = ()) -> None:
        self._objects: list[KubernetesObject] = []
        for obj in objects:
            self.add(obj)

    # Construction ---------------------------------------------------------
    def add(self, obj: KubernetesObject) -> None:
        self._objects.append(obj)

    def extend(self, objects: Iterable[KubernetesObject]) -> None:
        for obj in objects:
            self.add(obj)

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[KubernetesObject]:
        return iter(self._objects)

    # Queries ----------------------------------------------------------------
    def of_kind(self, kind: str) -> list[KubernetesObject]:
        return [obj for obj in self._objects if obj.kind == kind]

    def compute_units(self) -> list[ComputeUnit]:
        """Every pod-owning object (workload controllers and bare pods)."""
        units: list[ComputeUnit] = []
        for obj in self._objects:
            if isinstance(obj, Workload) or isinstance(obj, Pod):
                units.append(ComputeUnit(obj))
        return units

    def services(self) -> list[Service]:
        return [obj for obj in self._objects if isinstance(obj, Service)]

    def network_policies(self) -> list[NetworkPolicy]:
        return [obj for obj in self._objects if isinstance(obj, NetworkPolicy)]

    def pods(self) -> list[Pod]:
        return [obj for obj in self._objects if isinstance(obj, Pod)]

    def services_selecting(self, labels: Mapping[str, str], namespace: str) -> list[Service]:
        """Services whose selector matches ``labels`` in ``namespace``."""
        return [
            service
            for service in self.services()
            if service.namespace == namespace
            and service.has_selector
            and service.selector.matches(labels)
        ]

    def compute_units_selected_by(self, service: Service) -> list[ComputeUnit]:
        """Compute units targeted by a service selector."""
        if not service.has_selector:
            return []
        return [
            unit
            for unit in self.compute_units()
            if unit.namespace == service.namespace
            and service.selector.matches(unit.pod_labels())
        ]

    def policies_selecting(self, labels: Mapping[str, str], namespace: str) -> list[NetworkPolicy]:
        return [
            policy
            for policy in self.network_policies()
            if policy.selects(labels, namespace)
        ]

    def validate_all(self) -> list[str]:
        """Validate every object, returning the collected error messages."""
        errors: list[str] = []
        for obj in self._objects:
            try:
                obj.validate()
            except Exception as exc:  # noqa: BLE001 - collecting all messages
                errors.append(f"{obj.qualified_name()}: {exc}")
        return errors
