"""Inventory: an immutable, index-carrying view over Kubernetes objects.

Both the static analyzer and the cluster simulator need the same queries
("all compute units", "services selecting this workload", "network policies
that select these labels", ...).  :class:`Inventory` centralizes them.

Two properties make the analysis hot path cheap:

* **Immutability with lazy frozen indexes.**  An inventory snapshots its
  objects at construction and never changes afterwards, so every derived
  view -- the by-kind buckets, the typed object lists, the per-namespace
  selector indexes, the unit→selecting-services and unit→selecting-policies
  memos -- is computed at most once and then shared by every caller.  The
  seed implementation rebuilt each of these lists per call, which made rule
  evaluation quadratic in practice (every rule re-walked and re-grouped the
  same objects).
* **Content interning** (:func:`intern_object`).  Typed objects are memoized
  on a canonical fingerprint of their manifest dictionary; repeated renders
  of the same chart/override variant therefore share one sealed object
  graph, and a warm render-cache hit returns shared references instead of
  re-running ``objects_from_dicts`` plus a pickle copy.  Interned objects
  are sealed (:meth:`~repro.k8s.meta.KubernetesObject.seal`): attribute
  assignment raises, so the sharing cannot be corrupted.  The un-interned
  build (``objects_from_dicts(..., interned=False)``) stays in-tree as the
  reference; the interning property suite proves the two observably
  equivalent.

The indexes assume the underlying objects do not change while the inventory
is alive -- true by construction for interned (sealed) objects, and by
convention everywhere else (mutating consumers such as the mitigation
engine work on thawed deep copies and build fresh inventories after
patching).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from .labels import LabelSet
from .meta import KubernetesObject
from .networkpolicy import NetworkPolicy
from .pod import Pod, PodTemplateSpec
from .service import Service
from .workloads import Workload


def _label_items(labels: Mapping[str, str]) -> frozenset:
    """Hashable ``(key, value)`` pairs, via the LabelSet memo when possible."""
    if type(labels) is LabelSet:
        return labels.item_set()
    return frozenset(labels.items())


@dataclass
class ComputeUnit:
    """A uniform wrapper over anything that owns pods (Workload or bare Pod).

    Inventories hand out one stable wrapper per underlying object, so the
    small memos below (qualified name, declared ports, host-network flag)
    are computed once per analysis instead of once per rule.
    """

    obj: KubernetesObject
    _qualified: str | None = field(default=None, repr=False, compare=False)
    _declared: dict | None = field(default=None, repr=False, compare=False)
    _host_network: bool | None = field(default=None, repr=False, compare=False)

    @property
    def kind(self) -> str:
        return self.obj.kind

    @property
    def name(self) -> str:
        return self.obj.name

    @property
    def namespace(self) -> str:
        return self.obj.namespace

    def qualified_name(self) -> str:
        if self._qualified is None:
            self._qualified = self.obj.qualified_name()
        return self._qualified

    def pod_template(self) -> PodTemplateSpec:
        if isinstance(self.obj, Workload):
            return self.obj.pod_template()
        assert isinstance(self.obj, Pod)
        return PodTemplateSpec(metadata=self.obj.metadata, spec=self.obj.spec)

    def pod_labels(self) -> Mapping[str, str]:
        if isinstance(self.obj, Workload):
            return self.obj.pod_labels()
        return self.obj.labels

    def replica_count(self) -> int:
        if isinstance(self.obj, Workload):
            return self.obj.replica_count()
        return 1

    def declared_port_numbers(self, protocol: str | None = None) -> set[int]:
        if self._declared is None:
            self._declared = {}
        cached = self._declared.get(protocol)
        if cached is None:
            cached = frozenset(self.pod_template().spec.declared_port_numbers(protocol))
            self._declared[protocol] = cached
        # Callers treat the result as a working set (M1/M3 subtract from it),
        # so hand out a fresh mutable copy of the memoized frozenset.
        return set(cached)

    def resolve_port_name(self, name: str) -> int | None:
        return self.pod_template().spec.resolve_port_name(name)

    def uses_host_network(self) -> bool:
        if self._host_network is None:
            self._host_network = self.pod_template().spec.host_network
        return self._host_network


class Inventory:
    """An immutable, indexed collection of Kubernetes objects."""

    def __init__(self, objects: Iterable[KubernetesObject] = ()) -> None:
        self._objects: tuple[KubernetesObject, ...] = tuple(objects)
        self._reset_caches()

    def _reset_caches(self) -> None:
        self._by_kind: dict[str, list[KubernetesObject]] = {}
        self._units: list[ComputeUnit] | None = None
        self._services: list[Service] | None = None
        self._policies: list[NetworkPolicy] | None = None
        self._pods: list[Pod] | None = None
        #: namespace -> [(service, match_items-or-None)], inventory order.
        self._service_index: dict[str, list] | None = None
        #: namespace -> [(unit, frozenset(labels.items()), labels)], order.
        self._unit_index: dict[str, list] | None = None
        self._selecting_services: dict[tuple, list[Service]] = {}
        self._selecting_policies: dict[tuple, list[NetworkPolicy]] = {}
        #: id(service) -> (service, selected units); the service reference is
        #: kept so the id stays valid for the memo's lifetime.
        self._selected_units: dict[int, tuple[Service, list[ComputeUnit]]] = {}

    # The lazy caches are derived state: pickling ships only the objects and
    # rebuilds indexes on demand in the receiving process.
    def __reduce__(self):
        return (Inventory, (self._objects,))

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[KubernetesObject]:
        return iter(self._objects)

    # Queries ----------------------------------------------------------------
    # The list-returning queries memoize and hand back the cached list itself;
    # callers treat them as read-only views (the seed rebuilt them per call).
    def of_kind(self, kind: str) -> list[KubernetesObject]:
        cached = self._by_kind.get(kind)
        if cached is None:
            cached = [obj for obj in self._objects if obj.kind == kind]
            self._by_kind[kind] = cached
        return cached

    def compute_units(self) -> list[ComputeUnit]:
        """Every pod-owning object (workload controllers and bare pods)."""
        if self._units is None:
            self._units = [
                ComputeUnit(obj)
                for obj in self._objects
                if isinstance(obj, (Workload, Pod))
            ]
        return self._units

    def services(self) -> list[Service]:
        if self._services is None:
            self._services = [obj for obj in self._objects if isinstance(obj, Service)]
        return self._services

    def network_policies(self) -> list[NetworkPolicy]:
        if self._policies is None:
            self._policies = [
                obj for obj in self._objects if isinstance(obj, NetworkPolicy)
            ]
        return self._policies

    def pods(self) -> list[Pod]:
        if self._pods is None:
            self._pods = [obj for obj in self._objects if isinstance(obj, Pod)]
        return self._pods

    # Selector indexes -------------------------------------------------------
    def _services_by_namespace(self) -> dict[str, list]:
        if self._service_index is None:
            index: dict[str, list] = {}
            for service in self.services():
                if not service.has_selector:
                    continue
                index.setdefault(service.namespace, []).append(
                    (service, service.selector.as_match_items())
                )
            self._service_index = index
        return self._service_index

    def _units_by_namespace(self) -> dict[str, list]:
        if self._unit_index is None:
            index: dict[str, list] = {}
            for unit in self.compute_units():
                labels = unit.pod_labels()
                index.setdefault(unit.namespace, []).append(
                    (unit, _label_items(labels), labels)
                )
            self._unit_index = index
        return self._unit_index

    def services_selecting(self, labels: Mapping[str, str], namespace: str) -> list[Service]:
        """Services whose selector matches ``labels`` in ``namespace``."""
        key = (namespace, _label_items(labels))
        cached = self._selecting_services.get(key)
        if cached is None:
            label_items = key[1]
            cached = [
                service
                for service, match_items in self._services_by_namespace().get(namespace, ())
                if (
                    match_items <= label_items
                    if match_items is not None
                    else service.selector.matches(labels)
                )
            ]
            self._selecting_services[key] = cached
        return cached

    def compute_units_selected_by(self, service: Service) -> list[ComputeUnit]:
        """Compute units targeted by a service selector."""
        if not service.has_selector:
            return []
        cached = self._selected_units.get(id(service))
        if cached is not None:
            return cached[1]
        match_items = service.selector.as_match_items()
        selected = [
            unit
            for unit, label_items, labels in self._units_by_namespace().get(
                service.namespace, ()
            )
            if (
                match_items <= label_items
                if match_items is not None
                else service.selector.matches(labels)
            )
        ]
        self._selected_units[id(service)] = (service, selected)
        return selected

    def policies_selecting(self, labels: Mapping[str, str], namespace: str) -> list[NetworkPolicy]:
        key = (namespace, _label_items(labels))
        cached = self._selecting_policies.get(key)
        if cached is None:
            cached = [
                policy
                for policy in self.network_policies()
                if policy.selects(labels, namespace)
            ]
            self._selecting_policies[key] = cached
        return cached

    def validate_all(self) -> list[str]:
        """Validate every object, returning the collected error messages."""
        errors: list[str] = []
        for obj in self._objects:
            try:
                obj.validate()
            except Exception as exc:  # noqa: BLE001 - collecting all messages
                errors.append(f"{obj.qualified_name()}: {exc}")
        return errors


# ---------------------------------------------------------------------------
# Content interning
# ---------------------------------------------------------------------------


class InternTable:
    """Typed objects memoized on a canonical manifest fingerprint.

    The fingerprint is the pickle of the manifest dictionary: it covers every
    field (so two documents intern to the same object only when their content
    -- including key order, which is stable for same-template renders -- is
    identical) and costs far less than typed-object construction.  Interned
    objects are sealed before they are published, which is what makes the
    sharing safe: same fingerprint ⇒ same object identity, and mutation of a
    shared object raises :class:`~repro.k8s.errors.ImmutableObjectError`.

    Documents that cannot be pickled (exotic values from adversarial
    templates) fall back to a fresh un-interned build -- interning is an
    accelerator, never a gate.
    """

    def __init__(self, maxsize: int = 65536) -> None:
        self._maxsize = maxsize
        self._entries: dict[bytes, KubernetesObject] = {}
        self.hits = 0
        self.misses = 0
        self.uninternable = 0

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict[str, int]:
        """Hit/miss/entry counters (guard hooks for the property suite)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._entries),
            "uninternable": self.uninternable,
        }

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.uninternable = 0

    def intern(self, document: Mapping) -> KubernetesObject:
        """The shared sealed object for ``document`` (building it on a miss)."""
        from .registry import object_from_dict

        try:
            key = pickle.dumps(document, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:  # noqa: BLE001 - unpicklable content: build fresh
            self.uninternable += 1
            return object_from_dict(document)
        obj = self._entries.get(key)
        if obj is not None:
            self.hits += 1
            return obj
        self.misses += 1
        obj = object_from_dict(document)
        obj.seal()
        self._entries[key] = obj
        while len(self._entries) > self._maxsize:
            self._entries.pop(next(iter(self._entries)), None)
        return obj


_SHARED_INTERN = InternTable()


def shared_intern_table() -> InternTable:
    """The process-wide intern table behind ``objects_from_dicts(interned=True)``."""
    return _SHARED_INTERN


def intern_object(document: Mapping) -> KubernetesObject:
    """Intern one manifest dictionary through the shared table."""
    return _SHARED_INTERN.intern(document)


def intern_stats() -> dict[str, int]:
    """Counters of the shared intern table."""
    return _SHARED_INTERN.stats()


def clear_intern_table() -> None:
    """Drop every shared interned object (tests and benchmarks)."""
    _SHARED_INTERN.clear()
