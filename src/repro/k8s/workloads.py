"""Workload controllers: Deployment, StatefulSet, DaemonSet, ReplicaSet, Job, CronJob.

The paper refers to these collectively as *compute units*.  Every workload
exposes the same small interface used by the analyzer:

* :attr:`labels` -- labels of the controller object itself;
* :meth:`pod_labels` -- labels stamped on the pods it creates;
* :meth:`pod_template` -- the embedded :class:`~repro.k8s.pod.PodTemplateSpec`;
* :meth:`replica_count` -- how many pods the cluster simulator should create.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Mapping

from .errors import ValidationError
from .labels import LabelSet, Selector
from .meta import KubernetesObject, ObjectMeta
from .pod import PodTemplateSpec

#: Kinds that the analyzer treats as compute units.
COMPUTE_UNIT_KINDS = (
    "Deployment",
    "StatefulSet",
    "DaemonSet",
    "ReplicaSet",
    "Job",
    "CronJob",
    "Pod",
)


@dataclass
class Workload(KubernetesObject):
    """Common base class of all pod-owning controllers."""

    KIND: ClassVar[str] = ""
    API_VERSION: ClassVar[str] = "apps/v1"

    replicas: int = 1
    selector: Selector = field(default_factory=Selector)
    template: PodTemplateSpec = field(default_factory=PodTemplateSpec)

    # Analyzer interface --------------------------------------------------
    def pod_template(self) -> PodTemplateSpec:
        return self.template

    def pod_labels(self) -> LabelSet:
        """Labels applied to the pods created from the template."""
        return self.template.metadata.labels

    def replica_count(self) -> int:
        return max(0, int(self.replicas))

    def is_compute_unit(self) -> bool:
        return True

    # Validation -----------------------------------------------------------
    def validate(self) -> None:
        super().validate()
        self.template.spec.validate()
        if not self.selector.is_empty and not self.selector.matches(self.pod_labels()):
            raise ValidationError(
                f"{self.KIND} {self.name!r}: selector does not match the pod template labels",
                path="spec.selector",
            )

    # Serialization ----------------------------------------------------------
    def spec_to_dict(self) -> dict:
        spec: dict = {
            "replicas": self.replicas,
            "selector": self.selector.to_dict(),
            "template": self.template.to_dict(),
        }
        return {"spec": spec}

    @classmethod
    def from_dict(cls, data: Mapping) -> "Workload":
        spec = data.get("spec") or {}
        return cls(
            metadata=ObjectMeta.from_dict(data.get("metadata")),
            replicas=int(spec.get("replicas", 1)),
            selector=Selector.from_dict(spec.get("selector")),
            template=PodTemplateSpec.from_dict(spec.get("template")),
        )


@dataclass
class Deployment(Workload):
    KIND: ClassVar[str] = "Deployment"


@dataclass
class ReplicaSet(Workload):
    KIND: ClassVar[str] = "ReplicaSet"


@dataclass
class StatefulSet(Workload):
    """StatefulSet additionally names a headless governing service."""

    KIND: ClassVar[str] = "StatefulSet"

    service_name: str = ""

    def spec_to_dict(self) -> dict:
        data = super().spec_to_dict()
        if self.service_name:
            data["spec"]["serviceName"] = self.service_name
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "StatefulSet":
        spec = data.get("spec") or {}
        return cls(
            metadata=ObjectMeta.from_dict(data.get("metadata")),
            replicas=int(spec.get("replicas", 1)),
            selector=Selector.from_dict(spec.get("selector")),
            template=PodTemplateSpec.from_dict(spec.get("template")),
            service_name=spec.get("serviceName", ""),
        )


@dataclass
class DaemonSet(Workload):
    """DaemonSets run one pod per node; ``replicas`` is ignored by Kubernetes
    but kept here so the simulator can size clusters deterministically."""

    KIND: ClassVar[str] = "DaemonSet"

    def spec_to_dict(self) -> dict:
        data = super().spec_to_dict()
        data["spec"].pop("replicas", None)
        return data

    def replica_count(self) -> int:
        # The cluster simulator expands DaemonSets to one pod per worker node;
        # a single replica is used when analysed outside a cluster context.
        return max(1, int(self.replicas))


@dataclass
class Job(Workload):
    KIND: ClassVar[str] = "Job"
    API_VERSION: ClassVar[str] = "batch/v1"

    def validate(self) -> None:
        # Jobs may omit the selector entirely; Kubernetes generates one.
        KubernetesObject.validate(self)
        self.template.spec.validate()


@dataclass
class CronJob(Workload):
    KIND: ClassVar[str] = "CronJob"
    API_VERSION: ClassVar[str] = "batch/v1"

    schedule: str = "0 * * * *"

    def validate(self) -> None:
        KubernetesObject.validate(self)
        self.template.spec.validate()

    def spec_to_dict(self) -> dict:
        return {
            "spec": {
                "schedule": self.schedule,
                "jobTemplate": {
                    "spec": {
                        "template": self.template.to_dict(),
                    }
                },
            }
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "CronJob":
        spec = data.get("spec") or {}
        job_spec = ((spec.get("jobTemplate") or {}).get("spec")) or {}
        return cls(
            metadata=ObjectMeta.from_dict(data.get("metadata")),
            replicas=1,
            selector=Selector(),
            template=PodTemplateSpec.from_dict(job_spec.get("template")),
            schedule=spec.get("schedule", "0 * * * *"),
        )


def is_compute_unit_kind(kind: str) -> bool:
    """Return ``True`` for kinds the analyzer treats as compute units."""
    return kind in COMPUTE_UNIT_KINDS
