"""Containers, container ports, and probes.

The declarative ``containerPort`` list is the central artifact of the paper:
it is purely documentative (Section 3.4), which is the root cause of the M1
and M3 misconfigurations.  The model therefore keeps the declared ports
easily comparable with runtime socket observations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from .errors import ValidationError
from .meta import Sealable

#: Valid layer-4 protocols for container and service ports.
VALID_PROTOCOLS = ("TCP", "UDP", "SCTP")

#: Default Linux ephemeral (dynamic) port range, `ip_local_port_range`.
EPHEMERAL_PORT_RANGE = (32768, 60999)


def validate_port_number(port: int, what: str = "port") -> int:
    """Validate a TCP/UDP port number (1-65535)."""
    if not isinstance(port, int) or isinstance(port, bool) or not 1 <= port <= 65535:
        raise ValidationError(f"invalid {what}: {port!r} (must be 1-65535)")
    return port


def is_ephemeral_port(port: int) -> bool:
    """Return ``True`` when ``port`` falls in the OS dynamic port range."""
    low, high = EPHEMERAL_PORT_RANGE
    return low <= port <= high


@dataclass(frozen=True)
class ContainerPort:
    """A single declared container port."""

    container_port: int
    protocol: str = "TCP"
    name: str = ""
    host_port: int | None = None

    def __post_init__(self) -> None:
        validate_port_number(self.container_port, "containerPort")
        if self.protocol not in VALID_PROTOCOLS:
            raise ValidationError(f"invalid protocol: {self.protocol!r}")
        if self.host_port is not None:
            validate_port_number(self.host_port, "hostPort")

    def to_dict(self) -> dict:
        data: dict = {"containerPort": self.container_port}
        if self.protocol != "TCP":
            data["protocol"] = self.protocol
        if self.name:
            data["name"] = self.name
        if self.host_port is not None:
            data["hostPort"] = self.host_port
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "ContainerPort":
        return cls(
            container_port=int(data["containerPort"]),
            protocol=data.get("protocol", "TCP"),
            name=data.get("name", ""),
            host_port=int(data["hostPort"]) if data.get("hostPort") is not None else None,
        )


@dataclass(frozen=True)
class EnvVar:
    """A container environment variable (used to configure port behaviour)."""

    name: str
    value: str = ""

    def to_dict(self) -> dict:
        return {"name": self.name, "value": self.value}

    @classmethod
    def from_dict(cls, data: Mapping) -> "EnvVar":
        return cls(name=data["name"], value=str(data.get("value", "")))


@dataclass(frozen=True)
class Probe:
    """Liveness/readiness probe; only the port target matters for analysis."""

    port: int | str | None = None
    path: str = ""
    kind: str = "httpGet"

    def to_dict(self) -> dict:
        if self.port is None:
            return {}
        if self.kind == "tcpSocket":
            return {"tcpSocket": {"port": self.port}}
        data: dict = {"httpGet": {"port": self.port}}
        if self.path:
            data["httpGet"]["path"] = self.path
        return data

    @classmethod
    def from_dict(cls, data: Mapping | None) -> "Probe | None":
        if not data:
            return None
        if "httpGet" in data:
            http = data["httpGet"] or {}
            return cls(port=http.get("port"), path=http.get("path", ""), kind="httpGet")
        if "tcpSocket" in data:
            return cls(port=(data["tcpSocket"] or {}).get("port"), kind="tcpSocket")
        return None


@dataclass
class Container(Sealable):
    """A container within a pod template."""

    name: str = ""
    image: str = ""
    ports: list[ContainerPort] = field(default_factory=list)
    env: list[EnvVar] = field(default_factory=list)
    command: list[str] = field(default_factory=list)
    args: list[str] = field(default_factory=list)
    liveness_probe: Probe | None = None
    readiness_probe: Probe | None = None

    def declared_ports(self) -> list[ContainerPort]:
        """Return the declared ports (alias that reads well at call sites)."""
        return list(self.ports)

    def declared_port_numbers(self, protocol: str | None = None) -> set[int]:
        """Return the set of declared port numbers, optionally per protocol."""
        return {
            port.container_port
            for port in self.ports
            if protocol is None or port.protocol == protocol
        }

    def port_named(self, name: str) -> ContainerPort | None:
        """Look up a declared port by its symbolic name."""
        for port in self.ports:
            if port.name == name:
                return port
        return None

    def env_value(self, name: str, default: str = "") -> str:
        """Return the value of an environment variable, or ``default``."""
        for var in self.env:
            if var.name == name:
                return var.value
        return default

    def validate(self) -> None:
        if not self.name:
            raise ValidationError("container name is required", path="spec.containers[].name")
        seen_names: set[str] = set()
        for port in self.ports:
            if port.name:
                if port.name in seen_names:
                    raise ValidationError(
                        f"duplicate port name {port.name!r} in container {self.name!r}"
                    )
                seen_names.add(port.name)

    def to_dict(self) -> dict:
        data: dict = {"name": self.name, "image": self.image}
        if self.command:
            data["command"] = list(self.command)
        if self.args:
            data["args"] = list(self.args)
        if self.ports:
            data["ports"] = [port.to_dict() for port in self.ports]
        if self.env:
            data["env"] = [var.to_dict() for var in self.env]
        if self.liveness_probe and self.liveness_probe.port is not None:
            data["livenessProbe"] = self.liveness_probe.to_dict()
        if self.readiness_probe and self.readiness_probe.port is not None:
            data["readinessProbe"] = self.readiness_probe.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "Container":
        return cls(
            name=data.get("name", ""),
            image=data.get("image", ""),
            ports=[ContainerPort.from_dict(entry) for entry in data.get("ports") or ()],
            env=[EnvVar.from_dict(entry) for entry in data.get("env") or ()],
            command=list(data.get("command") or ()),
            args=list(data.get("args") or ()),
            liveness_probe=Probe.from_dict(data.get("livenessProbe")),
            readiness_probe=Probe.from_dict(data.get("readinessProbe")),
        )
