"""Object metadata and the base class shared by every Kubernetes resource.

Besides the plain dataclasses, this module provides the *sealing* substrate
behind content interning (:mod:`repro.k8s.inventory`): a sealed object (and
its sealed sub-structures) rejects attribute assignment, which is what makes
it safe to share one typed object graph between every render-cache entry and
inventory that observed the same manifest content.  ``copy.deepcopy`` of a
sealed object deliberately produces a *thawed* (mutable) copy -- that is the
sanctioned way to obtain a patchable variant (the mitigation engine relies
on it).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, ClassVar, Mapping

from .errors import ImmutableObjectError, ValidationError
from .labels import LabelSet

#: RFC 1123 DNS label used for object and namespace names.
_DNS_LABEL_RE = re.compile(r"^[a-z0-9]([a-z0-9-]{0,61}[a-z0-9])?$")
#: RFC 1123 DNS subdomain (allows dots) used for most resource names.
_DNS_SUBDOMAIN_RE = re.compile(r"^[a-z0-9]([a-z0-9.-]{0,251}[a-z0-9])?$")

DEFAULT_NAMESPACE = "default"


class Sealable:
    """Opt-in immutability: after :meth:`_seal_self`, assignments raise.

    The flag lives as a class attribute default so unsealed instances pay a
    single class-dict lookup per assignment and never an exception.  Sealing
    sets an instance attribute through ``object.__setattr__``, bypassing the
    guard.  Pickling and default ``copy`` preserve the seal (they restore
    ``__dict__`` directly); :meth:`__deepcopy__` thaws, so deep copies are
    ordinary mutable objects again.
    """

    _sealed: ClassVar[bool] = False

    def __setattr__(self, name: str, value: Any) -> None:
        if self._sealed:
            raise ImmutableObjectError(
                f"{type(self).__name__} is sealed (content-interned); "
                f"cannot assign {name!r} -- deepcopy it to get a mutable variant"
            )
        object.__setattr__(self, name, value)

    def _seal_self(self) -> None:
        object.__setattr__(self, "_sealed", True)

    def __deepcopy__(self, memo: dict):
        import copy as _copy

        cls = type(self)
        clone = cls.__new__(cls)
        memo[id(self)] = clone
        for key, value in self.__dict__.items():
            if key in ("_sealed", "_validated"):
                continue
            object.__setattr__(clone, key, _copy.deepcopy(value, memo))
        return clone


#: Names that already passed validation -- object and namespace names repeat
#: across renders (and namespaces across whole catalogues), so the regex
#: checks on every ``ObjectMeta`` construction are memoized.  Only valid
#: strings enter the memo; the cap bounds adversarial growth.
_VALID_DNS_LABELS: set[str] = set()
_VALID_DNS_SUBDOMAINS: set[str] = set()
_VALIDATION_MEMO_MAX = 16384


def validate_dns_label(value: str, what: str = "name") -> str:
    """Validate an RFC 1123 DNS label (no dots), as used for namespaces."""
    if isinstance(value, str) and value in _VALID_DNS_LABELS:
        return value
    if not isinstance(value, str) or not _DNS_LABEL_RE.match(value):
        raise ValidationError(f"invalid {what}: {value!r} (must be an RFC 1123 DNS label)")
    if len(_VALID_DNS_LABELS) < _VALIDATION_MEMO_MAX:
        _VALID_DNS_LABELS.add(value)
    return value


def validate_dns_subdomain(value: str, what: str = "name") -> str:
    """Validate an RFC 1123 DNS subdomain, as used for most object names."""
    if isinstance(value, str) and value in _VALID_DNS_SUBDOMAINS:
        return value
    if not isinstance(value, str) or not _DNS_SUBDOMAIN_RE.match(value):
        raise ValidationError(
            f"invalid {what}: {value!r} (must be an RFC 1123 DNS subdomain)"
        )
    if len(_VALID_DNS_SUBDOMAINS) < _VALIDATION_MEMO_MAX:
        _VALID_DNS_SUBDOMAINS.add(value)
    return value


@dataclass
class ObjectMeta(Sealable):
    """Subset of ``metadata`` relevant to network misconfiguration analysis."""

    name: str = ""
    namespace: str = DEFAULT_NAMESPACE
    labels: LabelSet = field(default_factory=LabelSet)
    annotations: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.name:
            validate_dns_subdomain(self.name)
        if self.namespace:
            validate_dns_label(self.namespace, "namespace")
        if not isinstance(self.labels, LabelSet):
            self.labels = LabelSet(self.labels or {})
        self.annotations = dict(self.annotations or {})

    def to_dict(self) -> dict:
        data: dict = {"name": self.name}
        if self.namespace and self.namespace != DEFAULT_NAMESPACE:
            data["namespace"] = self.namespace
        if self.labels:
            data["labels"] = self.labels.to_dict()
        if self.annotations:
            data["annotations"] = dict(self.annotations)
        return data

    @classmethod
    def from_dict(cls, data: Mapping | None) -> "ObjectMeta":
        data = data or {}
        return cls(
            name=data.get("name", ""),
            namespace=data.get("namespace") or DEFAULT_NAMESPACE,
            labels=LabelSet(data.get("labels") or {}),
            annotations=dict(data.get("annotations") or {}),
        )


@dataclass
class KubernetesObject(Sealable):
    """Base class for every modelled Kubernetes resource.

    Subclasses set the class attributes :attr:`KIND` and :attr:`API_VERSION`
    and implement :meth:`spec_to_dict` / :meth:`spec_from_dict`.
    """

    KIND: ClassVar[str] = ""
    API_VERSION: ClassVar[str] = "v1"
    NAMESPACED: ClassVar[bool] = True
    #: Set (per instance) after a successful :meth:`validate` on a sealed
    #: object; lets warm observation paths skip re-validating shared objects.
    _validated: ClassVar[bool] = False

    metadata: ObjectMeta = field(default_factory=ObjectMeta)

    # Identity -----------------------------------------------------------
    @property
    def kind(self) -> str:
        return self.KIND

    @property
    def name(self) -> str:
        return self.metadata.name

    @property
    def namespace(self) -> str:
        return self.metadata.namespace

    @property
    def labels(self) -> LabelSet:
        return self.metadata.labels

    @property
    def key(self) -> tuple[str, str, str]:
        """A cluster-unique identity tuple ``(kind, namespace, name)``."""
        namespace = self.namespace if self.NAMESPACED else ""
        return (self.KIND, namespace, self.name)

    def qualified_name(self) -> str:
        """A human-readable ``kind/namespace/name`` identifier."""
        if self.NAMESPACED:
            return f"{self.KIND}/{self.namespace}/{self.name}"
        return f"{self.KIND}/{self.name}"

    # Serialization -------------------------------------------------------
    def spec_to_dict(self) -> dict:
        """Serialize everything below ``metadata``; overridden by subclasses."""
        return {}

    def to_dict(self) -> dict:
        """Serialize the object to an API-style dictionary."""
        data = {
            "apiVersion": self.API_VERSION,
            "kind": self.KIND,
            "metadata": self.metadata.to_dict(),
        }
        data.update(self.spec_to_dict())
        return data

    def validate(self) -> None:
        """Run structural validation; subclasses extend this."""
        if not self.metadata.name:
            raise ValidationError("metadata.name is required", path="metadata.name")

    def validate_cached(self) -> None:
        """:meth:`validate`, memoized on sealed objects.

        A sealed object cannot change after a successful validation, so the
        result is recorded once and every later call returns immediately --
        this is what lets warm render-cache hits skip the observation path's
        validation walk.  Unsealed objects always re-validate (they may have
        been mutated since the last call).
        """
        if self._validated:
            return
        self.validate()
        if self._sealed:
            object.__setattr__(self, "_validated", True)

    # Sealing --------------------------------------------------------------
    def seal(self) -> "KubernetesObject":
        """Make this object (and its sealable sub-structures) immutable.

        Walks the instance's attributes -- including list payloads such as
        ``spec.containers`` -- and seals every :class:`Sealable` it finds,
        recursively (metadata, pod specs, embedded templates, containers).
        Dict payloads (a ``GenericObject``'s raw manifest tree,
        annotations) hold only plain data and stay untouched.  Note that
        sealing guards *attribute assignment*; list contents themselves
        (e.g. appending to ``container.ports``) are guarded by convention
        only.  Returns ``self`` for chaining.  Sealing is one-way: use
        ``copy.deepcopy`` to obtain a thawed copy.
        """
        _seal_tree(self)
        return self


def _seal_tree(node: "Sealable") -> None:
    if node._sealed:
        return
    node._seal_self()
    for value in vars(node).values():
        if isinstance(value, Sealable):
            _seal_tree(value)
        elif type(value) is list or type(value) is tuple:
            for item in value:
                if isinstance(item, Sealable):
                    _seal_tree(item)
