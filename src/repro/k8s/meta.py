"""Object metadata and the base class shared by every Kubernetes resource."""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import ClassVar, Mapping

from .errors import ValidationError
from .labels import LabelSet

#: RFC 1123 DNS label used for object and namespace names.
_DNS_LABEL_RE = re.compile(r"^[a-z0-9]([a-z0-9-]{0,61}[a-z0-9])?$")
#: RFC 1123 DNS subdomain (allows dots) used for most resource names.
_DNS_SUBDOMAIN_RE = re.compile(r"^[a-z0-9]([a-z0-9.-]{0,251}[a-z0-9])?$")

DEFAULT_NAMESPACE = "default"


def validate_dns_label(value: str, what: str = "name") -> str:
    """Validate an RFC 1123 DNS label (no dots), as used for namespaces."""
    if not isinstance(value, str) or not _DNS_LABEL_RE.match(value):
        raise ValidationError(f"invalid {what}: {value!r} (must be an RFC 1123 DNS label)")
    return value


def validate_dns_subdomain(value: str, what: str = "name") -> str:
    """Validate an RFC 1123 DNS subdomain, as used for most object names."""
    if not isinstance(value, str) or not _DNS_SUBDOMAIN_RE.match(value):
        raise ValidationError(
            f"invalid {what}: {value!r} (must be an RFC 1123 DNS subdomain)"
        )
    return value


@dataclass
class ObjectMeta:
    """Subset of ``metadata`` relevant to network misconfiguration analysis."""

    name: str = ""
    namespace: str = DEFAULT_NAMESPACE
    labels: LabelSet = field(default_factory=LabelSet)
    annotations: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.name:
            validate_dns_subdomain(self.name)
        if self.namespace:
            validate_dns_label(self.namespace, "namespace")
        if not isinstance(self.labels, LabelSet):
            self.labels = LabelSet(self.labels or {})
        self.annotations = dict(self.annotations or {})

    def to_dict(self) -> dict:
        data: dict = {"name": self.name}
        if self.namespace and self.namespace != DEFAULT_NAMESPACE:
            data["namespace"] = self.namespace
        if self.labels:
            data["labels"] = self.labels.to_dict()
        if self.annotations:
            data["annotations"] = dict(self.annotations)
        return data

    @classmethod
    def from_dict(cls, data: Mapping | None) -> "ObjectMeta":
        data = data or {}
        return cls(
            name=data.get("name", ""),
            namespace=data.get("namespace") or DEFAULT_NAMESPACE,
            labels=LabelSet(data.get("labels") or {}),
            annotations=dict(data.get("annotations") or {}),
        )


@dataclass
class KubernetesObject:
    """Base class for every modelled Kubernetes resource.

    Subclasses set the class attributes :attr:`KIND` and :attr:`API_VERSION`
    and implement :meth:`spec_to_dict` / :meth:`spec_from_dict`.
    """

    KIND: ClassVar[str] = ""
    API_VERSION: ClassVar[str] = "v1"
    NAMESPACED: ClassVar[bool] = True

    metadata: ObjectMeta = field(default_factory=ObjectMeta)

    # Identity -----------------------------------------------------------
    @property
    def kind(self) -> str:
        return self.KIND

    @property
    def name(self) -> str:
        return self.metadata.name

    @property
    def namespace(self) -> str:
        return self.metadata.namespace

    @property
    def labels(self) -> LabelSet:
        return self.metadata.labels

    @property
    def key(self) -> tuple[str, str, str]:
        """A cluster-unique identity tuple ``(kind, namespace, name)``."""
        namespace = self.namespace if self.NAMESPACED else ""
        return (self.KIND, namespace, self.name)

    def qualified_name(self) -> str:
        """A human-readable ``kind/namespace/name`` identifier."""
        if self.NAMESPACED:
            return f"{self.KIND}/{self.namespace}/{self.name}"
        return f"{self.KIND}/{self.name}"

    # Serialization -------------------------------------------------------
    def spec_to_dict(self) -> dict:
        """Serialize everything below ``metadata``; overridden by subclasses."""
        return {}

    def to_dict(self) -> dict:
        """Serialize the object to an API-style dictionary."""
        data = {
            "apiVersion": self.API_VERSION,
            "kind": self.KIND,
            "metadata": self.metadata.to_dict(),
        }
        data.update(self.spec_to_dict())
        return data

    def validate(self) -> None:
        """Run structural validation; subclasses extend this."""
        if not self.metadata.name:
            raise ValidationError("metadata.name is required", path="metadata.name")
