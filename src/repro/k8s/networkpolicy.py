"""NetworkPolicy resources and their evaluation semantics.

The model follows the Kubernetes semantics relevant to the paper:

* a policy *selects* pods via ``spec.podSelector`` (empty selector = all pods
  in the namespace);
* once a pod is selected by at least one policy with an ``Ingress`` policy
  type, only traffic matching some ingress rule of some selecting policy is
  allowed (default-deny for the selected direction);
* pods not selected by any policy accept all traffic (the Kubernetes
  default "allow all" that motivates M6);
* ``hostNetwork`` pods escape policy enforcement entirely (M7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Mapping

from .container import validate_port_number
from .errors import ValidationError
from .labels import Selector
from .meta import KubernetesObject, ObjectMeta, Sealable

POLICY_TYPES = ("Ingress", "Egress")


@dataclass(frozen=True)
class NetworkPolicyPort:
    """A port (or port range) allowed by a policy rule."""

    port: int | str | None = None
    end_port: int | None = None
    protocol: str = "TCP"

    def __post_init__(self) -> None:
        if isinstance(self.port, int):
            validate_port_number(self.port, "policy port")
        if self.end_port is not None:
            validate_port_number(self.end_port, "endPort")
            if not isinstance(self.port, int) or self.end_port < self.port:
                raise ValidationError("endPort requires a numeric port lower than endPort")

    def matches(self, port: int, protocol: str = "TCP", named_ports: Mapping[str, int] | None = None) -> bool:
        """Return ``True`` when a concrete ``port/protocol`` is allowed."""
        if protocol != self.protocol:
            return False
        if self.port is None:
            return True
        target = self.port
        if isinstance(target, str):
            target = (named_ports or {}).get(target)
            if target is None:
                return False
        if self.end_port is not None:
            return target <= port <= self.end_port
        return port == target

    def to_dict(self) -> dict:
        data: dict = {}
        if self.port is not None:
            data["port"] = self.port
        if self.end_port is not None:
            data["endPort"] = self.end_port
        if self.protocol != "TCP":
            data["protocol"] = self.protocol
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "NetworkPolicyPort":
        port = data.get("port")
        if isinstance(port, str) and port.isdigit():
            port = int(port)
        return cls(
            port=port,
            end_port=int(data["endPort"]) if data.get("endPort") is not None else None,
            protocol=data.get("protocol", "TCP"),
        )


@dataclass(frozen=True)
class NetworkPolicyPeer:
    """A traffic source/destination in a policy rule."""

    pod_selector: Selector | None = None
    namespace_selector: Selector | None = None
    ip_block: str = ""

    def matches_pod(
        self,
        pod_labels: Mapping[str, str],
        pod_namespace: str,
        policy_namespace: str,
        namespace_labels: Mapping[str, str] | None = None,
    ) -> bool:
        """Evaluate whether a peer pod matches this rule entry."""
        if self.ip_block:
            # IP blocks never match in-cluster pod traffic in this model.
            return False
        if self.namespace_selector is not None:
            if not self.namespace_selector.matches(namespace_labels or {}):
                return False
            if self.pod_selector is None:
                return True
            return self.pod_selector.matches(pod_labels)
        # Without a namespace selector the peer is restricted to the policy's
        # own namespace.
        if pod_namespace != policy_namespace:
            return False
        if self.pod_selector is None:
            return True
        return self.pod_selector.matches(pod_labels)

    def to_dict(self) -> dict:
        data: dict = {}
        if self.pod_selector is not None:
            data["podSelector"] = self.pod_selector.to_dict()
        if self.namespace_selector is not None:
            data["namespaceSelector"] = self.namespace_selector.to_dict()
        if self.ip_block:
            data["ipBlock"] = {"cidr": self.ip_block}
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "NetworkPolicyPeer":
        return cls(
            pod_selector=Selector.from_dict(data["podSelector"]) if "podSelector" in data else None,
            namespace_selector=(
                Selector.from_dict(data["namespaceSelector"])
                if "namespaceSelector" in data
                else None
            ),
            ip_block=((data.get("ipBlock") or {}).get("cidr", "")),
        )


@dataclass
class NetworkPolicyRule(Sealable):
    """One ingress or egress rule: a set of peers and a set of ports.

    Empty ``peers`` means *all peers*; empty ``ports`` means *all ports*.
    """

    peers: list[NetworkPolicyPeer] = field(default_factory=list)
    ports: list[NetworkPolicyPort] = field(default_factory=list)

    def allows(
        self,
        peer_labels: Mapping[str, str],
        peer_namespace: str,
        policy_namespace: str,
        port: int,
        protocol: str = "TCP",
        named_ports: Mapping[str, int] | None = None,
        namespace_labels: Mapping[str, str] | None = None,
    ) -> bool:
        peer_ok = not self.peers or any(
            peer.matches_pod(peer_labels, peer_namespace, policy_namespace, namespace_labels)
            for peer in self.peers
        )
        if not peer_ok:
            return False
        return not self.ports or any(
            rule_port.matches(port, protocol, named_ports) for rule_port in self.ports
        )

    def to_dict(self, direction: str = "ingress") -> dict:
        key = "from" if direction == "ingress" else "to"
        data: dict = {}
        if self.peers:
            data[key] = [peer.to_dict() for peer in self.peers]
        if self.ports:
            data["ports"] = [port.to_dict() for port in self.ports]
        return data

    @classmethod
    def from_dict(cls, data: Mapping, direction: str = "ingress") -> "NetworkPolicyRule":
        key = "from" if direction == "ingress" else "to"
        return cls(
            peers=[NetworkPolicyPeer.from_dict(entry) for entry in data.get(key) or ()],
            ports=[NetworkPolicyPort.from_dict(entry) for entry in data.get("ports") or ()],
        )


@dataclass
class NetworkPolicy(KubernetesObject):
    """A ``networking.k8s.io/v1`` NetworkPolicy."""

    KIND: ClassVar[str] = "NetworkPolicy"
    API_VERSION: ClassVar[str] = "networking.k8s.io/v1"

    pod_selector: Selector = field(default_factory=Selector)
    policy_types: list[str] = field(default_factory=lambda: ["Ingress"])
    ingress: list[NetworkPolicyRule] = field(default_factory=list)
    egress: list[NetworkPolicyRule] = field(default_factory=list)

    def selects(self, pod_labels: Mapping[str, str], pod_namespace: str) -> bool:
        """Whether the policy applies to a pod (namespace + selector match)."""
        if pod_namespace != self.namespace:
            return False
        return self.pod_selector.matches(pod_labels)

    def selection_match_items(self) -> frozenset[tuple[str, str]] | None:
        """Hashable equality key of ``spec.podSelector`` (``None`` = general).

        A frozenset of ``(key, value)`` pairs when the selector uses only
        ``matchLabels`` (the empty frozenset therefore means "every pod in the
        namespace"); ``None`` when ``matchExpressions`` force a full
        :meth:`Selector.matches` evaluation.  Consumed by the compiled policy
        index to turn per-connection selector scans into subset tests.
        """
        return self.pod_selector.as_match_items()

    def restricts_ingress(self) -> bool:
        return "Ingress" in self.policy_types

    def restricts_egress(self) -> bool:
        return "Egress" in self.policy_types

    def allows_ingress(
        self,
        peer_labels: Mapping[str, str],
        peer_namespace: str,
        port: int,
        protocol: str = "TCP",
        named_ports: Mapping[str, int] | None = None,
        namespace_labels: Mapping[str, str] | None = None,
    ) -> bool:
        """Whether *some* ingress rule of this policy allows the connection."""
        return any(
            rule.allows(
                peer_labels,
                peer_namespace,
                self.namespace,
                port,
                protocol,
                named_ports,
                namespace_labels,
            )
            for rule in self.ingress
        )

    def validate(self) -> None:
        super().validate()
        for policy_type in self.policy_types:
            if policy_type not in POLICY_TYPES:
                raise ValidationError(f"invalid policyType: {policy_type!r}", path="spec.policyTypes")

    def spec_to_dict(self) -> dict:
        spec: dict = {
            "podSelector": self.pod_selector.to_dict(),
            "policyTypes": list(self.policy_types),
        }
        if self.ingress:
            spec["ingress"] = [rule.to_dict("ingress") for rule in self.ingress]
        if self.egress:
            spec["egress"] = [rule.to_dict("egress") for rule in self.egress]
        return {"spec": spec}

    @classmethod
    def from_dict(cls, data: Mapping) -> "NetworkPolicy":
        spec = data.get("spec") or {}
        policy_types = list(spec.get("policyTypes") or [])
        if not policy_types:
            policy_types = ["Ingress"]
            if spec.get("egress"):
                policy_types.append("Egress")
        return cls(
            metadata=ObjectMeta.from_dict(data.get("metadata")),
            pod_selector=Selector.from_dict(spec.get("podSelector")),
            policy_types=policy_types,
            ingress=[
                NetworkPolicyRule.from_dict(entry, "ingress") for entry in spec.get("ingress") or ()
            ],
            egress=[
                NetworkPolicyRule.from_dict(entry, "egress") for entry in spec.get("egress") or ()
            ],
        )


def deny_all_policy(name: str, namespace: str = "default") -> NetworkPolicy:
    """Build the canonical default-deny ingress policy for a namespace."""
    return NetworkPolicy(
        metadata=ObjectMeta(name=name, namespace=namespace),
        pod_selector=Selector(),
        policy_types=["Ingress"],
        ingress=[],
    )


def allow_ports_policy(
    name: str,
    selector: Selector,
    ports: list[int],
    namespace: str = "default",
    peer_selector: Selector | None = None,
) -> NetworkPolicy:
    """Build a policy that allows ingress to ``ports`` of the selected pods."""
    rule = NetworkPolicyRule(
        peers=[NetworkPolicyPeer(pod_selector=peer_selector)] if peer_selector else [],
        ports=[NetworkPolicyPort(port=port) for port in ports],
    )
    return NetworkPolicy(
        metadata=ObjectMeta(name=name, namespace=namespace),
        pod_selector=selector,
        policy_types=["Ingress"],
        ingress=[rule],
    )
