"""Label and selector semantics.

Kubernetes identifies and groups objects through string key/value *labels*
and matches them with *selectors*.  Label collisions between unrelated
resources are the root cause of the M4 misconfiguration family in the paper
(Section 3.3), so this module implements the matching semantics carefully
and exposes helpers used by the analyzer:

* :class:`LabelSet` -- validated, immutable mapping of labels.
* :class:`Selector` -- ``matchLabels`` + ``matchExpressions`` selector with
  the same matching rules as the Kubernetes API server.
* :func:`equality_selector` / :func:`parse_selector` -- convenience
  constructors.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from collections.abc import Mapping
from typing import Iterable, Iterator, Sequence

from .errors import SelectorError, ValidationError

# Kubernetes label keys are `[prefix/]name` where the name part is at most 63
# characters of alphanumerics, '-', '_' or '.', starting and ending with an
# alphanumeric.  The optional prefix is a DNS subdomain.
_NAME_RE = re.compile(r"^[A-Za-z0-9]([A-Za-z0-9._-]{0,61}[A-Za-z0-9])?$")
_PREFIX_RE = re.compile(r"^[a-z0-9]([a-z0-9.-]{0,251}[a-z0-9])?$")
_VALUE_RE = re.compile(r"^$|^[A-Za-z0-9]([A-Za-z0-9._-]{0,61}[A-Za-z0-9])?$")

#: Operators accepted in ``matchExpressions`` entries.
VALID_OPERATORS = ("In", "NotIn", "Exists", "DoesNotExist")


#: Memo of strings that already passed key/value validation.  Label keys and
#: values repeat enormously across a catalogue (``app.kubernetes.io/name``
#: appears on nearly every object), and the regex checks dominate LabelSet
#: construction on the cold render path.  Only *valid* strings are memoized,
#: so the error behaviour is unchanged; the caps bound adversarial growth.
_VALID_KEYS: set[str] = set()
_VALID_VALUES: set[str] = set()
_VALIDATION_MEMO_MAX = 16384


def validate_label_key(key: str) -> str:
    """Validate a label key and return it unchanged.

    Raises :class:`ValidationError` when the key does not follow the
    Kubernetes ``[prefix/]name`` grammar.
    """
    if isinstance(key, str) and key in _VALID_KEYS:
        return key
    if not isinstance(key, str) or not key:
        raise ValidationError("label key must be a non-empty string")
    prefix, _, name = key.rpartition("/")
    if prefix and not _PREFIX_RE.match(prefix):
        raise ValidationError(f"invalid label key prefix: {prefix!r}")
    if not _NAME_RE.match(name):
        raise ValidationError(f"invalid label key name: {name!r}")
    if len(_VALID_KEYS) < _VALIDATION_MEMO_MAX:
        _VALID_KEYS.add(key)
    return key


def validate_label_value(value: str) -> str:
    """Validate a label value and return it unchanged."""
    if isinstance(value, str) and value in _VALID_VALUES:
        return value
    if not isinstance(value, str):
        raise ValidationError("label value must be a string")
    if not _VALUE_RE.match(value):
        raise ValidationError(f"invalid label value: {value!r}")
    if len(_VALID_VALUES) < _VALIDATION_MEMO_MAX:
        _VALID_VALUES.add(value)
    return value


class LabelSet(Mapping[str, str]):
    """An immutable, validated set of Kubernetes labels.

    Behaves like a read-only mapping and supports hashing so label sets can
    be used as dictionary keys when grouping compute units by identical
    labels (M4A detection).
    """

    __slots__ = ("_labels", "_hash", "_items")

    def __init__(self, labels: Mapping[str, str] | None = None) -> None:
        if type(labels) is LabelSet:
            # Already validated: share the backing dict (label sets are
            # read-only), skipping the per-label regex work.
            self._labels: dict[str, str] = labels._labels
            self._hash: int | None = labels._hash
            self._items: frozenset | None = labels._items
            return
        items = {}
        for key, value in (labels or {}).items():
            items[validate_label_key(key)] = validate_label_value(str(value))
        self._labels = items
        self._hash = None
        self._items = None

    # Mapping interface -------------------------------------------------
    def __getitem__(self, key: str) -> str:
        return self._labels[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._labels)

    def __len__(self) -> int:
        return len(self._labels)

    def item_set(self) -> frozenset:
        """The labels as a hashable ``frozenset`` of ``(key, value)`` pairs.

        Memoized: this is the subset-test currency of every selector index
        (inventory, policy index, cluster-wide pass).
        """
        cached = self._items
        if cached is None:
            cached = frozenset(self._labels.items())
            self._items = cached
        return cached

    def __hash__(self) -> int:
        # Memoized: label sets are immutable and the M4 grouping passes hash
        # every compute unit's labels once per analysis.
        cached = self._hash
        if cached is None:
            cached = hash(self.item_set())
            self._hash = cached
        return cached

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LabelSet):
            return self._labels == other._labels
        if isinstance(other, Mapping):
            return self._labels == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._labels.items()))
        return f"LabelSet({inner})"

    # Convenience helpers ------------------------------------------------
    def merged(self, other: Mapping[str, str]) -> "LabelSet":
        """Return a new label set with ``other`` layered on top of this one."""
        combined = dict(self._labels)
        combined.update(other)
        return LabelSet(combined)

    def subset_of(self, other: Mapping[str, str]) -> bool:
        """Return ``True`` when every label in this set appears in ``other``."""
        return all(other.get(key) == value for key, value in self._labels.items())

    def shared_with(self, other: Mapping[str, str]) -> dict[str, str]:
        """Return the labels (key and value) common to both sets."""
        return {
            key: value
            for key, value in self._labels.items()
            if other.get(key) == value
        }

    def to_dict(self) -> dict[str, str]:
        """Return a plain mutable dictionary copy of the labels."""
        return dict(self._labels)


@dataclass(frozen=True)
class LabelSelectorRequirement:
    """A single ``matchExpressions`` entry."""

    key: str
    operator: str
    values: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        validate_label_key(self.key)
        if self.operator not in VALID_OPERATORS:
            raise SelectorError(f"invalid selector operator: {self.operator!r}")
        if self.operator in ("In", "NotIn") and not self.values:
            raise SelectorError(f"operator {self.operator} requires values")
        if self.operator in ("Exists", "DoesNotExist") and self.values:
            raise SelectorError(f"operator {self.operator} must not have values")

    def matches(self, labels: Mapping[str, str]) -> bool:
        """Evaluate this requirement against a label mapping."""
        present = self.key in labels
        if self.operator == "Exists":
            return present
        if self.operator == "DoesNotExist":
            return not present
        if self.operator == "In":
            return present and labels[self.key] in self.values
        # NotIn: absent keys match, present keys must not hold a listed value.
        return not present or labels[self.key] not in self.values

    def to_dict(self) -> dict:
        data: dict = {"key": self.key, "operator": self.operator}
        if self.values:
            data["values"] = list(self.values)
        return data


@dataclass(frozen=True)
class Selector:
    """A Kubernetes label selector (``matchLabels`` + ``matchExpressions``).

    An *empty* selector is meaningful: for services it selects nothing
    (selector-less service), while for network policies an empty
    ``podSelector`` selects every pod in the namespace.  Callers decide which
    interpretation applies; :meth:`matches` implements the conjunction of all
    requirements and :attr:`is_empty` reports emptiness.
    """

    match_labels: LabelSet = field(default_factory=LabelSet)
    match_expressions: tuple[LabelSelectorRequirement, ...] = ()

    @property
    def is_empty(self) -> bool:
        """``True`` when the selector has no requirements at all."""
        return not self.match_labels and not self.match_expressions

    def matches(self, labels: Mapping[str, str] | None) -> bool:
        """Return ``True`` if ``labels`` satisfy every requirement."""
        labels = labels or {}
        for key, value in self.match_labels.items():
            if labels.get(key) != value:
                return False
        return all(req.matches(labels) for req in self.match_expressions)

    def as_match_items(self) -> frozenset[tuple[str, str]] | None:
        """Flatten the selector into a hashable equality-match key.

        Returns a frozenset of ``(key, value)`` pairs when the selector is a
        pure ``matchLabels`` selector: the selector matches a label mapping
        ``L`` iff the returned set is a subset of ``frozenset(L.items())``.
        Returns ``None`` when ``matchExpressions`` are present and the full
        :meth:`matches` evaluation is required.  The compiled policy engine
        (:mod:`repro.cluster.policy_index`) uses this to replace repeated
        selector evaluation with subset tests on pre-hashed label sets.
        """
        if self.match_expressions:
            return None
        labels = self.match_labels
        if type(labels) is LabelSet:
            return labels.item_set()
        # Hand-built selectors may carry a plain mapping.
        return frozenset(labels.items())

    def requirement_keys(self) -> set[str]:
        """Return every label key referenced by the selector."""
        keys = set(self.match_labels)
        keys.update(req.key for req in self.match_expressions)
        return keys

    def to_dict(self) -> dict:
        data: dict = {}
        if self.match_labels:
            data["matchLabels"] = self.match_labels.to_dict()
        if self.match_expressions:
            data["matchExpressions"] = [req.to_dict() for req in self.match_expressions]
        return data

    @classmethod
    def from_dict(cls, data: Mapping | None) -> "Selector":
        """Build a selector from an API-style dictionary.

        Accepts both the modern ``{matchLabels, matchExpressions}`` shape and
        the legacy bare mapping used by ``Service.spec.selector``.
        """
        if not data:
            return cls()
        if "matchLabels" in data or "matchExpressions" in data:
            labels = LabelSet(data.get("matchLabels") or {})
            expressions = tuple(
                LabelSelectorRequirement(
                    key=entry["key"],
                    operator=entry["operator"],
                    values=tuple(entry.get("values") or ()),
                )
                for entry in data.get("matchExpressions") or ()
            )
            return cls(match_labels=labels, match_expressions=expressions)
        # Legacy equality-based selector: a plain map of labels.
        return cls(match_labels=LabelSet(data))


def equality_selector(**labels: str) -> Selector:
    """Build a selector that requires each keyword argument as an exact label."""
    return Selector(match_labels=LabelSet(labels))


def parse_selector(data: Mapping | None) -> Selector:
    """Alias of :meth:`Selector.from_dict` kept for readability at call sites."""
    return Selector.from_dict(data)


def find_duplicate_label_sets(
    items: Iterable[tuple[str, Mapping[str, str]]],
) -> list[tuple[LabelSet, list[str]]]:
    """Group item names by identical label sets.

    ``items`` is an iterable of ``(name, labels)`` pairs.  The return value
    lists every label set shared by two or more distinct names -- the exact
    condition behind compute-unit collisions (M4A).
    """
    groups: dict[LabelSet, list[str]] = {}
    for name, labels in items:
        try:
            label_set = LabelSet(labels)
        except ValidationError:
            continue
        if not label_set:
            continue
        groups.setdefault(label_set, []).append(name)
    return [
        (label_set, sorted(set(names)))
        for label_set, names in groups.items()
        if len(set(names)) > 1
    ]


def selectors_overlap(first: Selector, second: Selector, sample: Sequence[Mapping[str, str]]) -> bool:
    """Return ``True`` when both selectors match at least one common label set.

    ``sample`` is the population of label sets to test against (typically the
    labels of every compute unit in the cluster).
    """
    return any(first.matches(labels) and second.matches(labels) for labels in sample)
