"""Supporting resources: Namespace, ConfigMap, Secret, ServiceAccount, RBAC, Ingress.

These resources matter less to the analyzer than compute units and services,
but real Helm charts ship them, so the parser must understand them and the
cluster simulator must store them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Mapping

from .labels import LabelSet
from .meta import KubernetesObject, ObjectMeta


@dataclass
class Namespace(KubernetesObject):
    KIND: ClassVar[str] = "Namespace"
    API_VERSION: ClassVar[str] = "v1"
    NAMESPACED: ClassVar[bool] = False

    @classmethod
    def from_dict(cls, data: Mapping) -> "Namespace":
        return cls(metadata=ObjectMeta.from_dict(data.get("metadata")))


@dataclass
class ConfigMap(KubernetesObject):
    KIND: ClassVar[str] = "ConfigMap"
    API_VERSION: ClassVar[str] = "v1"

    data: dict[str, str] = field(default_factory=dict)

    def spec_to_dict(self) -> dict:
        return {"data": dict(self.data)} if self.data else {}

    @classmethod
    def from_dict(cls, data: Mapping) -> "ConfigMap":
        return cls(
            metadata=ObjectMeta.from_dict(data.get("metadata")),
            data={str(k): str(v) for k, v in (data.get("data") or {}).items()},
        )


@dataclass
class Secret(KubernetesObject):
    KIND: ClassVar[str] = "Secret"
    API_VERSION: ClassVar[str] = "v1"

    data: dict[str, str] = field(default_factory=dict)
    type: str = "Opaque"

    def spec_to_dict(self) -> dict:
        payload: dict = {"type": self.type}
        if self.data:
            payload["data"] = dict(self.data)
        return payload

    @classmethod
    def from_dict(cls, data: Mapping) -> "Secret":
        return cls(
            metadata=ObjectMeta.from_dict(data.get("metadata")),
            data={str(k): str(v) for k, v in (data.get("data") or {}).items()},
            type=data.get("type", "Opaque"),
        )


@dataclass
class ServiceAccount(KubernetesObject):
    KIND: ClassVar[str] = "ServiceAccount"
    API_VERSION: ClassVar[str] = "v1"

    @classmethod
    def from_dict(cls, data: Mapping) -> "ServiceAccount":
        return cls(metadata=ObjectMeta.from_dict(data.get("metadata")))


@dataclass
class Role(KubernetesObject):
    KIND: ClassVar[str] = "Role"
    API_VERSION: ClassVar[str] = "rbac.authorization.k8s.io/v1"

    rules: list[dict] = field(default_factory=list)

    def spec_to_dict(self) -> dict:
        return {"rules": list(self.rules)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "Role":
        return cls(
            metadata=ObjectMeta.from_dict(data.get("metadata")),
            rules=list(data.get("rules") or ()),
        )


@dataclass
class ClusterRole(Role):
    KIND: ClassVar[str] = "ClusterRole"
    NAMESPACED: ClassVar[bool] = False


@dataclass
class RoleBinding(KubernetesObject):
    KIND: ClassVar[str] = "RoleBinding"
    API_VERSION: ClassVar[str] = "rbac.authorization.k8s.io/v1"

    role_ref: dict = field(default_factory=dict)
    subjects: list[dict] = field(default_factory=list)

    def spec_to_dict(self) -> dict:
        return {"roleRef": dict(self.role_ref), "subjects": list(self.subjects)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "RoleBinding":
        return cls(
            metadata=ObjectMeta.from_dict(data.get("metadata")),
            role_ref=dict(data.get("roleRef") or {}),
            subjects=list(data.get("subjects") or ()),
        )


@dataclass
class ClusterRoleBinding(RoleBinding):
    KIND: ClassVar[str] = "ClusterRoleBinding"
    NAMESPACED: ClassVar[bool] = False


@dataclass
class IngressRule:
    """One host/path rule routing to a backend service port."""

    host: str = ""
    path: str = "/"
    service_name: str = ""
    service_port: int | str | None = None

    def to_dict(self) -> dict:
        backend_port: dict = {}
        if isinstance(self.service_port, int):
            backend_port = {"number": self.service_port}
        elif self.service_port:
            backend_port = {"name": self.service_port}
        return {
            "host": self.host,
            "http": {
                "paths": [
                    {
                        "path": self.path,
                        "pathType": "Prefix",
                        "backend": {
                            "service": {"name": self.service_name, "port": backend_port}
                        },
                    }
                ]
            },
        }


@dataclass
class Ingress(KubernetesObject):
    """An HTTP ingress; modelled because it references service ports."""

    KIND: ClassVar[str] = "Ingress"
    API_VERSION: ClassVar[str] = "networking.k8s.io/v1"

    rules: list[IngressRule] = field(default_factory=list)

    def spec_to_dict(self) -> dict:
        return {"spec": {"rules": [rule.to_dict() for rule in self.rules]}}

    @classmethod
    def from_dict(cls, data: Mapping) -> "Ingress":
        rules: list[IngressRule] = []
        for rule in ((data.get("spec") or {}).get("rules")) or ():
            for path in ((rule.get("http") or {}).get("paths")) or ():
                backend = ((path.get("backend") or {}).get("service")) or {}
                port = backend.get("port") or {}
                rules.append(
                    IngressRule(
                        host=rule.get("host", ""),
                        path=path.get("path", "/"),
                        service_name=backend.get("name", ""),
                        service_port=port.get("number") or port.get("name"),
                    )
                )
        return cls(metadata=ObjectMeta.from_dict(data.get("metadata")), rules=rules)


@dataclass
class GenericObject(KubernetesObject):
    """Fallback for kinds we do not model explicitly (CRDs and the like)."""

    KIND: ClassVar[str] = "Generic"

    kind_name: str = "Generic"
    api_version: str = "v1"
    raw: dict = field(default_factory=dict)

    @property
    def kind(self) -> str:  # type: ignore[override]
        return self.kind_name

    @property
    def key(self) -> tuple[str, str, str]:  # type: ignore[override]
        return (self.kind_name, self.namespace, self.name)

    def to_dict(self) -> dict:
        data = dict(self.raw)
        data.setdefault("apiVersion", self.api_version)
        data.setdefault("kind", self.kind_name)
        data.setdefault("metadata", self.metadata.to_dict())
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "GenericObject":
        return cls(
            metadata=ObjectMeta.from_dict(data.get("metadata")),
            kind_name=data.get("kind", "Generic"),
            api_version=data.get("apiVersion", "v1"),
            raw={k: v for k, v in data.items()},
        )


def make_namespace(name: str, labels: Mapping[str, str] | None = None) -> Namespace:
    """Convenience constructor used by the cluster simulator."""
    return Namespace(metadata=ObjectMeta(name=name, namespace="", labels=LabelSet(labels or {})))
