"""Pods and pod templates."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Mapping

from .container import Container
from .errors import ValidationError
from .labels import LabelSet
from .meta import DEFAULT_NAMESPACE, KubernetesObject, ObjectMeta, Sealable


@dataclass
class PodSpec(Sealable):
    """The parts of a pod spec relevant to cluster-internal networking."""

    containers: list[Container] = field(default_factory=list)
    init_containers: list[Container] = field(default_factory=list)
    host_network: bool = False
    dns_policy: str = "ClusterFirst"
    service_account_name: str = ""
    node_name: str = ""

    def all_containers(self) -> list[Container]:
        """Return init containers followed by application containers."""
        return list(self.init_containers) + list(self.containers)

    def declared_port_numbers(self, protocol: str | None = None) -> set[int]:
        """Every port declared by any (non-init) container of the pod."""
        declared: set[int] = set()
        for container in self.containers:
            declared.update(container.declared_port_numbers(protocol))
        return declared

    def container_named(self, name: str) -> Container | None:
        for container in self.all_containers():
            if container.name == name:
                return container
        return None

    def resolve_port_name(self, name: str) -> int | None:
        """Resolve a named container port to its number, if declared."""
        for container in self.containers:
            port = container.port_named(name)
            if port is not None:
                return port.container_port
        return None

    def validate(self) -> None:
        if not self.containers:
            raise ValidationError("a pod requires at least one container", path="spec.containers")
        names = [container.name for container in self.all_containers()]
        if len(names) != len(set(names)):
            raise ValidationError("container names within a pod must be unique")
        for container in self.all_containers():
            container.validate()

    def to_dict(self) -> dict:
        data: dict = {"containers": [container.to_dict() for container in self.containers]}
        if self.init_containers:
            data["initContainers"] = [container.to_dict() for container in self.init_containers]
        if self.host_network:
            data["hostNetwork"] = True
        if self.dns_policy != "ClusterFirst":
            data["dnsPolicy"] = self.dns_policy
        if self.service_account_name:
            data["serviceAccountName"] = self.service_account_name
        if self.node_name:
            data["nodeName"] = self.node_name
        return data

    @classmethod
    def from_dict(cls, data: Mapping | None) -> "PodSpec":
        data = data or {}
        return cls(
            containers=[Container.from_dict(entry) for entry in data.get("containers") or ()],
            init_containers=[
                Container.from_dict(entry) for entry in data.get("initContainers") or ()
            ],
            host_network=bool(data.get("hostNetwork", False)),
            dns_policy=data.get("dnsPolicy", "ClusterFirst"),
            service_account_name=data.get("serviceAccountName", ""),
            node_name=data.get("nodeName", ""),
        )


@dataclass
class PodTemplateSpec(Sealable):
    """The pod template embedded in workload controllers."""

    metadata: ObjectMeta = field(default_factory=ObjectMeta)
    spec: PodSpec = field(default_factory=PodSpec)

    @property
    def labels(self) -> LabelSet:
        return self.metadata.labels

    def to_dict(self) -> dict:
        return {"metadata": self.metadata.to_dict(), "spec": self.spec.to_dict()}

    @classmethod
    def from_dict(cls, data: Mapping | None) -> "PodTemplateSpec":
        data = data or {}
        return cls(
            metadata=ObjectMeta.from_dict(data.get("metadata")),
            spec=PodSpec.from_dict(data.get("spec")),
        )


@dataclass
class Pod(KubernetesObject):
    """A single pod resource."""

    KIND: ClassVar[str] = "Pod"
    API_VERSION: ClassVar[str] = "v1"

    spec: PodSpec = field(default_factory=PodSpec)

    def validate(self) -> None:
        super().validate()
        self.spec.validate()

    def spec_to_dict(self) -> dict:
        return {"spec": self.spec.to_dict()}

    @classmethod
    def from_dict(cls, data: Mapping) -> "Pod":
        return cls(
            metadata=ObjectMeta.from_dict(data.get("metadata")),
            spec=PodSpec.from_dict(data.get("spec")),
        )

    @classmethod
    def from_template(
        cls,
        template: PodTemplateSpec,
        name: str,
        namespace: str = DEFAULT_NAMESPACE,
        extra_labels: Mapping[str, str] | None = None,
    ) -> "Pod":
        """Instantiate a pod from a workload's pod template."""
        labels = template.metadata.labels.merged(extra_labels or {})
        metadata = ObjectMeta(
            name=name,
            namespace=namespace,
            labels=labels,
            annotations=dict(template.metadata.annotations),
        )
        spec = PodSpec.from_dict(template.spec.to_dict())
        return cls(metadata=metadata, spec=spec)
