"""Fastest available YAML load/dump for the render pipeline.

PyYAML ships optional libyaml C bindings (``CSafeLoader``/``CSafeDumper``)
that parse and emit roughly an order of magnitude faster than the pure-Python
classes.  Template evaluation and YAML parsing dominate the catalogue sweep,
so every hot loader in the repository (chart values, rendered manifests,
``toYaml``/``fromYaml`` template functions) goes through this single helper,
which picks the C classes when the extension is compiled in and falls back to
the pure-Python ``SafeLoader``/``SafeDumper`` otherwise.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

import yaml

try:  # pragma: no cover - depends on how PyYAML was built
    _LOADER = yaml.CSafeLoader
    _DUMPER = yaml.CSafeDumper
    USING_LIBYAML = True
except AttributeError:  # pragma: no cover
    _LOADER = yaml.SafeLoader
    _DUMPER = yaml.SafeDumper
    USING_LIBYAML = False


def yaml_load(stream: str) -> Any:
    """``yaml.safe_load`` with the fastest available loader."""
    return yaml.load(stream, Loader=_LOADER)


def yaml_load_all(stream: str) -> Iterator[Any]:
    """``yaml.safe_load_all`` with the fastest available loader."""
    return yaml.load_all(stream, Loader=_LOADER)


def yaml_dump(data: Any, **kwargs: Any) -> str:
    """``yaml.safe_dump`` with the fastest available dumper."""
    return yaml.dump(data, Dumper=_DUMPER, **kwargs)


def yaml_dump_all(documents: Iterable[Any], **kwargs: Any) -> str:
    """``yaml.safe_dump_all`` with the fastest available dumper."""
    return yaml.dump_all(documents, Dumper=_DUMPER, **kwargs)
