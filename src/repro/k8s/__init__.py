"""Kubernetes object model substrate.

A dependency-light, typed model of the Kubernetes resources that matter for
cluster-internal networking: compute units (pods and their controllers),
services, network policies and the supporting objects Helm charts ship with
them.  This is the foundation shared by the Helm renderer, the cluster
simulator, and the misconfiguration analyzer.
"""

from .container import (
    EPHEMERAL_PORT_RANGE,
    Container,
    ContainerPort,
    EnvVar,
    Probe,
    is_ephemeral_port,
    validate_port_number,
)
from .errors import (
    KubernetesModelError,
    ParseError,
    SelectorError,
    UnknownKindError,
    ValidationError,
)
from .inventory import ComputeUnit, Inventory
from .labels import (
    LabelSelectorRequirement,
    LabelSet,
    Selector,
    equality_selector,
    find_duplicate_label_sets,
    parse_selector,
    selectors_overlap,
)
from .meta import DEFAULT_NAMESPACE, KubernetesObject, ObjectMeta
from .misc import (
    ClusterRole,
    ClusterRoleBinding,
    ConfigMap,
    GenericObject,
    Ingress,
    IngressRule,
    Namespace,
    Role,
    RoleBinding,
    Secret,
    ServiceAccount,
    make_namespace,
)
from .networkpolicy import (
    NetworkPolicy,
    NetworkPolicyPeer,
    NetworkPolicyPort,
    NetworkPolicyRule,
    allow_ports_policy,
    deny_all_policy,
)
from .pod import Pod, PodSpec, PodTemplateSpec
from .registry import dump_yaml, known_kinds, load_yaml, object_from_dict, objects_from_dicts
from .service import EndpointAddress, Endpoints, Service, ServicePort
from .yamlio import USING_LIBYAML, yaml_dump, yaml_dump_all, yaml_load, yaml_load_all
from .workloads import (
    COMPUTE_UNIT_KINDS,
    CronJob,
    DaemonSet,
    Deployment,
    Job,
    ReplicaSet,
    StatefulSet,
    Workload,
    is_compute_unit_kind,
)

__all__ = [
    "COMPUTE_UNIT_KINDS",
    "DEFAULT_NAMESPACE",
    "EPHEMERAL_PORT_RANGE",
    "ClusterRole",
    "ClusterRoleBinding",
    "ComputeUnit",
    "ConfigMap",
    "Container",
    "ContainerPort",
    "CronJob",
    "DaemonSet",
    "Deployment",
    "EndpointAddress",
    "Endpoints",
    "EnvVar",
    "GenericObject",
    "Ingress",
    "IngressRule",
    "Inventory",
    "Job",
    "KubernetesModelError",
    "KubernetesObject",
    "LabelSelectorRequirement",
    "LabelSet",
    "Namespace",
    "NetworkPolicy",
    "NetworkPolicyPeer",
    "NetworkPolicyPort",
    "NetworkPolicyRule",
    "ObjectMeta",
    "ParseError",
    "Pod",
    "PodSpec",
    "PodTemplateSpec",
    "Probe",
    "ReplicaSet",
    "Role",
    "RoleBinding",
    "Secret",
    "Selector",
    "SelectorError",
    "Service",
    "ServiceAccount",
    "ServicePort",
    "StatefulSet",
    "UnknownKindError",
    "ValidationError",
    "USING_LIBYAML",
    "Workload",
    "yaml_dump",
    "yaml_dump_all",
    "yaml_load",
    "yaml_load_all",
    "allow_ports_policy",
    "deny_all_policy",
    "dump_yaml",
    "equality_selector",
    "find_duplicate_label_sets",
    "is_compute_unit_kind",
    "is_ephemeral_port",
    "known_kinds",
    "load_yaml",
    "make_namespace",
    "object_from_dict",
    "objects_from_dicts",
    "parse_selector",
    "selectors_overlap",
    "validate_port_number",
]
