"""Services and endpoints.

Services are the abstraction the paper's M5 family targets: a service may
reference ports that are never opened (M5A), never declared (M5B), target a
headless port that is unavailable (M5C), or select no compute unit at all
(M5D).  The model keeps selectors and port references explicit so the rules
can reason about them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Mapping

from .container import VALID_PROTOCOLS, validate_port_number
from .errors import ValidationError
from .labels import Selector
from .meta import KubernetesObject, ObjectMeta

#: Service types understood by the model.
SERVICE_TYPES = ("ClusterIP", "NodePort", "LoadBalancer", "ExternalName")


@dataclass(frozen=True)
class ServicePort:
    """A single service port mapping ``port`` -> ``targetPort``."""

    port: int
    target_port: int | str | None = None
    protocol: str = "TCP"
    name: str = ""
    node_port: int | None = None

    def __post_init__(self) -> None:
        validate_port_number(self.port, "service port")
        if self.protocol not in VALID_PROTOCOLS:
            raise ValidationError(f"invalid protocol: {self.protocol!r}")
        if isinstance(self.target_port, int):
            validate_port_number(self.target_port, "targetPort")
        if self.node_port is not None:
            validate_port_number(self.node_port, "nodePort")

    def resolved_target(self) -> int | str:
        """The port the service forwards to; defaults to ``port`` when unset."""
        if self.target_port is None or self.target_port == "":
            return self.port
        return self.target_port

    def to_dict(self) -> dict:
        data: dict = {"port": self.port}
        if self.name:
            data["name"] = self.name
        if self.protocol != "TCP":
            data["protocol"] = self.protocol
        if self.target_port is not None and self.target_port != "":
            data["targetPort"] = self.target_port
        if self.node_port is not None:
            data["nodePort"] = self.node_port
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "ServicePort":
        target = data.get("targetPort")
        if isinstance(target, str) and target.isdigit():
            target = int(target)
        return cls(
            port=int(data["port"]),
            target_port=target,
            protocol=data.get("protocol", "TCP"),
            name=data.get("name", ""),
            node_port=int(data["nodePort"]) if data.get("nodePort") is not None else None,
        )


@dataclass
class Service(KubernetesObject):
    """A Kubernetes ``Service`` resource."""

    KIND: ClassVar[str] = "Service"
    API_VERSION: ClassVar[str] = "v1"

    selector: Selector = field(default_factory=Selector)
    ports: list[ServicePort] = field(default_factory=list)
    type: str = "ClusterIP"
    cluster_ip: str = ""

    @property
    def is_headless(self) -> bool:
        """Headless services are declared with ``clusterIP: None``."""
        return self.cluster_ip.lower() == "none"

    @property
    def has_selector(self) -> bool:
        return not self.selector.is_empty

    def port_numbers(self) -> set[int]:
        return {port.port for port in self.ports}

    def target_ports(self) -> list[int | str]:
        return [port.resolved_target() for port in self.ports]

    def validate(self) -> None:
        super().validate()
        if self.type not in SERVICE_TYPES:
            raise ValidationError(f"invalid service type: {self.type!r}", path="spec.type")
        seen: set[tuple[int, str]] = set()
        for port in self.ports:
            key = (port.port, port.protocol)
            if key in seen:
                raise ValidationError(
                    f"service {self.name!r} declares duplicate port {port.port}/{port.protocol}"
                )
            seen.add(key)
        if len(self.ports) > 1 and any(not port.name for port in self.ports):
            raise ValidationError(
                f"service {self.name!r}: all ports must be named when more than one is defined"
            )

    def spec_to_dict(self) -> dict:
        spec: dict = {
            "type": self.type,
            "ports": [port.to_dict() for port in self.ports],
        }
        if self.has_selector:
            spec["selector"] = self.selector.match_labels.to_dict()
        if self.cluster_ip:
            spec["clusterIP"] = None if self.is_headless else self.cluster_ip
        return {"spec": spec}

    @classmethod
    def from_dict(cls, data: Mapping) -> "Service":
        spec = data.get("spec") or {}
        cluster_ip = spec.get("clusterIP")
        if cluster_ip is None and "clusterIP" in spec:
            cluster_ip = "None"
        return cls(
            metadata=ObjectMeta.from_dict(data.get("metadata")),
            selector=Selector.from_dict(spec.get("selector")),
            ports=[ServicePort.from_dict(entry) for entry in spec.get("ports") or ()],
            type=spec.get("type", "ClusterIP"),
            cluster_ip=str(cluster_ip) if cluster_ip is not None else "",
        )


@dataclass(frozen=True)
class EndpointAddress:
    """A single pod backing a service."""

    ip: str
    pod_name: str = ""
    node_name: str = ""


@dataclass
class Endpoints(KubernetesObject):
    """The ``Endpoints`` object maintained by the endpoint controller."""

    KIND: ClassVar[str] = "Endpoints"
    API_VERSION: ClassVar[str] = "v1"

    addresses: list[EndpointAddress] = field(default_factory=list)
    ports: list[ServicePort] = field(default_factory=list)

    def spec_to_dict(self) -> dict:
        return {
            "subsets": [
                {
                    "addresses": [
                        {"ip": address.ip, "targetRef": {"kind": "Pod", "name": address.pod_name}}
                        for address in self.addresses
                    ],
                    "ports": [
                        {"port": port.port, "protocol": port.protocol, "name": port.name}
                        for port in self.ports
                    ],
                }
            ]
            if self.addresses or self.ports
            else []
        }
