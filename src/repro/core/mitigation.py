"""Mitigation engine: turn findings into concrete configuration fixes.

Section 3.5 of the paper describes a mitigation per misconfiguration class;
this module implements the automatable ones directly on the Kubernetes
objects (declare missing ports, drop dead declarations, align service
targets, disable hostNetwork, generate default-deny + allow-declared
network policies, make colliding labels unique) and produces human-readable
advice for the rest (dynamic ports, deliberate collisions).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Iterable

from ..k8s import (
    ComputeUnit,
    ContainerPort,
    Inventory,
    LabelSet,
    KubernetesObject,
    NetworkPolicy,
    NetworkPolicyPeer,
    NetworkPolicyPort,
    NetworkPolicyRule,
    ObjectMeta,
    Pod,
    Selector,
    Service,
    Workload,
)
from .findings import Finding, MisconfigClass


class PatchSet:
    """A mutable working set of objects being patched by the engine.

    :class:`~repro.k8s.Inventory` is immutable and memoizes its selector
    indexes, which is exactly wrong for mitigation: handlers mutate labels
    and selectors mid-run and expect subsequent queries to see the patched
    state.  This little view recomputes every query per call (the seed
    inventory semantics) and supports appending generated objects.
    """

    def __init__(self, objects: list[KubernetesObject]) -> None:
        self._objects = objects

    def __iter__(self):
        return iter(self._objects)

    def objects(self) -> list[KubernetesObject]:
        return list(self._objects)

    def add(self, obj: KubernetesObject) -> None:
        self._objects.append(obj)

    def compute_units(self) -> list[ComputeUnit]:
        return [
            ComputeUnit(obj) for obj in self._objects if isinstance(obj, (Workload, Pod))
        ]

    def services(self) -> list[Service]:
        return [obj for obj in self._objects if isinstance(obj, Service)]

    def compute_units_selected_by(self, service: Service) -> list[ComputeUnit]:
        if not service.has_selector:
            return []
        return [
            unit
            for unit in self.compute_units()
            if unit.namespace == service.namespace
            and service.selector.matches(unit.pod_labels())
        ]


@dataclass
class MitigationAction:
    """One applied (or suggested) mitigation."""

    finding: Finding
    applied: bool
    description: str


@dataclass
class MitigationResult:
    """The outcome of applying mitigations to an application's objects."""

    objects: list[KubernetesObject]
    actions: list[MitigationAction] = field(default_factory=list)

    @property
    def applied_count(self) -> int:
        return sum(1 for action in self.actions if action.applied)

    @property
    def advisory_count(self) -> int:
        return sum(1 for action in self.actions if not action.applied)


class MitigationEngine:
    """Applies the Section 3.5 mitigations to Kubernetes objects."""

    def apply(self, objects: Iterable[KubernetesObject], findings: Iterable[Finding]) -> MitigationResult:
        """Return patched copies of ``objects`` with findings addressed."""
        # deepcopy thaws sealed (content-interned) objects, so the patches
        # below never touch a shared object graph.
        patched = [copy.deepcopy(obj) for obj in objects]
        result = MitigationResult(objects=patched)
        inventory = PatchSet(patched)
        for finding in findings:
            handler = self._HANDLERS.get(finding.misconfig_class)
            if handler is None:
                result.actions.append(
                    MitigationAction(
                        finding=finding,
                        applied=False,
                        description=finding.mitigation or "manual review required",
                    )
                )
                continue
            result.actions.append(handler(self, inventory, finding))
        # Handlers may add new objects (e.g. generated NetworkPolicies) to the
        # inventory; the inventory is therefore the source of truth.
        result.objects = list(inventory)
        return result

    # Individual handlers ---------------------------------------------------
    def _declare_missing_port(self, inventory: PatchSet, finding: Finding) -> MitigationAction:
        unit = self._find_workload(inventory, finding.resource)
        if unit is None or finding.port is None:
            return MitigationAction(finding, False, "could not locate the compute unit to patch")
        container = unit.pod_template().spec.containers[0]
        if finding.port not in {p.container_port for p in container.ports}:
            container.ports.append(ContainerPort(container_port=finding.port, protocol=finding.protocol))
        return MitigationAction(
            finding, True, f"declared containerPort {finding.port} on {finding.resource}"
        )

    def _remove_dead_port(self, inventory: PatchSet, finding: Finding) -> MitigationAction:
        unit = self._find_workload(inventory, finding.resource)
        if unit is None or finding.port is None:
            return MitigationAction(finding, False, "could not locate the compute unit to patch")
        removed = False
        for container in unit.pod_template().spec.containers:
            before = len(container.ports)
            container.ports = [p for p in container.ports if p.container_port != finding.port]
            removed = removed or len(container.ports) != before
        return MitigationAction(
            finding,
            removed,
            f"removed unused containerPort {finding.port} from {finding.resource}"
            if removed
            else "declared port was already absent",
        )

    def _advise_dynamic_ports(self, inventory: PatchSet, finding: Finding) -> MitigationAction:
        return MitigationAction(
            finding,
            False,
            "configure a static port via the application's settings (e.g. an environment "
            "variable) or document the dynamic port usage in the chart",
        )

    def _make_labels_unique(self, inventory: PatchSet, finding: Finding) -> MitigationAction:
        resources = (finding.resource,) + finding.related_resources
        patched_units: list[Workload] = []
        for qualified in resources:
            unit = self._find_workload(inventory, qualified)
            if unit is None:
                continue
            suffix = qualified.split("/")[-1]
            unit.template.metadata.labels = unit.template.metadata.labels.merged(
                {"app.kubernetes.io/component": suffix}
            )
            unit.metadata.labels = unit.metadata.labels.merged(
                {"app.kubernetes.io/component": suffix}
            )
            if not unit.selector.is_empty:
                unit.selector = Selector(
                    match_labels=unit.selector.match_labels.merged(
                        {"app.kubernetes.io/component": suffix}
                    ),
                    match_expressions=unit.selector.match_expressions,
                )
            patched_units.append(unit)
        narrowed = self._narrow_ambiguous_services(inventory, patched_units)
        description = (
            f"added a distinguishing app.kubernetes.io/component label to {len(patched_units)} "
            "compute units"
        )
        if narrowed:
            description += f" and narrowed the selector of {narrowed} services to a single backend"
        return MitigationAction(finding, bool(patched_units), description)

    @staticmethod
    def _narrow_ambiguous_services(inventory: PatchSet, units: list[Workload]) -> int:
        """Re-point services that selected several colliding units to one of them.

        The intended backend is chosen by name affinity (longest common prefix
        between the service name and the unit name), which matches how charts
        conventionally name a service after the component it fronts.
        """
        if len(units) < 2:
            return 0
        narrowed = 0
        for service in inventory.services():
            if not service.has_selector:
                continue
            selected = [unit for unit in units if service.selector.matches(unit.pod_labels())]
            if len(selected) < 2:
                continue
            def affinity(unit: Workload) -> int:
                prefix = 0
                for left, right in zip(service.name, unit.name):
                    if left != right:
                        break
                    prefix += 1
                return prefix
            intended = max(selected, key=affinity)
            service.selector = Selector(match_labels=LabelSet(intended.pod_labels()))
            narrowed += 1
        return narrowed

    def _fix_service_target(self, inventory: PatchSet, finding: Finding) -> MitigationAction:
        service = self._find_service(inventory, finding.resource)
        if service is None or finding.port is None:
            return MitigationAction(finding, False, "could not locate the service to patch")
        units = inventory.compute_units_selected_by(service)
        declared: set[int] = set()
        for unit in units:
            declared.update(unit.declared_port_numbers())
        if not declared:
            return MitigationAction(
                finding, False, "selected pods declare no ports; manual review required"
            )
        replacement = sorted(declared)[0]
        service.ports = [
            port if port.port != finding.port else type(port)(
                port=port.port,
                target_port=replacement,
                protocol=port.protocol,
                name=port.name,
                node_port=port.node_port,
            )
            for port in service.ports
        ]
        return MitigationAction(
            finding,
            True,
            f"re-pointed service port {finding.port} to declared container port {replacement}",
        )

    def _remove_headless_port(self, inventory: PatchSet, finding: Finding) -> MitigationAction:
        service = self._find_service(inventory, finding.resource)
        if service is None or finding.port is None:
            return MitigationAction(finding, False, "could not locate the headless service")
        before = len(service.ports)
        service.ports = [port for port in service.ports if port.port != finding.port]
        return MitigationAction(
            finding,
            len(service.ports) != before,
            f"removed unavailable port {finding.port} from headless service {service.name!r}",
        )

    def _advise_service_without_target(self, inventory: PatchSet, finding: Finding) -> MitigationAction:
        return MitigationAction(
            finding,
            False,
            "align the service selector with the labels of an existing compute unit "
            "(kubectl get pods -l <selector> must return the intended pods) or delete the service",
        )

    def _generate_network_policies(self, inventory: PatchSet, finding: Finding) -> MitigationAction:
        policies = generate_network_policies(inventory, finding.application)
        for policy in policies:
            inventory.add(policy)
        return MitigationAction(
            finding,
            bool(policies),
            f"generated {len(policies)} NetworkPolicy objects (default deny + allow declared "
            "service traffic)",
        )

    def _disable_host_network(self, inventory: PatchSet, finding: Finding) -> MitigationAction:
        unit = self._find_workload(inventory, finding.resource)
        if unit is None:
            return MitigationAction(finding, False, "could not locate the compute unit to patch")
        unit.pod_template().spec.host_network = False
        return MitigationAction(
            finding, True, f"set hostNetwork: false on {finding.resource}"
        )

    # Lookup helpers -------------------------------------------------------------
    @staticmethod
    def _find_workload(inventory: PatchSet, qualified_name: str) -> Workload | None:
        for obj in inventory:
            if isinstance(obj, Workload) and obj.qualified_name() == qualified_name:
                return obj
        return None

    @staticmethod
    def _find_service(inventory: PatchSet, qualified_name: str) -> Service | None:
        for obj in inventory:
            if isinstance(obj, Service) and obj.qualified_name() == qualified_name:
                return obj
        return None

    _HANDLERS = {
        MisconfigClass.M1: _declare_missing_port,
        MisconfigClass.M2: _advise_dynamic_ports,
        MisconfigClass.M3: _remove_dead_port,
        MisconfigClass.M4A: _make_labels_unique,
        MisconfigClass.M4B: _make_labels_unique,
        MisconfigClass.M4C: _make_labels_unique,
        MisconfigClass.M4_GLOBAL: _make_labels_unique,
        MisconfigClass.M5A: _fix_service_target,
        MisconfigClass.M5B: _fix_service_target,
        MisconfigClass.M5C: _remove_headless_port,
        MisconfigClass.M5D: _advise_service_without_target,
        MisconfigClass.M6: _generate_network_policies,
        MisconfigClass.M7: _disable_host_network,
    }


def generate_network_policies(inventory: "Inventory | PatchSet", application: str) -> list[NetworkPolicy]:
    """Generate a default-deny policy plus per-service allow rules.

    This is the automated mitigation for M6: deny all ingress to the
    application's pods, then allow cluster traffic only to the ports its
    services expose.
    """
    policies: list[NetworkPolicy] = []
    units = inventory.compute_units()
    if not units:
        return policies
    namespace = units[0].namespace
    policies.append(
        NetworkPolicy(
            metadata=ObjectMeta(name=f"{application}-default-deny", namespace=namespace),
            pod_selector=Selector(),
            policy_types=["Ingress"],
            ingress=[],
        )
    )
    for service in inventory.services():
        targets = inventory.compute_units_selected_by(service)
        if not targets:
            continue
        ports: list[NetworkPolicyPort] = []
        for service_port in service.ports:
            target = service_port.resolved_target()
            if isinstance(target, int):
                ports.append(NetworkPolicyPort(port=target, protocol=service_port.protocol))
            else:
                for unit in targets:
                    resolved = unit.resolve_port_name(str(target))
                    if resolved is not None:
                        ports.append(
                            NetworkPolicyPort(port=resolved, protocol=service_port.protocol)
                        )
                        break
        if not ports:
            continue
        policies.append(
            NetworkPolicy(
                metadata=ObjectMeta(name=f"{application}-allow-{service.name}", namespace=namespace),
                pod_selector=service.selector,
                policy_types=["Ingress"],
                ingress=[NetworkPolicyRule(peers=[NetworkPolicyPeer(pod_selector=Selector())],
                                           ports=ports)],
            )
        )
    return policies
