"""The paper's core contribution: the hybrid network-misconfiguration analyzer.

Public entry points:

* :class:`MisconfigurationAnalyzer` -- analyze a Helm chart or a set of
  Kubernetes objects (static, runtime or hybrid mode);
* :class:`MitigationEngine` / :func:`generate_network_policies` -- apply the
  Section 3.5 mitigations;
* :class:`NetworkMisconfigurationAdmission` -- the admission-time defense;
* the findings model (:class:`Finding`, :class:`AnalysisReport`,
  :class:`MisconfigClass`, :data:`CATALOG`) and report formatting.
"""

from .admission import (
    MODE_ENFORCE,
    MODE_WARN,
    AdmissionWarning,
    NetworkMisconfigurationAdmission,
)
from .analyzer import (
    ANALYSIS_STAGES,
    MODE_HYBRID,
    MODE_RUNTIME,
    MODE_STATIC,
    STAGE_OBSERVE,
    STAGE_RENDER,
    STAGE_RULES,
    AnalysisStageError,
    AnalyzerSettings,
    MisconfigurationAnalyzer,
)
from .cluster_wide import (
    ApplicationInventory,
    GlobalCollision,
    find_cross_application_selector_matches,
    find_global_collisions,
    global_collision_findings,
)
from .context import AnalysisContext
from .disclosure import (
    FEEDBACK_QUESTIONNAIRE,
    THREAT_MODEL_SUMMARY,
    DisclosureOutcome,
    DisclosureReport,
    LikertAnswer,
    QuestionnaireQuestion,
    QuestionnaireResponse,
    build_disclosures,
    summarize_outcomes,
)
from .findings import (
    CATALOG,
    TABLE_ORDER,
    AnalysisReport,
    Finding,
    MisconfigClass,
    MisconfigDescriptor,
    Severity,
    deduplicate_findings,
)
from .mitigation import (
    MitigationAction,
    MitigationEngine,
    MitigationResult,
    generate_network_policies,
)
from .report import (
    DatasetSummary,
    EvaluationSummary,
    format_report_json,
    format_report_markdown,
    format_report_text,
)
from .rules import Rule, RuleRegistry, default_rules

__all__ = [
    "ANALYSIS_STAGES",
    "CATALOG",
    "MODE_ENFORCE",
    "MODE_HYBRID",
    "MODE_RUNTIME",
    "MODE_STATIC",
    "MODE_WARN",
    "STAGE_OBSERVE",
    "STAGE_RENDER",
    "STAGE_RULES",
    "TABLE_ORDER",
    "AdmissionWarning",
    "AnalysisContext",
    "AnalysisReport",
    "AnalysisStageError",
    "AnalyzerSettings",
    "ApplicationInventory",
    "DatasetSummary",
    "DisclosureOutcome",
    "DisclosureReport",
    "FEEDBACK_QUESTIONNAIRE",
    "LikertAnswer",
    "QuestionnaireQuestion",
    "QuestionnaireResponse",
    "THREAT_MODEL_SUMMARY",
    "build_disclosures",
    "summarize_outcomes",
    "EvaluationSummary",
    "Finding",
    "GlobalCollision",
    "MisconfigClass",
    "MisconfigDescriptor",
    "MisconfigurationAnalyzer",
    "MitigationAction",
    "MitigationEngine",
    "MitigationResult",
    "NetworkMisconfigurationAdmission",
    "Rule",
    "RuleRegistry",
    "Severity",
    "deduplicate_findings",
    "default_rules",
    "find_cross_application_selector_matches",
    "find_global_collisions",
    "format_report_json",
    "format_report_markdown",
    "format_report_text",
    "generate_network_policies",
    "global_collision_findings",
]
