"""Misconfiguration taxonomy, findings, and per-application reports.

This module encodes Table 1 of the paper: the thirteen network
misconfiguration classes (M1-M7 with the M4/M5 sub-variants), the security
issue behind each, and the attacks they enable.  Detection rules produce
:class:`Finding` objects tagged with these classes; an
:class:`AnalysisReport` collects the findings for one application.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable


class Severity(str, Enum):
    """Qualitative severity, aligned with the feedback from the disclosure
    (Section 5.1.1: label collisions rated most critical, M3 least)."""

    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class MisconfigClass(str, Enum):
    """The misconfiguration identifiers of Table 1."""

    M1 = "M1"
    M2 = "M2"
    M3 = "M3"
    M4A = "M4A"
    M4B = "M4B"
    M4C = "M4C"
    M4_GLOBAL = "M4*"
    M5A = "M5A"
    M5B = "M5B"
    M5C = "M5C"
    M5D = "M5D"
    M6 = "M6"
    M7 = "M7"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def family(self) -> str:
        """The family identifier (``M4*`` and ``M4A`` both belong to ``M4``)."""
        return "M4" if self.value.startswith("M4") else self.value[:2]


@dataclass(frozen=True)
class MisconfigDescriptor:
    """Catalogue entry: description, underlying issue and possible attacks."""

    misconfig_class: MisconfigClass
    description: str
    issue: str
    attacks: tuple[str, ...]
    severity: Severity
    detection: str  # "static", "runtime" or "hybrid"


#: The full catalogue (Table 1), keyed by misconfiguration class.
CATALOG: dict[MisconfigClass, MisconfigDescriptor] = {
    MisconfigClass.M1: MisconfigDescriptor(
        MisconfigClass.M1,
        "Port open on container is not declared",
        "Listening on all interfaces by default",
        ("Command and control", "Sensitive port information"),
        Severity.MEDIUM,
        "hybrid",
    ),
    MisconfigClass.M2: MisconfigDescriptor(
        MisconfigClass.M2,
        "Container allocates dynamic ports",
        "Dynamic ports cannot be controlled",
        ("Loosened security policies",),
        Severity.MEDIUM,
        "runtime",
    ),
    MisconfigClass.M3: MisconfigDescriptor(
        MisconfigClass.M3,
        "Port declared on container is not open",
        "Missing checks on declared ports",
        ("Data interception / spoofing", "Data exfiltration"),
        Severity.LOW,
        "hybrid",
    ),
    MisconfigClass.M4A: MisconfigDescriptor(
        MisconfigClass.M4A,
        "Compute unit collision",
        "Missing checks on label collision",
        ("Man in the middle", "Server impersonation"),
        Severity.HIGH,
        "static",
    ),
    MisconfigClass.M4B: MisconfigDescriptor(
        MisconfigClass.M4B,
        "Service label collision",
        "Missing checks on label collision",
        ("Man in the middle", "Server impersonation"),
        Severity.HIGH,
        "static",
    ),
    MisconfigClass.M4C: MisconfigDescriptor(
        MisconfigClass.M4C,
        "Compute unit subset collision",
        "Missing checks on label collision",
        ("Man in the middle", "Server impersonation"),
        Severity.HIGH,
        "static",
    ),
    MisconfigClass.M4_GLOBAL: MisconfigDescriptor(
        MisconfigClass.M4_GLOBAL,
        "Global label collision",
        "Missing checks on label collision",
        ("Man in the middle", "Server impersonation"),
        Severity.HIGH,
        "static",
    ),
    MisconfigClass.M5A: MisconfigDescriptor(
        MisconfigClass.M5A,
        "Service targets unopened port",
        "Missing checks on declared ports",
        ("Data interception", "Denial of service"),
        Severity.MEDIUM,
        "hybrid",
    ),
    MisconfigClass.M5B: MisconfigDescriptor(
        MisconfigClass.M5B,
        "Service targets undeclared port",
        "Missing checks on declared ports",
        ("Data spoofing", "Bypassing security checks"),
        Severity.MEDIUM,
        "static",
    ),
    MisconfigClass.M5C: MisconfigDescriptor(
        MisconfigClass.M5C,
        "Headless service port is not available",
        "Missing checks on declared ports",
        ("Denial of service",),
        Severity.MEDIUM,
        "runtime",
    ),
    MisconfigClass.M5D: MisconfigDescriptor(
        MisconfigClass.M5D,
        "Service without target",
        "Missing checks on existence of target label",
        ("Service impersonation", "Denial of service"),
        Severity.MEDIUM,
        "static",
    ),
    MisconfigClass.M6: MisconfigDescriptor(
        MisconfigClass.M6,
        "Lack of network policies",
        "No isolation between containers",
        ("Data interception / spoofing", "Privilege escalation"),
        Severity.MEDIUM,
        "static",
    ),
    MisconfigClass.M7: MisconfigDescriptor(
        MisconfigClass.M7,
        "Container binds to host network",
        "Network policies do not apply to host",
        ("Bypassing network controls",),
        Severity.MEDIUM,
        "static",
    ),
}

#: Classes displayed as columns in Table 2 and Table 3, in paper order.
TABLE_ORDER: tuple[MisconfigClass, ...] = (
    MisconfigClass.M1,
    MisconfigClass.M2,
    MisconfigClass.M3,
    MisconfigClass.M4A,
    MisconfigClass.M4B,
    MisconfigClass.M4C,
    MisconfigClass.M4_GLOBAL,
    MisconfigClass.M5A,
    MisconfigClass.M5B,
    MisconfigClass.M5C,
    MisconfigClass.M5D,
    MisconfigClass.M6,
    MisconfigClass.M7,
)


@dataclass
class Finding:
    """One detected misconfiguration instance."""

    misconfig_class: MisconfigClass
    application: str
    resource: str
    message: str
    port: int | None = None
    protocol: str = "TCP"
    related_resources: tuple[str, ...] = ()
    evidence: dict = field(default_factory=dict)
    mitigation: str = ""

    @property
    def severity(self) -> Severity:
        return CATALOG[self.misconfig_class].severity

    @property
    def descriptor(self) -> MisconfigDescriptor:
        return CATALOG[self.misconfig_class]

    def dedupe_key(self) -> tuple:
        """Key used to drop duplicate findings across pod replicas."""
        return (
            self.misconfig_class,
            self.application,
            self.resource,
            self.port,
            self.protocol,
            self.related_resources,
        )

    def to_dict(self) -> dict:
        return {
            "class": self.misconfig_class.value,
            "application": self.application,
            "resource": self.resource,
            "message": self.message,
            "port": self.port,
            "protocol": self.protocol,
            "severity": self.severity.value,
            "related": list(self.related_resources),
            "mitigation": self.mitigation,
        }


def deduplicate_findings(findings: Iterable[Finding]) -> list[Finding]:
    """Drop duplicates (identical class/resource/port) while keeping order."""
    seen: set[tuple] = set()
    unique: list[Finding] = []
    for finding in findings:
        key = finding.dedupe_key()
        if key in seen:
            continue
        seen.add(key)
        unique.append(finding)
    return unique


@dataclass
class AnalysisReport:
    """All findings for one analyzed application."""

    application: str
    dataset: str = ""
    findings: list[Finding] = field(default_factory=list)

    def add(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)
        self.findings = deduplicate_findings(self.findings)

    # Aggregations -----------------------------------------------------------
    @property
    def total(self) -> int:
        return len(self.findings)

    @property
    def affected(self) -> bool:
        return bool(self.findings)

    def count_by_class(self) -> dict[MisconfigClass, int]:
        counts = {cls: 0 for cls in TABLE_ORDER}
        for finding in self.findings:
            counts[finding.misconfig_class] = counts.get(finding.misconfig_class, 0) + 1
        return counts

    def classes_present(self) -> set[MisconfigClass]:
        return {finding.misconfig_class for finding in self.findings}

    def type_count(self) -> int:
        """Number of distinct misconfiguration types (Figure 3b metric)."""
        return len(self.classes_present())

    def of_class(self, misconfig_class: MisconfigClass) -> list[Finding]:
        return [f for f in self.findings if f.misconfig_class == misconfig_class]

    def by_severity(self) -> dict[Severity, int]:
        counts: dict[Severity, int] = {severity: 0 for severity in Severity}
        for finding in self.findings:
            counts[finding.severity] += 1
        return counts

    def to_dict(self) -> dict:
        return {
            "application": self.application,
            "dataset": self.dataset,
            "total": self.total,
            "types": self.type_count(),
            "findings": [finding.to_dict() for finding in self.findings],
        }
