"""The hybrid misconfiguration analyzer -- the paper's core contribution.

The analyzer takes a Helm chart, renders it (static analysis), observes its
runtime behaviour with a double snapshot (runtime analysis), then evaluates
the machine-readable rules of Table 1 against the combined evidence.  A
final cluster-wide pass over all analyzed applications detects global label
collisions (M4*).

Runtime observation goes through an :class:`~repro.cluster.AnalysisSession`:
cluster skeletons are pooled and recycled between charts instead of rebuilt,
and the default ``observe_mode="fast"`` derives the snapshots install-free
from the rendered objects and workload behaviours.  ``observe_mode="full"``
(plus ``pooled_clusters=False`` for a throw-away cluster per chart) keeps
the original install-and-scan path as the reference implementation; the
differential conformance suite proves all modes produce identical reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from .. import faults
from ..cluster import AnalysisSession, BehaviorRegistry, Cluster, OBSERVE_FAST
from ..helm import Chart, RenderedChart, render_chart
from ..k8s import Inventory, KubernetesObject
from ..probe import RuntimeObservation
from ..store import ResultStore
from .cluster_wide import ApplicationInventory, global_collision_findings
from .context import AnalysisContext
from .findings import AnalysisReport, Finding, MisconfigClass
from .rules import RuleRegistry, default_rules, evaluate_fused

#: Analysis modes, used by the ablation experiments.
MODE_STATIC = "static"
MODE_RUNTIME = "runtime"
MODE_HYBRID = "hybrid"

#: The pipeline stages a per-chart analysis passes through, in order.  The
#: fault-isolation layer attributes every failure to exactly one of these.
STAGE_RENDER = "render"
STAGE_OBSERVE = "observe"
STAGE_RULES = "rules"
ANALYSIS_STAGES = (STAGE_RENDER, STAGE_OBSERVE, STAGE_RULES)


class AnalysisStageError(Exception):
    """A per-chart analysis stage failed; wraps the original exception.

    Raised only when the caller opts in (``analyze_chart(...,
    stage_errors=True)``): the evaluation pipeline uses the ``stage``
    attribute to attribute a failure record to render/observe/rules without
    guessing from tracebacks.  Constructed as ``AnalysisStageError(stage,
    original)`` so the default ``Exception`` pickling (via ``args``) moves
    it across process-pool boundaries intact.
    """

    def __init__(self, stage: str, original: BaseException) -> None:
        super().__init__(stage, original)
        self.stage = stage
        self.original = original

    def __str__(self) -> str:
        return f"{self.stage} stage failed: {self.original!r}"


@dataclass
class AnalyzerSettings:
    """Tunable behaviour of the analyzer."""

    mode: str = MODE_HYBRID
    #: Take two runtime snapshots across a restart (needed for M2).
    double_snapshot: bool = True
    #: Subtract the node's own ports from hostNetwork pods (avoids M1 false positives).
    host_port_filtering: bool = True
    #: Number of worker nodes in the analysis cluster / substrate.
    worker_count: int = 3
    #: Seed for the analysis cluster (ephemeral port allocation).
    seed: int = 2025
    #: ``"fast"`` = install-free observation substrate; ``"full"`` = install
    #: into a cluster and scan (the reference path).
    observe_mode: str = OBSERVE_FAST
    #: Recycle one cluster skeleton across charts (``observe_mode="full"``);
    #: ``False`` rebuilds a throw-away cluster per chart, as the seed did.
    pooled_clusters: bool = True
    #: Evaluate the rule set as one fused pass over indexed per-chart
    #: lookups (the default); ``False`` pins the seed shape -- one rule at a
    #: time, per-call linear scans -- kept as the reference implementation
    #: the rule-engine differential suite compares against.
    compiled_rules: bool = True
    #: Root of a shared :class:`~repro.store.ResultStore` backing the
    #: session's observation memo (``None`` = in-process memo only).  A
    #: string so settings stay picklable and workers can rebuild their own
    #: store handle.  Result keys deliberately exclude this field: where an
    #: artifact is stored must never change what is computed.
    store_dir: str | None = None


class MisconfigurationAnalyzer:
    """Analyzes Helm charts / Kubernetes objects for network misconfigurations."""

    def __init__(
        self,
        rules: RuleRegistry | None = None,
        settings: AnalyzerSettings | None = None,
        cluster_factory: Callable[[BehaviorRegistry], Cluster] | None = None,
        session: AnalysisSession | None = None,
    ) -> None:
        self.rules = rules or default_rules()
        self.settings = settings or AnalyzerSettings()
        store = None
        if session is None and self.settings.store_dir:
            store = ResultStore(self.settings.store_dir)
        #: A caller-supplied ``cluster_factory`` preserves the historical
        #: semantics -- a fresh factory-built cluster per observation, full
        #: install-and-scan path (the session enforces this itself).
        self.session = session or AnalysisSession(
            name="analysis",
            worker_count=self.settings.worker_count,
            seed=self.settings.seed,
            observe_mode=self.settings.observe_mode,
            pooled=self.settings.pooled_clusters,
            cluster_factory=cluster_factory,
            store=store,
        )

    # Chart-level analysis ---------------------------------------------------------
    def analyze_chart(
        self,
        chart: Chart,
        overrides: Mapping | None = None,
        behaviors: BehaviorRegistry | None = None,
        application: str | None = None,
        dataset: str = "",
        policies_available_but_disabled: bool | None = None,
        rendered: RenderedChart | None = None,
        inventory: Inventory | None = None,
        stage_errors: bool = False,
    ) -> AnalysisReport:
        """Render a chart, observe it at runtime, and evaluate every rule.

        Callers that already rendered the chart (the evaluation pipeline
        needs the rendered objects for its inventory anyway) can pass
        ``rendered`` to skip the second render -- even the structured
        dict-native render dominates the full-catalogue wall time -- and
        ``inventory`` to share one indexed inventory over those objects
        between this analysis and their own passes.  The provided render
        must use the same release name and overrides this method would
        apply.

        ``stage_errors=True`` wraps any exception escaping a pipeline stage
        in :class:`AnalysisStageError` tagged with the stage name
        (:data:`ANALYSIS_STAGES`), for callers that attribute failures per
        stage; the default leaves exception types untouched, preserving the
        historical raise-through semantics.
        """
        if rendered is None:
            rendered = self._run_stage(
                STAGE_RENDER,
                stage_errors,
                lambda: render_chart(
                    chart, release_name=application or chart.name, overrides=overrides
                ),
            )
        detected_disabled = (
            policies_available_but_disabled
            if policies_available_but_disabled is not None
            else self._chart_defines_disabled_policies(chart, rendered)
        )
        observation = None
        if self.settings.mode in (MODE_RUNTIME, MODE_HYBRID):
            observation = self._run_stage(
                STAGE_OBSERVE, stage_errors, lambda: self._observe(rendered, behaviors)
            )
        return self._run_stage(
            STAGE_RULES,
            stage_errors,
            lambda: self.analyze_rendered(
                rendered,
                observation=observation,
                dataset=dataset,
                policies_available_but_disabled=detected_disabled,
                inventory=inventory,
            ),
        )

    @staticmethod
    def _run_stage(stage: str, stage_errors: bool, thunk: Callable):
        """Run one pipeline stage, wrapping failures when asked to."""
        if not stage_errors:
            return thunk()
        try:
            return thunk()
        except AnalysisStageError:
            raise
        except Exception as exc:
            raise AnalysisStageError(stage, exc) from exc

    def analyze_rendered(
        self,
        rendered: RenderedChart,
        observation: RuntimeObservation | None = None,
        dataset: str = "",
        policies_available_but_disabled: bool = False,
        inventory: Inventory | None = None,
    ) -> AnalysisReport:
        """Evaluate the rules against an already-rendered chart.

        ``inventory`` lets callers that keep their own :class:`Inventory`
        over the same objects (the evaluation pipeline feeds it to the
        cluster-wide pass) share one instance, so its lazy indexes and
        compute-unit memos are built once for both passes.
        """
        return self.analyze_objects(
            rendered.objects,
            application=rendered.release.name,
            observation=observation,
            dataset=dataset,
            policies_available_but_disabled=policies_available_but_disabled,
            namespace=rendered.release.namespace,
            inventory=inventory,
        )

    def analyze_objects(
        self,
        objects: Iterable[KubernetesObject],
        application: str,
        observation: RuntimeObservation | None = None,
        dataset: str = "",
        policies_available_but_disabled: bool = False,
        namespace: str = "default",
        inventory: Inventory | None = None,
    ) -> AnalysisReport:
        """Evaluate the rules against a plain list of Kubernetes objects."""
        faults.fault_point(faults.RULES)
        if self.settings.mode == MODE_STATIC:
            observation = None
        compiled = self.settings.compiled_rules
        context = AnalysisContext(
            application=application,
            inventory=inventory if inventory is not None else Inventory(objects),
            observation=observation,
            network_policies_available_but_disabled=policies_available_but_disabled,
            dataset=dataset,
            namespace=namespace,
            indexed=compiled,
        )
        report = AnalysisReport(application=application, dataset=dataset)
        if compiled:
            # One fused walk over units and services; per-rule buckets are
            # concatenated in registry order, so reports match the reference
            # loop below byte for byte (proven by the differential suite).
            # One batched ``add`` keeps the dedup pass linear in findings.
            report.add(
                [
                    finding
                    for _rule, findings in evaluate_fused(self.rules, context)
                    for finding in findings
                ]
            )
        else:
            for rule in self.rules.rules_for(context):
                report.add(rule.evaluate(context))
        return report

    # Runtime observation ------------------------------------------------------------
    def _observe(
        self, rendered: RenderedChart, behaviors: BehaviorRegistry | None
    ) -> RuntimeObservation:
        """Take the double snapshot through the analysis session."""
        observation = self.session.observe(
            rendered,
            behaviors=behaviors,
            double_snapshot=self.settings.double_snapshot,
        )
        if not self.settings.host_port_filtering:
            observation.host_ports = set()
        return observation

    @staticmethod
    def _chart_defines_disabled_policies(chart: Chart, rendered: RenderedChart) -> bool:
        """True when the chart has NetworkPolicy templates that did not render."""
        if rendered.objects_of_kind("NetworkPolicy"):
            return False
        sources = [template.source for template in chart.templates]
        for subchart in chart.subcharts.values():
            sources.extend(template.source for template in subchart.templates)
        return any("kind: NetworkPolicy" in source for source in sources)

    # Cluster-wide pass ------------------------------------------------------------------
    def analyze_cluster_wide(
        self, applications: list[ApplicationInventory]
    ) -> dict[str, list[Finding]]:
        """Detect global collisions (M4*) across all analyzed applications.

        Returns the extra findings grouped by application name, ready to be
        appended to the per-application reports.
        """
        grouped: dict[str, list[Finding]] = {}
        for finding in global_collision_findings(applications):
            grouped.setdefault(finding.application, []).append(finding)
        return grouped

    def merge_cluster_wide(
        self,
        reports: dict[str, AnalysisReport],
        applications: list[ApplicationInventory],
    ) -> dict[str, AnalysisReport]:
        """Append M4* findings to the per-application reports, in place."""
        extra = self.analyze_cluster_wide(applications)
        for application, findings in extra.items():
            if application in reports:
                reports[application].add(findings)
        return reports

    # Convenience ---------------------------------------------------------------------------
    def detected_classes(self, report: AnalysisReport) -> set[MisconfigClass]:
        """The misconfiguration classes present in ``report``."""
        return report.classes_present()
