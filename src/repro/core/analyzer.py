"""The hybrid misconfiguration analyzer -- the paper's core contribution.

The analyzer takes a Helm chart, renders it (static analysis), installs it
into a clean simulated cluster and observes its runtime behaviour with a
double snapshot (runtime analysis), then evaluates the machine-readable
rules of Table 1 against the combined evidence.  A final cluster-wide pass
over all analyzed applications detects global label collisions (M4*).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from ..cluster import BehaviorRegistry, Cluster
from ..helm import Chart, RenderedChart, render_chart
from ..k8s import Inventory, KubernetesObject
from ..probe import RuntimeObservation, RuntimeScanner
from .cluster_wide import ApplicationInventory, global_collision_findings
from .context import AnalysisContext
from .findings import AnalysisReport, Finding, MisconfigClass
from .rules import RuleRegistry, default_rules

#: Analysis modes, used by the ablation experiments.
MODE_STATIC = "static"
MODE_RUNTIME = "runtime"
MODE_HYBRID = "hybrid"


@dataclass
class AnalyzerSettings:
    """Tunable behaviour of the analyzer."""

    mode: str = MODE_HYBRID
    #: Take two runtime snapshots across a restart (needed for M2).
    double_snapshot: bool = True
    #: Subtract the node's own ports from hostNetwork pods (avoids M1 false positives).
    host_port_filtering: bool = True
    #: Number of worker nodes in the throw-away analysis cluster.
    worker_count: int = 3
    #: Seed for the analysis cluster (ephemeral port allocation).
    seed: int = 2025


class MisconfigurationAnalyzer:
    """Analyzes Helm charts / Kubernetes objects for network misconfigurations."""

    def __init__(
        self,
        rules: RuleRegistry | None = None,
        settings: AnalyzerSettings | None = None,
        cluster_factory: Callable[[BehaviorRegistry], Cluster] | None = None,
    ) -> None:
        self.rules = rules or default_rules()
        self.settings = settings or AnalyzerSettings()
        self._cluster_factory = cluster_factory or self._default_cluster_factory

    # Cluster management -------------------------------------------------------
    def _default_cluster_factory(self, behaviors: BehaviorRegistry) -> Cluster:
        return Cluster(
            name="analysis",
            worker_count=self.settings.worker_count,
            behaviors=behaviors,
            seed=self.settings.seed,
        )

    # Chart-level analysis ---------------------------------------------------------
    def analyze_chart(
        self,
        chart: Chart,
        overrides: Mapping | None = None,
        behaviors: BehaviorRegistry | None = None,
        application: str | None = None,
        dataset: str = "",
        policies_available_but_disabled: bool | None = None,
        rendered: RenderedChart | None = None,
    ) -> AnalysisReport:
        """Render a chart, observe it at runtime, and evaluate every rule.

        Callers that already rendered the chart (the evaluation pipeline
        needs the rendered objects for its inventory anyway) can pass
        ``rendered`` to skip the second render -- template evaluation and
        YAML parsing dominate the full-catalogue wall time.  The provided
        render must use the same release name and overrides this method
        would apply.
        """
        if rendered is None:
            rendered = render_chart(
                chart, release_name=application or chart.name, overrides=overrides
            )
        detected_disabled = (
            policies_available_but_disabled
            if policies_available_but_disabled is not None
            else self._chart_defines_disabled_policies(chart, rendered)
        )
        observation = None
        if self.settings.mode in (MODE_RUNTIME, MODE_HYBRID):
            observation = self._observe(rendered, behaviors)
        return self.analyze_rendered(
            rendered,
            observation=observation,
            dataset=dataset,
            policies_available_but_disabled=detected_disabled,
        )

    def analyze_rendered(
        self,
        rendered: RenderedChart,
        observation: RuntimeObservation | None = None,
        dataset: str = "",
        policies_available_but_disabled: bool = False,
    ) -> AnalysisReport:
        """Evaluate the rules against an already-rendered chart."""
        return self.analyze_objects(
            rendered.objects,
            application=rendered.release.name,
            observation=observation,
            dataset=dataset,
            policies_available_but_disabled=policies_available_but_disabled,
            namespace=rendered.release.namespace,
        )

    def analyze_objects(
        self,
        objects: Iterable[KubernetesObject],
        application: str,
        observation: RuntimeObservation | None = None,
        dataset: str = "",
        policies_available_but_disabled: bool = False,
        namespace: str = "default",
    ) -> AnalysisReport:
        """Evaluate the rules against a plain list of Kubernetes objects."""
        if self.settings.mode == MODE_STATIC:
            observation = None
        context = AnalysisContext(
            application=application,
            inventory=Inventory(objects),
            observation=observation,
            network_policies_available_but_disabled=policies_available_but_disabled,
            dataset=dataset,
            namespace=namespace,
        )
        report = AnalysisReport(application=application, dataset=dataset)
        for rule in self.rules.rules_for(context):
            report.add(rule.evaluate(context))
        return report

    # Runtime observation ------------------------------------------------------------
    def _observe(
        self, rendered: RenderedChart, behaviors: BehaviorRegistry | None
    ) -> RuntimeObservation:
        """Install the chart into a clean cluster and take the double snapshot."""
        cluster = self._cluster_factory(behaviors or BehaviorRegistry())
        cluster.install(rendered)
        scanner = RuntimeScanner(cluster)
        observation = scanner.observe(
            rendered.release.name,
            restart_between_snapshots=self.settings.double_snapshot,
        )
        if not self.settings.host_port_filtering:
            observation.host_ports = set()
        return observation

    @staticmethod
    def _chart_defines_disabled_policies(chart: Chart, rendered: RenderedChart) -> bool:
        """True when the chart has NetworkPolicy templates that did not render."""
        if rendered.objects_of_kind("NetworkPolicy"):
            return False
        sources = [template.source for template in chart.templates]
        for subchart in chart.subcharts.values():
            sources.extend(template.source for template in subchart.templates)
        return any("kind: NetworkPolicy" in source for source in sources)

    # Cluster-wide pass ------------------------------------------------------------------
    def analyze_cluster_wide(
        self, applications: list[ApplicationInventory]
    ) -> dict[str, list[Finding]]:
        """Detect global collisions (M4*) across all analyzed applications.

        Returns the extra findings grouped by application name, ready to be
        appended to the per-application reports.
        """
        grouped: dict[str, list[Finding]] = {}
        for finding in global_collision_findings(applications):
            grouped.setdefault(finding.application, []).append(finding)
        return grouped

    def merge_cluster_wide(
        self,
        reports: dict[str, AnalysisReport],
        applications: list[ApplicationInventory],
    ) -> dict[str, AnalysisReport]:
        """Append M4* findings to the per-application reports, in place."""
        extra = self.analyze_cluster_wide(applications)
        for application, findings in extra.items():
            if application in reports:
                reports[application].add(findings)
        return reports

    # Convenience ---------------------------------------------------------------------------
    def detected_classes(self, report: AnalysisReport) -> set[MisconfigClass]:
        return report.classes_present()
