"""Report formatting and multi-application aggregation.

Provides the text/JSON renderings of per-application reports and the
:class:`EvaluationSummary` used by the experiment harnesses to produce the
paper's Table 2 rows, Figure 3 rankings and Figure 4a distribution.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .findings import AnalysisReport, MisconfigClass, Severity, TABLE_ORDER


def format_report_text(report: AnalysisReport) -> str:
    """Human-readable, linter-style output for one application."""
    lines = [f"Application: {report.application}"]
    if report.dataset:
        lines.append(f"Dataset:     {report.dataset}")
    lines.append(f"Findings:    {report.total} ({report.type_count()} distinct types)")
    lines.append("")
    if not report.findings:
        lines.append("No network misconfigurations detected.")
        return "\n".join(lines)
    for finding in sorted(report.findings, key=lambda f: (f.misconfig_class.value, f.resource)):
        port = f" port {finding.port}" if finding.port is not None else ""
        lines.append(
            f"[{finding.misconfig_class.value}][{finding.severity.value.upper()}] "
            f"{finding.resource}{port}"
        )
        lines.append(f"    {finding.message}")
        if finding.mitigation:
            lines.append(f"    mitigation: {finding.mitigation}")
    return "\n".join(lines)


def format_report_json(report: AnalysisReport) -> str:
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)


def format_report_markdown(report: AnalysisReport) -> str:
    """Markdown table used in disclosure reports."""
    lines = [
        f"## {report.application}",
        "",
        "| Class | Severity | Resource | Port | Message |",
        "|---|---|---|---|---|",
    ]
    for finding in report.findings:
        port = str(finding.port) if finding.port is not None else "-"
        lines.append(
            f"| {finding.misconfig_class.value} | {finding.severity.value} "
            f"| `{finding.resource}` | {port} | {finding.message} |"
        )
    return "\n".join(lines)


@dataclass
class DatasetSummary:
    """One row of Table 2."""

    dataset: str
    total_applications: int = 0
    affected_applications: int = 0
    counts: dict[MisconfigClass, int] = field(default_factory=dict)

    @property
    def total_misconfigurations(self) -> int:
        return sum(self.counts.values())

    @property
    def average_per_application(self) -> float:
        if not self.total_applications:
            return 0.0
        return self.total_misconfigurations / self.total_applications

    def row(self) -> list:
        """``[dataset, affected/total, M1, M2, ..., M7]`` in paper column order."""
        cells: list = [self.dataset, f"{self.affected_applications} / {self.total_applications}"]
        cells.extend(self.counts.get(cls, 0) for cls in TABLE_ORDER)
        return cells


@dataclass
class EvaluationSummary:
    """Aggregation of per-application reports across datasets."""

    reports: list[AnalysisReport] = field(default_factory=list)

    def add(self, report: AnalysisReport) -> None:
        self.reports.append(report)

    # Totals ---------------------------------------------------------------
    @property
    def total_applications(self) -> int:
        return len(self.reports)

    @property
    def affected_applications(self) -> int:
        return sum(1 for report in self.reports if report.affected)

    @property
    def total_misconfigurations(self) -> int:
        return sum(report.total for report in self.reports)

    def counts_by_class(self) -> dict[MisconfigClass, int]:
        counts = {cls: 0 for cls in TABLE_ORDER}
        for report in self.reports:
            for cls, count in report.count_by_class().items():
                counts[cls] = counts.get(cls, 0) + count
        return counts

    def counts_by_severity(self) -> dict[Severity, int]:
        counts = {severity: 0 for severity in Severity}
        for report in self.reports:
            for severity, count in report.by_severity().items():
                counts[severity] += count
        return counts

    # Dataset grouping ----------------------------------------------------------
    def datasets(self) -> list[str]:
        return sorted({report.dataset for report in self.reports if report.dataset})

    def dataset_summary(self, dataset: str) -> DatasetSummary:
        summary = DatasetSummary(dataset=dataset, counts={cls: 0 for cls in TABLE_ORDER})
        for report in self.reports:
            if report.dataset != dataset:
                continue
            summary.total_applications += 1
            if report.affected:
                summary.affected_applications += 1
            for cls, count in report.count_by_class().items():
                summary.counts[cls] = summary.counts.get(cls, 0) + count
        return summary

    def dataset_summaries(self) -> list[DatasetSummary]:
        return [self.dataset_summary(dataset) for dataset in self.datasets()]

    # Rankings and distributions (Figures 3 and 4a) -----------------------------------
    def top_by_count(self, limit: int = 10) -> list[AnalysisReport]:
        return sorted(self.reports, key=lambda r: (-r.total, r.application))[:limit]

    def top_by_types(self, limit: int = 10) -> list[AnalysisReport]:
        return sorted(self.reports, key=lambda r: (-r.type_count(), -r.total, r.application))[:limit]

    def distribution(self) -> list[int]:
        """Misconfiguration count per application, sorted descending (Figure 4a)."""
        return sorted((report.total for report in self.reports), reverse=True)

    def concentration(self, threshold: int) -> tuple[float, float]:
        """Share of applications with >= ``threshold`` findings and their share of findings."""
        if not self.reports or not self.total_misconfigurations:
            return 0.0, 0.0
        heavy = [report for report in self.reports if report.total >= threshold]
        app_share = len(heavy) / self.total_applications
        finding_share = sum(report.total for report in heavy) / self.total_misconfigurations
        return app_share, finding_share

    # Formatting ----------------------------------------------------------------------------
    def table2_text(self) -> str:
        """Render the Table 2 equivalent as aligned text."""
        header = ["Dataset", "Affected apps"] + [cls.value for cls in TABLE_ORDER]
        rows = [summary.row() for summary in self.dataset_summaries()]
        totals = ["Total", f"{self.affected_applications} / {self.total_applications}"]
        class_totals = self.counts_by_class()
        totals.extend(class_totals[cls] for cls in TABLE_ORDER)
        rows.append(totals)
        widths = [max(len(str(row[i])) for row in [header] + rows) for i in range(len(header))]
        lines = ["  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(header))]
        for row in rows:
            lines.append("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "total_applications": self.total_applications,
            "affected_applications": self.affected_applications,
            "total_misconfigurations": self.total_misconfigurations,
            "by_class": {cls.value: count for cls, count in self.counts_by_class().items()},
            "datasets": {
                summary.dataset: {
                    "applications": summary.total_applications,
                    "affected": summary.affected_applications,
                    "total": summary.total_misconfigurations,
                    "by_class": {cls.value: count for cls, count in summary.counts.items()},
                }
                for summary in self.dataset_summaries()
            },
        }
