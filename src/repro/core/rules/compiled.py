"""The compiled single-pass rule engine.

The seed analyzer evaluated rules one at a time, and every rule re-walked
the same inventory: seven rules iterate the compute units, five iterate the
services, and each recomputed snapshots, port sets and selector matches on
the way.  This module fuses the registered rule set into **one** evaluation
pass:

* every rule describes itself to a :class:`FusedPlan` through
  :meth:`~repro.core.rules.base.Rule.compile_into` -- a per-unit emitter, a
  per-service emitter, and/or a finalizer, each writing into the rule's own
  ordered finding bucket;
* the engine walks ``context.compute_units()`` once and dispatches every
  unit emitter per unit, walks ``context.services()`` once and dispatches
  every service emitter, then runs the finalizers (rules that aggregate
  across the walk, e.g. the M4A label grouping and the M6 protection
  census);
* shared lookups -- owner→snapshots, stable/dynamic port sets, selector
  matches -- come from the indexed :class:`~repro.core.context
  .AnalysisContext` and the inventory's frozen indexes, so they are computed
  once per chart instead of once per rule.

Because the emitters are the *same functions* the rule-at-a-time reference
path (``compiled_rules=False``) runs inside ``Rule.evaluate``, and because
buckets are concatenated in registry order, the fused pass produces
byte-identical findings in byte-identical order; the differential suite in
``tests/property/test_rule_engine.py`` proves it over the full catalogue and
Hypothesis-generated applications.  Rules that do not implement
``compile_into`` (custom rule classes) transparently fall back to their
``evaluate`` method, keeping the registry extensible.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from ..context import AnalysisContext
from ..findings import Finding
from .base import Rule, RuleRegistry

#: Emitter signatures (state is a per-rule, per-evaluation scratch dict).
UnitEmitter = Callable[[AnalysisContext, object, dict, list], None]
ServiceEmitter = Callable[[AnalysisContext, object, dict, list], None]
Finalizer = Callable[[AnalysisContext, dict, list], None]


class FusedPlan:
    """Collects the emitters of every compiled rule, in registration order."""

    def __init__(self) -> None:
        self.unit_emitters: List[Tuple[Rule, UnitEmitter]] = []
        self.service_emitters: List[Tuple[Rule, ServiceEmitter]] = []
        self.finalizers: List[Tuple[Rule, Finalizer]] = []

    def on_unit(self, rule: Rule, emitter: UnitEmitter) -> None:
        """Run ``emitter`` for every compute unit of the shared walk."""
        self.unit_emitters.append((rule, emitter))

    def on_service(self, rule: Rule, emitter: ServiceEmitter) -> None:
        """Run ``emitter`` for every service of the shared walk."""
        self.service_emitters.append((rule, emitter))

    def finalize(self, rule: Rule, finalizer: Finalizer) -> None:
        """Run ``finalizer`` once, after both walks."""
        self.finalizers.append((rule, finalizer))


def evaluate_fused(
    registry: RuleRegistry, context: AnalysisContext
) -> list[tuple[Rule, list[Finding]]]:
    """Evaluate every applicable rule of ``registry`` in one fused pass.

    Returns ``(rule, findings)`` pairs in registry order -- exactly what the
    reference loop ``[(rule, rule.evaluate(context)) for rule in
    registry.rules_for(context)]`` returns, computed with one walk over the
    compute units and one over the services.
    """
    applicable = registry.rules_for(context)
    plan = FusedPlan()
    fallback: list[Rule] = []
    for rule in applicable:
        if not rule.compile_into(plan):
            fallback.append(rule)
    buckets: dict[Rule, list[Finding]] = {rule: [] for rule in applicable}
    states: dict[Rule, dict] = {rule: {} for rule in applicable}
    # Pre-bind each emitter to its state and bucket once, so the inner
    # dispatch loop is a plain tuple unpack per (unit, emitter) pair.
    if plan.unit_emitters:
        dispatch = [
            (emitter, states[rule], buckets[rule]) for rule, emitter in plan.unit_emitters
        ]
        for unit in context.compute_units():
            for emitter, state, bucket in dispatch:
                emitter(context, unit, state, bucket)
    if plan.service_emitters:
        dispatch = [
            (emitter, states[rule], buckets[rule])
            for rule, emitter in plan.service_emitters
        ]
        for service in context.services():
            for emitter, state, bucket in dispatch:
                emitter(context, service, state, bucket)
    for rule, finalizer in plan.finalizers:
        finalizer(context, states[rule], buckets[rule])
    for rule in fallback:
        buckets[rule] = rule.evaluate(context)
    return [(rule, buckets[rule]) for rule in applicable]
