"""Detection rules, one module per misconfiguration family."""

from .base import HYBRID, RUNTIME, STATIC, Rule, RuleRegistry, default_rule, default_rules
from .compiled import FusedPlan, evaluate_fused
from .labels import ComputeUnitCollisionRule, ComputeUnitSubsetCollisionRule, ServiceLabelCollisionRule
from .policies import HostNetworkRule, LackOfNetworkPoliciesRule
from .ports import DeclaredClosedPortsRule, DynamicPortsRule, UndeclaredOpenPortsRule
from .services import (
    HeadlessServicePortUnavailableRule,
    ServiceTargetsUndeclaredPortRule,
    ServiceTargetsUnopenedPortRule,
    ServiceWithoutTargetRule,
    service_target_summary,
)

__all__ = [
    "HYBRID",
    "RUNTIME",
    "STATIC",
    "ComputeUnitCollisionRule",
    "ComputeUnitSubsetCollisionRule",
    "DeclaredClosedPortsRule",
    "DynamicPortsRule",
    "FusedPlan",
    "HeadlessServicePortUnavailableRule",
    "HostNetworkRule",
    "LackOfNetworkPoliciesRule",
    "Rule",
    "RuleRegistry",
    "ServiceLabelCollisionRule",
    "ServiceTargetsUndeclaredPortRule",
    "ServiceTargetsUnopenedPortRule",
    "ServiceWithoutTargetRule",
    "UndeclaredOpenPortsRule",
    "default_rule",
    "default_rules",
    "evaluate_fused",
    "service_target_summary",
]
