"""Port-mismatch rules: M1 (undeclared open), M2 (dynamic), M3 (declared closed).

These rules compare the declarative ``containerPort`` list of each compute
unit against the runtime observation of its pods (Section 3.3, Figure 1).
All three are per-unit emitters shared by the rule-at-a-time reference path
and the compiled single-pass engine (:mod:`repro.core.rules.compiled`); the
port sets they consume come memoized from the indexed analysis context, so
the fused pass computes each unit's stable/dynamic sets once for all rules.
"""

from __future__ import annotations

from ..context import AnalysisContext
from ..findings import Finding, MisconfigClass
from .base import HYBRID, RUNTIME, Rule, default_rule
from ...k8s import ComputeUnit


@default_rule
class UndeclaredOpenPortsRule(Rule):
    """M1: a container listens on a port that the configuration never declares.

    Dynamic ports are excluded here -- they are reported separately as M2 --
    so only ports stable across both snapshots are considered.
    """

    produces = (MisconfigClass.M1,)
    requires = HYBRID

    def evaluate(self, context: AnalysisContext) -> list[Finding]:
        findings: list[Finding] = []
        for unit in context.compute_units():
            self._check_unit(context, unit, {}, findings)
        return findings

    def compile_into(self, plan) -> bool:
        plan.on_unit(self, self._check_unit)
        return True

    @staticmethod
    def _check_unit(
        context: AnalysisContext, unit: ComputeUnit, state: dict, out: list[Finding]
    ) -> None:
        declared = unit.declared_port_numbers("TCP")
        observed = context.stable_open_ports(unit, "TCP")
        dynamic = context.dynamic_ports(unit, "TCP")
        for port in sorted(observed - declared - dynamic):
            out.append(
                Finding(
                    misconfig_class=MisconfigClass.M1,
                    application=context.application,
                    resource=unit.qualified_name(),
                    port=port,
                    message=(
                        f"{unit.kind} {unit.name!r} listens on TCP port {port} "
                        "which is not declared in its container ports"
                    ),
                    evidence={"declared": sorted(declared), "observed": sorted(observed)},
                    mitigation=(
                        f"Declare containerPort {port} in the pod template of {unit.name!r} "
                        "so that network policies and reviewers see the real attack surface."
                    ),
                )
            )


@default_rule
class DynamicPortsRule(Rule):
    """M2: a container allocates dynamic (ephemeral) ports.

    Detected by comparing two runtime snapshots taken across an application
    restart: ports that appear in only one snapshot are dynamic.
    """

    produces = (MisconfigClass.M2,)
    requires = RUNTIME

    def evaluate(self, context: AnalysisContext) -> list[Finding]:
        findings: list[Finding] = []
        for unit in context.compute_units():
            self._check_unit(context, unit, {}, findings)
        return findings

    def compile_into(self, plan) -> bool:
        plan.on_unit(self, self._check_unit)
        return True

    @staticmethod
    def _check_unit(
        context: AnalysisContext, unit: ComputeUnit, state: dict, out: list[Finding]
    ) -> None:
        dynamic = context.dynamic_ports(unit, "TCP") | context.dynamic_ports(unit, "UDP")
        if not dynamic:
            return
        out.append(
            Finding(
                misconfig_class=MisconfigClass.M2,
                application=context.application,
                resource=unit.qualified_name(),
                message=(
                    f"{unit.kind} {unit.name!r} listens on dynamic ports "
                    f"({', '.join(str(p) for p in sorted(dynamic))} observed); these cannot be "
                    "declared nor restricted by network policies"
                ),
                evidence={"observed_dynamic": sorted(dynamic)},
                mitigation=(
                    "Configure the application to use a static port (for example through an "
                    "environment variable) or document the dynamic range and isolate the pod."
                ),
            )
        )


@default_rule
class DeclaredClosedPortsRule(Rule):
    """M3: a declared container port is not actually open at runtime."""

    produces = (MisconfigClass.M3,)
    requires = HYBRID

    def evaluate(self, context: AnalysisContext) -> list[Finding]:
        findings: list[Finding] = []
        for unit in context.compute_units():
            self._check_unit(context, unit, {}, findings)
        return findings

    def compile_into(self, plan) -> bool:
        plan.on_unit(self, self._check_unit)
        return True

    @staticmethod
    def _check_unit(
        context: AnalysisContext, unit: ComputeUnit, state: dict, out: list[Finding]
    ) -> None:
        declared = unit.declared_port_numbers("TCP")
        observed = context.stable_open_ports(unit, "TCP")
        if not context.snapshots_for(unit):
            # The unit produced no running pods (e.g. a suspended CronJob):
            # nothing can be said about its runtime behaviour.
            return
        for port in sorted(declared - observed):
            out.append(
                Finding(
                    misconfig_class=MisconfigClass.M3,
                    application=context.application,
                    resource=unit.qualified_name(),
                    port=port,
                    message=(
                        f"{unit.kind} {unit.name!r} declares containerPort {port} "
                        "but nothing is listening on it at runtime"
                    ),
                    evidence={"declared": sorted(declared), "observed": sorted(observed)},
                    mitigation=(
                        f"Remove the unused containerPort {port} declaration or enable the "
                        "feature that is supposed to listen on it."
                    ),
                )
            )
