"""Service reference rules: M5A, M5B, M5C and M5D.

All four are per-service emitters shared by the rule-at-a-time reference
path and the compiled single-pass engine (:mod:`repro.core.rules.compiled`);
the selected-unit lists and per-unit port sets they consume come memoized
from the indexed analysis context, so the fused pass resolves each service's
backends once for all rules.
"""

from __future__ import annotations

from ..context import AnalysisContext
from ..findings import Finding, MisconfigClass
from .base import HYBRID, STATIC, Rule, default_rule
from ...k8s import ComputeUnit, Service


def _resolve_target_port(service_port, units: list[ComputeUnit]) -> int | None:
    """Resolve a (possibly named) target port against the selected units."""
    target = service_port.resolved_target()
    if isinstance(target, int):
        return target
    for unit in units:
        resolved = unit.resolve_port_name(str(target))
        if resolved is not None:
            return resolved
    return None


@default_rule
class ServiceTargetsUnopenedPortRule(Rule):
    """M5A: a service forwards to a port that is declared but never opened.

    This amplifies M3: services are the preferred way to contact applications,
    so requests routed to the dead port silently fail (or can be intercepted
    by an attacker that starts listening on it).
    """

    produces = (MisconfigClass.M5A,)
    requires = HYBRID

    def evaluate(self, context: AnalysisContext) -> list[Finding]:
        findings: list[Finding] = []
        for service in context.services():
            self._check_service(context, service, {}, findings)
        return findings

    def compile_into(self, plan) -> bool:
        plan.on_service(self, self._check_service)
        return True

    @staticmethod
    def _check_service(
        context: AnalysisContext, service: Service, state: dict, out: list[Finding]
    ) -> None:
        if service.is_headless:
            return
        units = context.units_selected_by(service)
        if not units:
            return
        observed: set[int] = set()
        declared: set[int] = set()
        for unit in units:
            observed.update(context.stable_open_ports(unit, "TCP"))
            observed.update(context.dynamic_ports(unit, "TCP"))
            declared.update(unit.declared_port_numbers("TCP"))
        for service_port in service.ports:
            target = _resolve_target_port(service_port, units)
            if target is None:
                target_raw = service_port.resolved_target()
                target = target_raw if isinstance(target_raw, int) else None
            if target is None:
                continue
            if target not in observed:
                declaration = "declared but not open" if target in declared else "not open"
                out.append(
                    Finding(
                        misconfig_class=MisconfigClass.M5A,
                        application=context.application,
                        resource=service.qualified_name(),
                        port=service_port.port,
                        related_resources=tuple(unit.qualified_name() for unit in units),
                        message=(
                            f"service {service.name!r} port {service_port.port} targets "
                            f"container port {target}, which is {declaration} on any "
                            "selected pod; requests routed there fail or can be intercepted"
                        ),
                        evidence={"target_port": target, "observed": sorted(observed)},
                        mitigation=(
                            "Point the service at a port the application actually opens, or "
                            "enable the feature that listens on the target port."
                        ),
                    )
                )


@default_rule
class ServiceTargetsUndeclaredPortRule(Rule):
    """M5B: a service forwards to a port that the pod template never declares."""

    produces = (MisconfigClass.M5B,)
    requires = STATIC

    def evaluate(self, context: AnalysisContext) -> list[Finding]:
        findings: list[Finding] = []
        for service in context.services():
            self._check_service(context, service, {}, findings)
        return findings

    def compile_into(self, plan) -> bool:
        plan.on_service(self, self._check_service)
        return True

    @staticmethod
    def _check_service(
        context: AnalysisContext, service: Service, state: dict, out: list[Finding]
    ) -> None:
        if service.is_headless:
            # Headless services with unavailable ports are reported as M5C.
            return
        units = context.units_selected_by(service)
        if not units:
            return
        declared: set[int] = set()
        observed: set[int] = set()
        for unit in units:
            declared.update(unit.declared_port_numbers())
            observed.update(context.stable_open_ports(unit, "TCP"))
            observed.update(context.dynamic_ports(unit, "TCP"))
        for service_port in service.ports:
            target = service_port.resolved_target()
            if isinstance(target, str):
                # A named port that no selected unit declares is also undeclared.
                if any(unit.resolve_port_name(target) is not None for unit in units):
                    continue
                resolved = None
            else:
                resolved = target
                if target in declared:
                    continue
                if context.has_runtime and target not in observed:
                    # Neither declared nor open: reported as M5A (dead
                    # endpoint) rather than as an evasion-style M5B.
                    continue
            out.append(
                Finding(
                    misconfig_class=MisconfigClass.M5B,
                    application=context.application,
                    resource=service.qualified_name(),
                    port=service_port.port,
                    related_resources=tuple(unit.qualified_name() for unit in units),
                    message=(
                        f"service {service.name!r} port {service_port.port} targets "
                        f"{target!r}, which is not declared by any selected compute unit"
                    ),
                    evidence={"target_port": resolved, "declared": sorted(declared)},
                    mitigation=(
                        "Declare the target port on the pod template, or fix the service's "
                        "targetPort so static checks and policy generators see the real flow."
                    ),
                )
            )


@default_rule
class HeadlessServicePortUnavailableRule(Rule):
    """M5C: a headless service names a port that its pods do not open."""

    produces = (MisconfigClass.M5C,)
    requires = HYBRID

    def evaluate(self, context: AnalysisContext) -> list[Finding]:
        findings: list[Finding] = []
        for service in context.services():
            self._check_service(context, service, {}, findings)
        return findings

    def compile_into(self, plan) -> bool:
        plan.on_service(self, self._check_service)
        return True

    @staticmethod
    def _check_service(
        context: AnalysisContext, service: Service, state: dict, out: list[Finding]
    ) -> None:
        if not service.is_headless:
            return
        units = context.units_selected_by(service)
        if not units:
            return
        observed: set[int] = set()
        for unit in units:
            observed.update(context.stable_open_ports(unit, "TCP"))
            observed.update(context.dynamic_ports(unit, "TCP"))
        for service_port in service.ports:
            target = _resolve_target_port(service_port, units)
            if target is None or target in observed:
                continue
            out.append(
                Finding(
                    misconfig_class=MisconfigClass.M5C,
                    application=context.application,
                    resource=service.qualified_name(),
                    port=service_port.port,
                    related_resources=tuple(unit.qualified_name() for unit in units),
                    message=(
                        f"headless service {service.name!r} exposes port {service_port.port} "
                        f"(target {target}) but the selected pods do not listen on it; "
                        "clients resolving the DNS record will fail to connect"
                    ),
                    evidence={"target_port": target, "observed": sorted(observed)},
                    mitigation=(
                        "Remove the port from the headless service or align it with a port "
                        "the application opens (headless services do not remap ports)."
                    ),
                )
            )


@default_rule
class ServiceWithoutTargetRule(Rule):
    """M5D: a service whose selector matches no compute unit at all."""

    produces = (MisconfigClass.M5D,)
    requires = STATIC

    def evaluate(self, context: AnalysisContext) -> list[Finding]:
        findings: list[Finding] = []
        for service in context.services():
            self._check_service(context, service, {}, findings)
        return findings

    def compile_into(self, plan) -> bool:
        plan.on_service(self, self._check_service)
        return True

    @staticmethod
    def _check_service(
        context: AnalysisContext, service: Service, state: dict, out: list[Finding]
    ) -> None:
        if not service.has_selector:
            # Selector-less services are managed manually (external
            # endpoints); Kubernetes does not expect pods to match them.
            return
        if context.units_selected_by(service):
            return
        out.append(
            Finding(
                misconfig_class=MisconfigClass.M5D,
                application=context.application,
                resource=service.qualified_name(),
                message=(
                    f"service {service.name!r} selects labels "
                    f"{service.selector.match_labels.to_dict()} but no compute unit matches; "
                    "any pod deploying those labels would silently receive its traffic"
                ),
                evidence={"selector": service.selector.to_dict()},
                mitigation=(
                    "Fix the selector so it matches the intended compute unit, or delete the "
                    "orphaned service."
                ),
            )
        )


def service_target_summary(context: AnalysisContext, service: Service) -> dict:
    """Debugging helper: how each port of a service resolves at runtime."""
    units = context.units_selected_by(service)
    summary: dict = {"service": service.qualified_name(), "targets": []}
    for service_port in service.ports:
        summary["targets"].append(
            {
                "port": service_port.port,
                "target": service_port.resolved_target(),
                "resolved": _resolve_target_port(service_port, units),
                "backends": [unit.qualified_name() for unit in units],
            }
        )
    return summary
