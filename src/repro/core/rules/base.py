"""Base class and registry for misconfiguration detection rules."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Type

from ..context import AnalysisContext
from ..findings import Finding, MisconfigClass

#: The three kinds of input a rule requires.
STATIC = "static"
RUNTIME = "runtime"
HYBRID = "hybrid"


class Rule(ABC):
    """A single machine-readable detection rule (Section 4.2.1)."""

    #: The misconfiguration classes this rule can emit.
    produces: tuple[MisconfigClass, ...] = ()
    #: Whether the rule needs static manifests, runtime observations, or both.
    requires: str = STATIC

    @property
    def name(self) -> str:
        return type(self).__name__

    def applicable(self, context: AnalysisContext) -> bool:
        """A rule is skipped when its required inputs are unavailable."""
        if self.requires in (RUNTIME, HYBRID):
            return context.has_runtime
        return True

    @abstractmethod
    def evaluate(self, context: AnalysisContext) -> list[Finding]:
        """Produce the findings for one application."""

    def compile_into(self, plan) -> bool:
        """Register fused-pass emitters with a compiled-engine plan.

        The compiled engine (:mod:`repro.core.rules.compiled`) walks compute
        units and services once and dispatches every registered emitter from
        the shared walk.  A rule that contributes emitters returns ``True``;
        the default ``False`` makes the engine fall back to calling
        :meth:`evaluate` for this rule (custom rules therefore keep working
        unchanged under ``compiled_rules=True``).  Registration must be
        all-or-nothing: a rule either fully describes itself to the plan or
        leaves it untouched.
        """
        return False


class RuleRegistry:
    """Holds the active rule set; the analyzer iterates over it."""

    def __init__(self, rules: Iterable[Rule] = ()) -> None:
        self._rules: list[Rule] = list(rules)
        self._snapshot: list[Rule] | None = None

    def register(self, rule: Rule) -> None:
        self._rules.append(rule)
        self._snapshot = None

    def rules(self) -> list[Rule]:
        """The registered rules, as a cached read-only snapshot list.

        The seed copied the list on every call; rule evaluation asks for it
        per chart, so the copy showed up in the catalogue sweep.  The cache
        is invalidated by :meth:`register`.
        """
        if self._snapshot is None:
            self._snapshot = list(self._rules)
        return self._snapshot

    def rules_for(self, context: AnalysisContext) -> list[Rule]:
        return [rule for rule in self._rules if rule.applicable(context)]

    def covering(self, misconfig_class: MisconfigClass) -> list[Rule]:
        return [rule for rule in self._rules if misconfig_class in rule.produces]

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self):
        return iter(self._rules)


_DEFAULT_RULE_CLASSES: list[Type[Rule]] = []


def default_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator registering a rule into the default rule set."""
    _DEFAULT_RULE_CLASSES.append(cls)
    return cls


def default_rules() -> RuleRegistry:
    """Instantiate the full default rule set (all of Table 1)."""
    return RuleRegistry(cls() for cls in _DEFAULT_RULE_CLASSES)
