"""Base class and registry for misconfiguration detection rules."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Type

from ..context import AnalysisContext
from ..findings import Finding, MisconfigClass

#: The three kinds of input a rule requires.
STATIC = "static"
RUNTIME = "runtime"
HYBRID = "hybrid"


class Rule(ABC):
    """A single machine-readable detection rule (Section 4.2.1)."""

    #: The misconfiguration classes this rule can emit.
    produces: tuple[MisconfigClass, ...] = ()
    #: Whether the rule needs static manifests, runtime observations, or both.
    requires: str = STATIC

    @property
    def name(self) -> str:
        return type(self).__name__

    def applicable(self, context: AnalysisContext) -> bool:
        """A rule is skipped when its required inputs are unavailable."""
        if self.requires in (RUNTIME, HYBRID):
            return context.has_runtime
        return True

    @abstractmethod
    def evaluate(self, context: AnalysisContext) -> list[Finding]:
        """Produce the findings for one application."""


class RuleRegistry:
    """Holds the active rule set; the analyzer iterates over it."""

    def __init__(self, rules: Iterable[Rule] = ()) -> None:
        self._rules: list[Rule] = list(rules)

    def register(self, rule: Rule) -> None:
        self._rules.append(rule)

    def rules(self) -> list[Rule]:
        return list(self._rules)

    def rules_for(self, context: AnalysisContext) -> list[Rule]:
        return [rule for rule in self._rules if rule.applicable(context)]

    def covering(self, misconfig_class: MisconfigClass) -> list[Rule]:
        return [rule for rule in self._rules if misconfig_class in rule.produces]

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self):
        return iter(self._rules)


_DEFAULT_RULE_CLASSES: list[Type[Rule]] = []


def default_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator registering a rule into the default rule set."""
    _DEFAULT_RULE_CLASSES.append(cls)
    return cls


def default_rules() -> RuleRegistry:
    """Instantiate the full default rule set (all of Table 1)."""
    return RuleRegistry(cls() for cls in _DEFAULT_RULE_CLASSES)
