"""Label collision rules: M4A, M4B and M4C (within a single application).

Cluster-wide collisions across applications (M4*) are handled separately by
:mod:`repro.core.cluster_wide` because they require the inventories of every
installed application at once.

Each rule is written as emitters shared by both evaluation paths: the
rule-at-a-time reference (``Rule.evaluate`` drives its own walk) and the
compiled single-pass engine (:mod:`repro.core.rules.compiled` dispatches the
same emitters from the shared walk), so the two paths agree byte-for-byte by
construction.
"""

from __future__ import annotations

from ..context import AnalysisContext
from ..findings import Finding, MisconfigClass
from .base import STATIC, Rule, default_rule
from ...k8s import ComputeUnit, LabelSet, Service


@default_rule
class ComputeUnitCollisionRule(Rule):
    """M4A: two unrelated compute units carry the same pod label set."""

    produces = (MisconfigClass.M4A,)
    requires = STATIC

    def evaluate(self, context: AnalysisContext) -> list[Finding]:
        findings: list[Finding] = []
        state: dict = {}
        for unit in context.compute_units():
            self._collect(context, unit, state, findings)
        self._emit(context, state, findings)
        return findings

    def compile_into(self, plan) -> bool:
        plan.on_unit(self, self._collect)
        plan.finalize(self, self._emit)
        return True

    @staticmethod
    def _collect(
        context: AnalysisContext, unit: ComputeUnit, state: dict, out: list[Finding]
    ) -> None:
        labels = unit.pod_labels()
        if type(labels) is not LabelSet:
            labels = LabelSet(labels)
        if not labels:
            return
        # Grouping hashes the unit's own LabelSet: on interned objects the
        # hash memo persists across charts, so the M4A grouping is a dict
        # insert per unit instead of a frozenset build.
        state.setdefault(labels, []).append(unit)

    @staticmethod
    def _emit(context: AnalysisContext, state: dict, out: list[Finding]) -> None:
        for labels, units in state.items():
            if len(units) < 2:
                continue
            names = tuple(sorted(unit.qualified_name() for unit in units))
            out.append(
                Finding(
                    misconfig_class=MisconfigClass.M4A,
                    application=context.application,
                    resource=names[0],
                    related_resources=names[1:],
                    message=(
                        "compute units "
                        + ", ".join(names)
                        + f" share the exact same labels {dict(labels)}; services and policies "
                        "targeting one of them also target the others"
                    ),
                    evidence={"labels": dict(labels)},
                    mitigation=(
                        "Add a distinguishing label (e.g. app.kubernetes.io/component) to each "
                        "compute unit so selectors can tell them apart."
                    ),
                )
            )


@default_rule
class ServiceLabelCollisionRule(Rule):
    """M4B: multiple services select the same compute unit."""

    produces = (MisconfigClass.M4B,)
    requires = STATIC

    def evaluate(self, context: AnalysisContext) -> list[Finding]:
        findings: list[Finding] = []
        for unit in context.compute_units():
            self._check_unit(context, unit, {}, findings)
        return findings

    def compile_into(self, plan) -> bool:
        plan.on_unit(self, self._check_unit)
        return True

    @staticmethod
    def _check_unit(
        context: AnalysisContext, unit: ComputeUnit, state: dict, out: list[Finding]
    ) -> None:
        selecting = context.services_selecting(unit.pod_labels(), unit.namespace)
        if len(selecting) < 2:
            return
        service_names = tuple(sorted(service.qualified_name() for service in selecting))
        out.append(
            Finding(
                misconfig_class=MisconfigClass.M4B,
                application=context.application,
                resource=unit.qualified_name(),
                related_resources=service_names,
                message=(
                    f"{len(selecting)} services ({', '.join(s.name for s in selecting)}) "
                    f"select the same compute unit {unit.name!r}; a pod matching those labels "
                    "receives traffic intended for all of them"
                ),
                evidence={"services": [s.name for s in selecting]},
                mitigation=(
                    "Give each service a dedicated selector (unique label on the target "
                    "compute unit) unless the sharing is intentional."
                ),
            )
        )


@default_rule
class ComputeUnitSubsetCollisionRule(Rule):
    """M4C: one service selects unrelated compute units via a shared label subset."""

    produces = (MisconfigClass.M4C,)
    requires = STATIC

    def evaluate(self, context: AnalysisContext) -> list[Finding]:
        findings: list[Finding] = []
        for service in context.services():
            self._check_service(context, service, {}, findings)
        return findings

    def compile_into(self, plan) -> bool:
        plan.on_service(self, self._check_service)
        return True

    @staticmethod
    def _check_service(
        context: AnalysisContext, service: Service, state: dict, out: list[Finding]
    ) -> None:
        if not service.has_selector:
            return
        selected = context.units_selected_by(service)
        if len(selected) < 2:
            return
        # Unrelated units: their full label sets differ even though the
        # service selector matches all of them.
        label_sets = {LabelSet(unit.pod_labels()) for unit in selected}
        if len(label_sets) < 2:
            # Identical label sets are already reported as M4A.
            return
        names = tuple(sorted(unit.qualified_name() for unit in selected))
        out.append(
            Finding(
                misconfig_class=MisconfigClass.M4C,
                application=context.application,
                resource=service.qualified_name(),
                related_resources=names,
                message=(
                    f"service {service.name!r} selects {len(selected)} unrelated compute units "
                    f"({', '.join(unit.name for unit in selected)}) because they share the "
                    f"label subset {service.selector.match_labels.to_dict()}"
                ),
                evidence={"selector": service.selector.to_dict()},
                mitigation=(
                    "Narrow the service selector (or the compute unit labels) so it matches "
                    "only the intended backends."
                ),
            )
        )
