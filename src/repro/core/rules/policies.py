"""Isolation rules: M6 (lack of network policies) and M7 (host network).

Both rules are written as emitters shared by the rule-at-a-time reference
path and the compiled single-pass engine (see
:mod:`repro.core.rules.compiled`); M6 aggregates its protection census over
the unit walk and emits in a finalizer.
"""

from __future__ import annotations

from ..context import AnalysisContext
from ..findings import Finding, MisconfigClass
from .base import STATIC, Rule, default_rule
from ...k8s import ComputeUnit


@default_rule
class LackOfNetworkPoliciesRule(Rule):
    """M6: the application ships without (enabled) network policies.

    Following Section 3.3, a chart that *defines* policies but leaves them
    disabled by default is also flagged: the rendered manifests contain no
    NetworkPolicy object, so the deployed application is unprotected.
    """

    produces = (MisconfigClass.M6,)
    requires = STATIC

    def evaluate(self, context: AnalysisContext) -> list[Finding]:
        findings: list[Finding] = []
        state: dict = {}
        for unit in context.compute_units():
            self._census(context, unit, state, findings)
        self._emit(context, state, findings)
        return findings

    def compile_into(self, plan) -> bool:
        plan.on_unit(self, self._census)
        plan.finalize(self, self._emit)
        return True

    @staticmethod
    def _census(
        context: AnalysisContext, unit: ComputeUnit, state: dict, out: list[Finding]
    ) -> None:
        state["has_units"] = True
        if not state.get("protected") and context.policies_selecting(
            unit.pod_labels(), unit.namespace
        ):
            state["protected"] = True

    @staticmethod
    def _emit(context: AnalysisContext, state: dict, out: list[Finding]) -> None:
        if not state.get("has_units"):
            return
        policies = context.network_policies()
        if policies and state.get("protected"):
            return
        if context.network_policies_available_but_disabled:
            message = (
                "the chart defines NetworkPolicy templates but they are disabled by default; "
                "the deployed application has no isolation between its pods and the rest of "
                "the cluster"
            )
        elif policies:
            message = (
                "the chart renders NetworkPolicy objects but none of them selects the "
                "application's pods; the policies have no effect"
            )
        else:
            message = (
                "the application does not define any NetworkPolicy; every pod in the cluster "
                "can reach every port it opens (default allow-all)"
            )
        out.append(
            Finding(
                misconfig_class=MisconfigClass.M6,
                application=context.application,
                resource=context.application,
                message=message,
                evidence={
                    "policies_defined": len(policies),
                    "policies_available_but_disabled": context.network_policies_available_but_disabled,
                },
                mitigation=(
                    "Define and enable NetworkPolicy objects that select every pod of the "
                    "application and allow only the connections it needs."
                ),
            )
        )


@default_rule
class HostNetworkRule(Rule):
    """M7: a compute unit binds its pods to the host network namespace."""

    produces = (MisconfigClass.M7,)
    requires = STATIC

    def evaluate(self, context: AnalysisContext) -> list[Finding]:
        findings: list[Finding] = []
        for unit in context.compute_units():
            self._check_unit(context, unit, {}, findings)
        return findings

    def compile_into(self, plan) -> bool:
        plan.on_unit(self, self._check_unit)
        return True

    @staticmethod
    def _check_unit(
        context: AnalysisContext, unit: ComputeUnit, state: dict, out: list[Finding]
    ) -> None:
        if not unit.uses_host_network():
            return
        out.append(
            Finding(
                misconfig_class=MisconfigClass.M7,
                application=context.application,
                resource=unit.qualified_name(),
                message=(
                    f"{unit.kind} {unit.name!r} sets hostNetwork: true; its ports are exposed "
                    "on the node itself and NetworkPolicies attached to the pod have no effect"
                ),
                evidence={"hostNetwork": True},
                mitigation=(
                    "Set hostNetwork to false unless host-level access is strictly required; "
                    "if it is, audit the exposed ports and firewall them at the node level."
                ),
            )
        )
