"""The analysis context shared by all detection rules.

A rule sees two views of an application:

* the **static view**: the Kubernetes objects produced by rendering the
  chart (compute units, services, network policies, labels, declared ports);
* the **runtime view** (optional): the consolidated
  :class:`~repro.probe.RuntimeObservation` obtained by installing the chart
  into a clean cluster and taking double snapshots.

The context also records whether the chart *defines* network policies that
are merely disabled by default, which the paper still counts as M6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..k8s import ComputeUnit, Inventory, Service
from ..probe import PodSnapshot, RuntimeObservation


@dataclass
class AnalysisContext:
    """Everything a rule needs to evaluate one application."""

    application: str
    inventory: Inventory
    observation: RuntimeObservation | None = None
    #: The chart ships NetworkPolicy templates that are disabled by values.
    network_policies_available_but_disabled: bool = False
    dataset: str = ""
    namespace: str = "default"
    extra: dict = field(default_factory=dict)

    # Static helpers --------------------------------------------------------
    def compute_units(self) -> list[ComputeUnit]:
        return self.inventory.compute_units()

    def services(self) -> list[Service]:
        return self.inventory.services()

    def network_policies(self):
        return self.inventory.network_policies()

    @property
    def has_runtime(self) -> bool:
        return self.observation is not None

    # Runtime helpers ----------------------------------------------------------
    def snapshots_for(self, unit: ComputeUnit) -> list[PodSnapshot]:
        """Runtime snapshots of the pods owned by a compute unit."""
        if self.observation is None:
            return []
        owner = unit.qualified_name()
        return [
            snapshot
            for snapshot in self.observation.pods()
            if snapshot.owner == owner
            or (not snapshot.owner and snapshot.pod_name.startswith(unit.name))
        ]

    def stable_open_ports(self, unit: ComputeUnit, protocol: str = "TCP") -> set[int]:
        """Ports observed open (in both snapshots) across the unit's pods."""
        ports: set[int] = set()
        if self.observation is None:
            return ports
        for snapshot in self.snapshots_for(unit):
            ports.update(self.observation.stable_open_ports(snapshot, protocol))
        return ports

    def dynamic_ports(self, unit: ComputeUnit, protocol: str = "TCP") -> set[int]:
        """Ports that changed between the two snapshots for the unit's pods."""
        ports: set[int] = set()
        if self.observation is None:
            return ports
        for snapshot in self.snapshots_for(unit):
            ports.update(self.observation.dynamic_ports(snapshot, protocol))
        return ports

    def open_ports_single_snapshot(self, unit: ComputeUnit, protocol: str = "TCP") -> set[int]:
        """Ports open in the first snapshot only (no dynamic-port filtering)."""
        ports: set[int] = set()
        if self.observation is None:
            return ports
        for snapshot in self.snapshots_for(unit):
            observed = snapshot.open_ports(protocol)
            if snapshot.host_network:
                observed = observed - self.observation.host_ports
            ports.update(observed)
        return ports

    def units_selected_by(self, service: Service) -> list[ComputeUnit]:
        return self.inventory.compute_units_selected_by(service)
