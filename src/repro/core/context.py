"""The analysis context shared by all detection rules.

A rule sees two views of an application:

* the **static view**: the Kubernetes objects produced by rendering the
  chart (compute units, services, network policies, labels, declared ports);
* the **runtime view** (optional): the consolidated
  :class:`~repro.probe.RuntimeObservation` obtained by installing the chart
  into a clean cluster and taking double snapshots.

The context also records whether the chart *defines* network policies that
are merely disabled by default, which the paper still counts as M6.

The helpers come in two gears.  With ``indexed=True`` (the default) the
context builds its per-chart indexes once -- an owner→snapshots index over
the observation (replacing the seed's O(units × pods) linear scan in
:meth:`snapshots_for`), a (pod name, namespace)→snapshot map for the second
snapshot, per-unit port-set memos, and the inventory's frozen selector
indexes -- and every rule answers from them.  ``indexed=False`` pins every
helper to the seed per-call linear scans: the reference implementation the
rule-engine differential suite (``tests/property/test_rule_engine.py``)
diffs the indexed path against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..k8s import ComputeUnit, Inventory, NetworkPolicy, Service
from ..probe import PodSnapshot, RuntimeObservation


@dataclass
class AnalysisContext:
    """Everything a rule needs to evaluate one application."""

    application: str
    inventory: Inventory
    observation: RuntimeObservation | None = None
    #: The chart ships NetworkPolicy templates that are disabled by values.
    network_policies_available_but_disabled: bool = False
    dataset: str = ""
    namespace: str = "default"
    extra: dict = field(default_factory=dict)
    #: ``False`` = seed-shaped per-call scans (the reference path).
    indexed: bool = True
    #: owner qualified-name -> [(position, snapshot)], observation order.
    _by_owner: dict | None = field(default=None, repr=False, compare=False)
    #: [(position, snapshot)] for snapshots without an owner record.
    _ownerless: list | None = field(default=None, repr=False, compare=False)
    #: (pod name, namespace) -> second-snapshot pod (first occurrence wins,
    #: matching ``ClusterSnapshot.pod``'s scan).
    _second_pods: dict | None = field(default=None, repr=False, compare=False)
    #: (unit qualified name, protocol) -> frozen port sets, per helper.
    _port_memo: dict = field(default_factory=dict, repr=False, compare=False)
    _snapshot_memo: dict = field(default_factory=dict, repr=False, compare=False)

    # Static helpers --------------------------------------------------------
    def compute_units(self) -> list[ComputeUnit]:
        return self.inventory.compute_units()

    def services(self) -> list[Service]:
        return self.inventory.services()

    def network_policies(self):
        return self.inventory.network_policies()

    def services_selecting(self, labels: Mapping[str, str], namespace: str) -> list[Service]:
        """Services whose selector matches ``labels`` in ``namespace``."""
        if self.indexed:
            return self.inventory.services_selecting(labels, namespace)
        return [
            service
            for service in self.inventory.services()
            if service.namespace == namespace
            and service.has_selector
            and service.selector.matches(labels)
        ]

    def policies_selecting(self, labels: Mapping[str, str], namespace: str) -> list[NetworkPolicy]:
        """Network policies selecting ``labels`` in ``namespace``."""
        if self.indexed:
            return self.inventory.policies_selecting(labels, namespace)
        return [
            policy
            for policy in self.inventory.network_policies()
            if policy.selects(labels, namespace)
        ]

    def units_selected_by(self, service: Service) -> list[ComputeUnit]:
        if self.indexed:
            return self.inventory.compute_units_selected_by(service)
        if not service.has_selector:
            return []
        return [
            unit
            for unit in self.inventory.compute_units()
            if unit.namespace == service.namespace
            and service.selector.matches(unit.pod_labels())
        ]

    @property
    def has_runtime(self) -> bool:
        return self.observation is not None

    # Runtime helpers ----------------------------------------------------------
    def snapshots_for(self, unit: ComputeUnit) -> list[PodSnapshot]:
        """Runtime snapshots of the pods owned by a compute unit."""
        if self.observation is None:
            return []
        if not self.indexed:
            return self._snapshots_for_scan(unit)
        key = unit.qualified_name()
        cached = self._snapshot_memo.get(key)
        if cached is not None:
            return cached
        if self._by_owner is None:
            self._build_snapshot_index()
        owned = self._by_owner.get(key, ())
        if self._ownerless:
            # Ownerless snapshots fall back to a name-prefix match; splice
            # them back at their original positions so the combined list
            # keeps the observation's pod order (the scan's output order).
            matches = [
                entry for entry in self._ownerless if entry[1].pod_name.startswith(unit.name)
            ]
            if matches:
                owned = sorted([*owned, *matches], key=lambda entry: entry[0])
        result = [snapshot for _, snapshot in owned]
        self._snapshot_memo[key] = result
        return result

    def _snapshots_for_scan(self, unit: ComputeUnit) -> list[PodSnapshot]:
        """The seed implementation: one linear scan per call."""
        owner = unit.qualified_name()
        return [
            snapshot
            for snapshot in self.observation.pods()
            if snapshot.owner == owner
            or (not snapshot.owner and snapshot.pod_name.startswith(unit.name))
        ]

    def _build_snapshot_index(self) -> None:
        by_owner: dict[str, list] = {}
        ownerless: list = []
        for position, snapshot in enumerate(self.observation.pods()):
            if snapshot.owner:
                by_owner.setdefault(snapshot.owner, []).append((position, snapshot))
            else:
                ownerless.append((position, snapshot))
        second: dict[tuple[str, str], PodSnapshot] = {}
        for snapshot in self.observation.second.pods:
            second.setdefault((snapshot.pod_name, snapshot.namespace), snapshot)
        self._by_owner = by_owner
        self._ownerless = ownerless
        self._second_pods = second

    def _second_pod(self, snapshot: PodSnapshot) -> PodSnapshot | None:
        if self._second_pods is None:
            self._build_snapshot_index()
        return self._second_pods.get((snapshot.pod_name, snapshot.namespace))

    def _port_facts(
        self, unit: ComputeUnit, protocol: str
    ) -> tuple[frozenset[int], frozenset[int]]:
        """``(stable, dynamic)`` port sets of a unit, computed in one pass.

        Both sets need the same first/second-snapshot port sets per pod, so
        they are derived together and memoized per (unit, protocol); every
        rule then reads the shared result.  The memo stores *frozensets*:
        the shared entries are handed out by reference, and a consumer that
        tries to mutate one (a pattern the per-call reference path happened
        to tolerate) fails loudly instead of corrupting later rules.
        """
        key = (unit.qualified_name(), protocol)
        cached = self._port_memo.get(key)
        if cached is None:
            stable: set[int] = set()
            dynamic: set[int] = set()
            host_ports = self.observation.host_ports
            for snapshot in self.snapshots_for(unit):
                first_ports = snapshot.open_ports(protocol)
                other = self._second_pod(snapshot)
                if other is None:
                    if snapshot.host_network:
                        first_ports = first_ports - host_ports
                    stable |= first_ports
                    continue
                second_ports = other.open_ports(protocol)
                if snapshot.host_network:
                    first_ports = first_ports - host_ports
                    second_ports = second_ports - host_ports
                stable |= first_ports & second_ports
                dynamic |= first_ports.symmetric_difference(second_ports)
            cached = (frozenset(stable), frozenset(dynamic))
            self._port_memo[key] = cached
        return cached

    def stable_open_ports(self, unit: ComputeUnit, protocol: str = "TCP") -> set[int]:
        """Ports observed open (in both snapshots) across the unit's pods.

        Indexed contexts return the shared memoized *frozenset* (mutation
        fails loudly); every in-tree consumer derives fresh sets from it.
        """
        if self.observation is None:
            return set()
        if not self.indexed:
            ports: set[int] = set()
            for snapshot in self.snapshots_for(unit):
                ports.update(self.observation.stable_open_ports(snapshot, protocol))
            return ports
        return self._port_facts(unit, protocol)[0]

    def dynamic_ports(self, unit: ComputeUnit, protocol: str = "TCP") -> set[int]:
        """Ports that changed between the two snapshots for the unit's pods.

        Indexed contexts return the shared memoized *frozenset* (mutation
        fails loudly); every in-tree consumer derives fresh sets from it.
        """
        if self.observation is None:
            return set()
        if not self.indexed:
            ports: set[int] = set()
            for snapshot in self.snapshots_for(unit):
                ports.update(self.observation.dynamic_ports(snapshot, protocol))
            return ports
        return self._port_facts(unit, protocol)[1]

    def open_ports_single_snapshot(self, unit: ComputeUnit, protocol: str = "TCP") -> set[int]:
        """Ports open in the first snapshot only (no dynamic-port filtering)."""
        ports: set[int] = set()
        if self.observation is None:
            return ports
        for snapshot in self.snapshots_for(unit):
            observed = snapshot.open_ports(protocol)
            if snapshot.host_network:
                observed = observed - self.observation.host_ports
            ports.update(observed)
        return ports
