"""Cluster-wide analysis: global label collisions across applications (M4*).

The per-application rules only see one chart at a time.  Once every
application has been analyzed individually, the paper performs a second pass
over the whole cluster, looking for labels and selectors that collide across
*different* applications (Section 4.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..k8s import Inventory, LabelSet
from .findings import Finding, MisconfigClass


@dataclass
class ApplicationInventory:
    """The static inventory of one application, tagged with its identity."""

    application: str
    inventory: Inventory
    dataset: str = ""


@dataclass
class GlobalCollision:
    """A label collision spanning two or more applications."""

    labels: dict[str, str]
    members: list[tuple[str, str]] = field(default_factory=list)  # (application, resource)

    @property
    def applications(self) -> set[str]:
        return {application for application, _ in self.members}


def find_global_collisions(applications: list[ApplicationInventory]) -> list[GlobalCollision]:
    """Group compute units from *different* applications sharing identical labels."""
    groups: dict[LabelSet, list[tuple[str, str]]] = {}
    for entry in applications:
        for unit in entry.inventory.compute_units():
            labels = unit.pod_labels()
            if type(labels) is not LabelSet:
                labels = LabelSet(labels)
            if not labels:
                continue
            groups.setdefault(labels, []).append((entry.application, unit.qualified_name()))
    collisions: list[GlobalCollision] = []
    for labels, members in groups.items():
        applications_involved = {application for application, _ in members}
        if len(applications_involved) < 2:
            continue
        collisions.append(GlobalCollision(labels=dict(labels), members=sorted(members)))
    return collisions


def find_cross_application_selector_matches(
    applications: list[ApplicationInventory],
) -> list[GlobalCollision]:
    """Services of one application whose selector matches pods of another.

    This is the second flavour of global collision: even without identical
    label sets, a service can accidentally (or maliciously) select compute
    units belonging to a different application deployed in the same cluster.

    The unit inventory is flattened once into a per-namespace index with
    pre-hashed label items, and every ``(key, value)`` pair additionally
    gets a posting list of the units carrying it.  A pure ``matchLabels``
    selector then only examines its *rarest* label's posting list (subset
    test on pre-hashed items) instead of every unit in the namespace --
    selectors name application-specific labels, so the examined list is
    typically a handful of units out of hundreds.  Expression selectors
    fall back to the full per-namespace scan; this pass used to be the
    quadratic tail of the catalogue evaluation.
    """
    #: namespace -> [(application, qualified name, hashed labels, labels)]
    units_by_namespace: dict[str, list[tuple[str, str, frozenset, dict]]] = {}
    #: namespace -> (key, value) -> indices into the namespace's unit list.
    postings: dict[str, dict[tuple[str, str], list[int]]] = {}
    for entry in applications:
        for unit in entry.inventory.compute_units():
            labels = dict(unit.pod_labels())
            bucket = units_by_namespace.setdefault(unit.namespace, [])
            posting = postings.setdefault(unit.namespace, {})
            index = len(bucket)
            bucket.append(
                (entry.application, unit.qualified_name(), frozenset(labels.items()), labels)
            )
            for item in labels.items():
                posting.setdefault(item, []).append(index)
    collisions: list[GlobalCollision] = []
    for entry in applications:
        for service in entry.inventory.services():
            if not service.has_selector:
                continue
            candidates = units_by_namespace.get(service.namespace, ())
            match_items = service.selector.as_match_items()
            if match_items and candidates:
                posting = postings[service.namespace]
                lists = [posting.get(item) for item in match_items]
                if any(entry_list is None for entry_list in lists):
                    continue  # a selector label no unit carries: no matches
                rarest = min(lists, key=len)
                candidates = [candidates[index] for index in rarest]
            foreign_members = [
                (application, name)
                for application, name, label_items, labels in candidates
                if application != entry.application
                and (
                    match_items <= label_items
                    if match_items is not None
                    else service.selector.matches(labels)
                )
            ]
            if foreign_members:
                collisions.append(
                    GlobalCollision(
                        labels=service.selector.match_labels.to_dict(),
                        members=[(entry.application, service.qualified_name())] + foreign_members,
                    )
                )
    return collisions


def global_collision_findings(applications: list[ApplicationInventory]) -> list[Finding]:
    """Produce the M4* findings for the whole cluster.

    The finding is attributed to every involved application (the paper's
    Table 2 counts M4* per dataset), but deduplicated per collision so the
    overall total counts each collision once per affected application pair.
    """
    findings: list[Finding] = []
    seen: set[tuple] = set()
    collisions = find_global_collisions(applications)
    collisions.extend(find_cross_application_selector_matches(applications))
    for collision in collisions:
        member_names = tuple(resource for _, resource in collision.members)
        for application in sorted(collision.applications):
            key = (application, member_names)
            if key in seen:
                continue
            seen.add(key)
            own_resources = [res for app, res in collision.members if app == application]
            other_apps = sorted(collision.applications - {application})
            findings.append(
                Finding(
                    misconfig_class=MisconfigClass.M4_GLOBAL,
                    application=application,
                    resource=own_resources[0] if own_resources else member_names[0],
                    related_resources=member_names,
                    message=(
                        f"labels {collision.labels} collide across applications "
                        f"{', '.join(sorted(collision.applications))}; traffic intended for one "
                        "application can be routed to another"
                    ),
                    evidence={"labels": collision.labels, "other_applications": other_apps},
                    mitigation=(
                        "Namespace applications separately or add an application-unique label "
                        "(e.g. app.kubernetes.io/instance) to every selector."
                    ),
                )
            )
    return findings
