"""Responsible-disclosure tooling (Section 5 and Appendix A).

The paper's disclosure process sends each organization a report containing
the identified misconfigurations per chart, the threat model, a description
of each misconfiguration class and the proposed mitigations, followed by an
anonymous questionnaire.  This module generates those artifacts from the
analysis results so that the full pipeline -- detect, report, disclose --
can be exercised programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .findings import CATALOG, AnalysisReport, MisconfigClass, Severity, TABLE_ORDER

#: Threat model summary included in every disclosure (Section 3.1).
THREAT_MODEL_SUMMARY = (
    "We assume an attacker that controls one container in a pod of the cluster, with "
    "legitimate access to the cluster network but no other privileges (no root on the node, "
    "no Kubernetes API access).  The cluster itself is hardened according to best practices; "
    "the attacker's goal is lateral movement through cluster-internal networking."
)


class LikertAnswer(int, Enum):
    """A 5-point Likert scale answer, as used by the Appendix A questionnaire."""

    STRONGLY_DISAGREE = 1
    DISAGREE = 2
    NEUTRAL = 3
    AGREE = 4
    STRONGLY_AGREE = 5


@dataclass
class QuestionnaireQuestion:
    """One question of the feedback questionnaire (Figure 5)."""

    number: int
    text: str
    kind: str = "text"  # "text", "options", "likert", "yes/no"
    options: tuple[str, ...] = ()
    conditional_on: str = ""


#: The feedback questionnaire of Appendix A.1 (Figure 5), abridged to the
#: fields relevant for automated processing.
FEEDBACK_QUESTIONNAIRE: tuple[QuestionnaireQuestion, ...] = (
    QuestionnaireQuestion(1, "What is the size of your organization?", "options",
                          ("1-99", "100-999", "1,000-4,999", "5000 or more", "Not applicable")),
    QuestionnaireQuestion(2, "What is your current role?", "text"),
    QuestionnaireQuestion(3, "How long have you been using Helm?", "options",
                          ("Less than a year", "1-2 years", "More than 2 years")),
    QuestionnaireQuestion(4, "Do you follow any guidelines to secure Helm Charts?", "text"),
    QuestionnaireQuestion(5, "Do you use any software tools to check the security of Helm Charts?",
                          "text"),
    QuestionnaireQuestion(6, "Do you handle third-party Helm Charts differently?", "text"),
    QuestionnaireQuestion(7, "Detecting lateral movement in a Kubernetes cluster is a critical issue",
                          "likert"),
    QuestionnaireQuestion(8, "Do you use network policies with your cloud applications?", "yes/no"),
    QuestionnaireQuestion(11, "Undeclared ports are a critical security risk", "likert"),
    QuestionnaireQuestion(12, "Unused ports are a critical security risk", "likert"),
    QuestionnaireQuestion(13, "Label collision is a critical security risk", "likert"),
    QuestionnaireQuestion(14, "Are there false positives in the reported misconfigurations?", "text"),
    QuestionnaireQuestion(15, "The proposed mitigations are useful", "likert"),
    QuestionnaireQuestion(16, "I will use a tool to detect the reported misconfigurations", "likert"),
    QuestionnaireQuestion(17, "Does the report reflect the status of your project?", "text"),
)


@dataclass
class QuestionnaireResponse:
    """A (synthetic or transcribed) response to the questionnaire."""

    organization: str
    answers: dict[int, object] = field(default_factory=dict)

    def likert(self, number: int) -> LikertAnswer | None:
        answer = self.answers.get(number)
        return answer if isinstance(answer, LikertAnswer) else None

    def rates_label_collisions_critical(self) -> bool:
        answer = self.likert(13)
        return answer is not None and answer >= LikertAnswer.AGREE


@dataclass
class DisclosureReport:
    """A disclosure package for one organization."""

    organization: str
    reports: list[AnalysisReport] = field(default_factory=list)

    @property
    def affected_applications(self) -> list[AnalysisReport]:
        return [report for report in self.reports if report.affected]

    @property
    def total_findings(self) -> int:
        return sum(report.total for report in self.reports)

    def classes_reported(self) -> set[MisconfigClass]:
        classes: set[MisconfigClass] = set()
        for report in self.reports:
            classes.update(report.classes_present())
        return classes

    def severity_breakdown(self) -> dict[Severity, int]:
        breakdown = {severity: 0 for severity in Severity}
        for report in self.reports:
            for severity, count in report.by_severity().items():
                breakdown[severity] += count
        return breakdown

    def to_markdown(self) -> str:
        """Render the disclosure the way it would be sent to the maintainers."""
        lines = [
            f"# Security disclosure: network misconfigurations in {self.organization} Helm charts",
            "",
            "## Threat model",
            "",
            THREAT_MODEL_SUMMARY,
            "",
            "## Summary",
            "",
            f"* charts analyzed: {len(self.reports)}",
            f"* charts affected: {len(self.affected_applications)}",
            f"* total misconfigurations: {self.total_findings}",
            "",
            "## Misconfiguration classes found",
            "",
        ]
        for cls in TABLE_ORDER:
            if cls not in self.classes_reported():
                continue
            descriptor = CATALOG[cls]
            lines.append(
                f"* **{cls.value} — {descriptor.description}** ({descriptor.severity.value}): "
                f"{descriptor.issue}. Possible attacks: {', '.join(descriptor.attacks)}."
            )
        lines.extend(["", "## Findings per chart", ""])
        for report in self.affected_applications:
            lines.append(f"### {report.application}")
            lines.append("")
            for finding in report.findings:
                port = f" (port {finding.port})" if finding.port is not None else ""
                lines.append(f"* `{finding.misconfig_class.value}`{port}: {finding.message}")
                if finding.mitigation:
                    lines.append(f"  * proposed mitigation: {finding.mitigation}")
            lines.append("")
        lines.extend(
            [
                "## Feedback",
                "",
                "We would appreciate answers to the attached questionnaire "
                f"({len(FEEDBACK_QUESTIONNAIRE)} questions) to assess the severity of the "
                "reported issues and the usefulness of the proposed mitigations.",
            ]
        )
        return "\n".join(lines)


def build_disclosures(
    reports: list[AnalysisReport], organization_of: dict[str, str] | None = None
) -> list[DisclosureReport]:
    """Group per-application reports into per-organization disclosure packages.

    ``organization_of`` maps application names to organizations; when omitted,
    the report's ``dataset`` field is used (the convention of the evaluation
    pipeline).
    """
    grouped: dict[str, DisclosureReport] = {}
    for report in reports:
        organization = (organization_of or {}).get(report.application, report.dataset or "unknown")
        disclosure = grouped.setdefault(organization, DisclosureReport(organization=organization))
        disclosure.reports.append(report)
    return [grouped[name] for name in sorted(grouped)]


@dataclass
class DisclosureOutcome:
    """The follow-up record of one disclosure (Section 5.1)."""

    organization: str
    acknowledged: bool = False
    applications_fixed: int = 0
    response: QuestionnaireResponse | None = None
    notes: str = ""


def summarize_outcomes(outcomes: list[DisclosureOutcome]) -> dict:
    """Aggregate follow-up statistics (the paper: >30 applications fixed)."""
    return {
        "organizations_contacted": len(outcomes),
        "organizations_acknowledging": sum(1 for outcome in outcomes if outcome.acknowledged),
        "applications_fixed": sum(outcome.applications_fixed for outcome in outcomes),
        "respondents_rating_label_collisions_critical": sum(
            1
            for outcome in outcomes
            if outcome.response is not None
            and outcome.response.rates_label_collisions_critical()
        ),
    }
