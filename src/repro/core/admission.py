"""The defense component: an admission controller for the cluster.

The paper's title promises *defending* clusters, not only auditing them.
This module turns the static rules into an admission-time guard: when an
object is applied to the (simulated) API server, the controller checks it
against the current cluster state and either warns or rejects.

Checks performed at admission time (only those that do not require runtime
observation):

* global/compute-unit label collisions with objects already in the cluster
  (M4A, M4\\*);
* services that select nothing, or that target ports the selected pods do
  not declare (M5B, M5D);
* pods binding to the host network (M7);
* optionally, workloads deployed into a namespace without any NetworkPolicy
  (M6) when ``require_network_policies`` is set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster import AdmissionError, ObjectStore
from ..k8s import (
    KubernetesObject,
    LabelSet,
    NetworkPolicy,
    Pod,
    Service,
    Workload,
)
from .findings import MisconfigClass

#: Controller modes.
MODE_WARN = "warn"
MODE_ENFORCE = "enforce"


@dataclass
class AdmissionWarning:
    """A non-blocking admission finding (mode ``warn``)."""

    misconfig_class: MisconfigClass
    obj: str
    message: str


@dataclass
class NetworkMisconfigurationAdmission:
    """Admission controller enforcing the paper's static rules."""

    mode: str = MODE_ENFORCE
    require_network_policies: bool = False
    block_host_network: bool = True
    name: str = "network-misconfiguration-admission"
    warnings: list[AdmissionWarning] = field(default_factory=list)

    # API expected by repro.cluster.APIServer ------------------------------------
    def review(self, obj: KubernetesObject, store: ObjectStore) -> None:
        """Check one incoming object against the cluster state."""
        for misconfig_class, message in self._violations(obj, store):
            if self.mode == MODE_ENFORCE:
                raise AdmissionError(f"[{misconfig_class.value}] {message}")
            self.warnings.append(
                AdmissionWarning(
                    misconfig_class=misconfig_class, obj=obj.qualified_name(), message=message
                )
            )

    # Individual checks --------------------------------------------------------------
    def _violations(self, obj: KubernetesObject, store: ObjectStore):
        if isinstance(obj, (Workload, Pod)):
            yield from self._check_compute_unit(obj, store)
        if isinstance(obj, Service):
            yield from self._check_service(obj, store)

    def _check_compute_unit(self, obj: KubernetesObject, store: ObjectStore):
        template_labels, host_network = self._pod_identity(obj)
        if host_network and self.block_host_network:
            yield (
                MisconfigClass.M7,
                f"{obj.qualified_name()} requests hostNetwork: true, which bypasses every "
                "NetworkPolicy; set hostNetwork to false or request an exemption",
            )
        if template_labels:
            for existing in store.all():
                if existing.key == obj.key or not isinstance(existing, (Workload, Pod)):
                    continue
                existing_labels, _ = self._pod_identity(existing)
                if existing_labels and existing_labels == template_labels \
                        and existing.namespace == obj.namespace:
                    yield (
                        MisconfigClass.M4_GLOBAL,
                        f"{obj.qualified_name()} uses the same pod labels {dict(template_labels)} "
                        f"as existing {existing.qualified_name()}; services selecting one will "
                        "also route traffic to the other",
                    )
                    break
        if self.require_network_policies and not self._namespace_has_policies(obj, store):
            yield (
                MisconfigClass.M6,
                f"namespace {obj.namespace!r} has no NetworkPolicy; deploying "
                f"{obj.qualified_name()} would leave it reachable from every pod in the cluster",
            )

    def _check_service(self, service: Service, store: ObjectStore):
        if not service.has_selector:
            return
        selected = []
        declared_ports: set[int] = set()
        named_ports: set[str] = set()
        for existing in store.all():
            if not isinstance(existing, (Workload, Pod)):
                continue
            labels, _ = self._pod_identity(existing)
            if existing.namespace == service.namespace and service.selector.matches(labels):
                selected.append(existing)
                spec = existing.pod_template().spec if isinstance(existing, Workload) else existing.spec
                declared_ports.update(spec.declared_port_numbers())
                for container in spec.containers:
                    named_ports.update(p.name for p in container.ports if p.name)
        if not selected:
            yield (
                MisconfigClass.M5D,
                f"service {service.qualified_name()} selects "
                f"{service.selector.match_labels.to_dict()} but no existing compute unit matches; "
                "an attacker can claim its traffic by deploying a pod with those labels",
            )
            return
        for service_port in service.ports:
            target = service_port.resolved_target()
            if isinstance(target, int) and target not in declared_ports:
                yield (
                    MisconfigClass.M5B,
                    f"service {service.qualified_name()} targets port {target}, which none of the "
                    "selected compute units declares",
                )
            elif isinstance(target, str) and target not in named_ports:
                yield (
                    MisconfigClass.M5B,
                    f"service {service.qualified_name()} targets named port {target!r}, which none "
                    "of the selected compute units declares",
                )

    # Helpers ------------------------------------------------------------------------
    @staticmethod
    def _pod_identity(obj: KubernetesObject) -> tuple[LabelSet, bool]:
        if isinstance(obj, Workload):
            return LabelSet(obj.pod_labels()), obj.pod_template().spec.host_network
        if isinstance(obj, Pod):
            return obj.labels, obj.spec.host_network
        return LabelSet(), False

    @staticmethod
    def _namespace_has_policies(obj: KubernetesObject, store: ObjectStore) -> bool:
        return any(
            isinstance(existing, NetworkPolicy) and existing.namespace == obj.namespace
            for existing in store.all()
        )

    # Reporting -----------------------------------------------------------------------
    def warnings_for(self, qualified_name: str) -> list[AdmissionWarning]:
        return [warning for warning in self.warnings if warning.obj == qualified_name]

    def reset(self) -> None:
        self.warnings.clear()
