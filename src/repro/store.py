"""Crash-safe content-addressed result store with a resumable sweep journal.

The evaluation pipeline is deterministic in content: a chart's runtime
observation is a pure function of its render fingerprint, the behavior
registry and the seed, and its evaluation report is a pure function of
those plus the analyzer settings.  This module turns that determinism into
durability -- a :class:`ResultStore` maps content keys (sha256 over the
canonical inputs, see :func:`store_key`) to verified on-disk entries, so a
crashed or interrupted sweep loses nothing that already completed and a
warm store turns a full sweep into a read-mostly pass.

Three contracts, in order of importance:

**Crash safety.**  Every publish goes through write-to-temp (same
directory), flush, fsync, then an atomic ``os.replace`` -- a reader can
never observe a partial entry, no matter where a writer dies.  The helpers
:func:`atomic_write_bytes` / :func:`atomic_write_text` expose the same
discipline for other files (the benchmark baseline uses it).

**Verified reads.**  An entry is a one-line JSON header (magic, schema
version, kind, payload sha256, payload size) followed by a pickle payload.
Every read re-hashes the payload and checks the header; corruption or
schema skew is *detected, counted in* :meth:`ResultStore.stats`, *evicted,
and recomputed by the caller* -- the same degrade-gracefully contract the
render cache established.  A store failure (read or write) is never fatal
to the computation it serves.

**Concurrent-writer safety.**  Content addressing makes writes idempotent:
two processes producing the same key produce byte-equivalent values, and
``os.replace`` makes the last rename win atomically.  The read path takes
no locks.

:class:`SweepJournal` adds per-sweep bookkeeping: an append-only
``journal.jsonl`` whose header pins the sweep identity (catalogue +
settings + schema) plus a monotonically increasing *epoch* -- every fresh
or rotated sweep advances it, a resume continues it -- and whose per-chart
records -- each sealed with its own sha256, so a torn tail line is
dropped, not trusted -- record completion for ``repro sweep --resume``.
Records optionally carry the per-chart classifier fingerprints (values /
templates / behaviours / settings), which is what lets the delta
evaluator (:mod:`repro.experiments.delta`) classify *why* a chart needs
recomputation, not just that its result key moved.
:func:`read_prior_state` is the read side: the epoch-tagged prior-state
lookup over the live (last-wins) journal records, one per chart key.

Fault injection: :data:`repro.faults.STORE_READ` fires at the top of every
lookup (``corrupt`` kinds damage the entry first -- truncation, bit-flip or
version skew per :func:`repro.faults.corruption_mode`);
:data:`repro.faults.STORE_WRITE` fires between the temp-file fsync and the
rename, so a ``kill`` fault is a genuine mid-write crash.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from . import faults

#: Entry-format constants.  ``SCHEMA_VERSION`` governs compatibility: a
#: header whose schema differs from the reader's is *version skew* -- the
#: entry is evicted and recomputed (and ``tools/store_gc.py`` prunes them).
MAGIC = "repro-store"
SCHEMA_VERSION = 1

#: Well-known entry kinds (recorded in the header, checked on read).
KIND_OBSERVATION = "observation"
KIND_RESULT = "result"

_ENTRY_SUFFIX = ".entry"
_TMP_MARKER = ".tmp"


def store_key(kind: str, *parts: object) -> str:
    """Derive the content key (sha256 hex) for an entry.

    ``parts`` must be canonical primitives -- strings, ints, bools, ``None``
    and nested tuples thereof -- whose ``repr`` is deterministic across
    processes and platforms (the same discipline
    :func:`repro.helm.values.canonical_values` guarantees).  The key
    deliberately excludes the schema version: version skew must be
    *detectable* at read time via the header, not silently keyed away.
    """
    material = repr((MAGIC, kind, parts))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def _fsync_directory(path: Path) -> None:
    """Best-effort fsync of a directory so a rename survives power loss."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: Path | str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically: temp file + fsync + rename.

    The temp file lives in the target directory (``os.replace`` must not
    cross filesystems) and is fsynced before the rename, so a crash at any
    point leaves either the old content or the new -- never a torn file.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=target.parent, prefix=target.name + _TMP_MARKER)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    _fsync_directory(target.parent)


def atomic_write_text(path: Path | str, text: str, encoding: str = "utf-8") -> None:
    """Text-mode convenience wrapper over :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode(encoding))


def _entry_header(kind: str, payload: bytes, schema: int) -> bytes:
    header = {
        "magic": MAGIC,
        "schema": schema,
        "kind": kind,
        "sha256": hashlib.sha256(payload).hexdigest(),
        "size": len(payload),
    }
    return json.dumps(header, sort_keys=True, separators=(",", ":")).encode("utf-8") + b"\n"


def _parse_entry(blob: bytes, kind: str | None, schema: int) -> tuple[bytes | None, str | None]:
    """Split an entry blob into its payload, or name the defect.

    Returns ``(payload, None)`` for a healthy entry and ``(None, reason)``
    otherwise, with ``reason`` one of ``header`` / ``magic`` / ``schema`` /
    ``kind`` / ``size`` / ``digest``.  ``schema`` is the only reason counted
    as version skew rather than corruption.
    """
    newline = blob.find(b"\n")
    if newline < 0:
        return None, "header"
    try:
        header = json.loads(blob[:newline].decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None, "header"
    if not isinstance(header, dict) or header.get("magic") != MAGIC:
        return None, "magic"
    if header.get("schema") != schema:
        return None, "schema"
    if kind is not None and header.get("kind") != kind:
        return None, "kind"
    payload = blob[newline + 1 :]
    if header.get("size") != len(payload):
        return None, "size"
    if header.get("sha256") != hashlib.sha256(payload).hexdigest():
        return None, "digest"
    return payload, None


def _corrupt_entry_file(path: Path, mode: str) -> None:
    """Damage an on-disk entry per the requested chaos corruption mode."""
    try:
        blob = path.read_bytes()
    except OSError:
        return
    if mode == faults.CORRUPT_TRUNCATE:
        path.write_bytes(blob[: max(len(blob) // 2, 1)])
    elif mode == faults.CORRUPT_BITFLIP:
        newline = blob.find(b"\n")
        index = newline + 1 + max((len(blob) - newline - 1) // 2, 0)
        index = min(index, len(blob) - 1)
        damaged = bytearray(blob)
        damaged[index] ^= 0x01
        path.write_bytes(bytes(damaged))
    elif mode == faults.CORRUPT_VERSION:
        newline = blob.find(b"\n")
        if newline < 0:
            return
        try:
            header = json.loads(blob[:newline].decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return
        header["schema"] = int(header.get("schema", 0)) + 1
        skewed = json.dumps(header, sort_keys=True, separators=(",", ":")).encode("utf-8")
        path.write_bytes(skewed + b"\n" + blob[newline + 1 :])


class ResultStore:
    """Content-addressed on-disk store of pickled evaluation artifacts.

    Entries live under ``root`` sharded by key prefix
    (``root/<key[:2]>/<key>.entry``).  :meth:`read` verifies every entry
    against its header (magic, schema version, kind, sha256, size) and
    unpickles only verified payloads; a defective entry is counted, evicted
    and reported as a miss so the caller recomputes and republishes.
    :meth:`write` is crash-safe (temp + fsync + atomic rename) and *never
    raises* -- a failed publish is counted in :meth:`stats` and the
    computation proceeds unstored.

    Instances are cheap and process-local; the on-disk format is the shared
    contract.  Counters are per-instance (pool workers each see their own).
    """

    def __init__(self, root: Path | str, schema_version: int = SCHEMA_VERSION) -> None:
        self.root = Path(root)
        self.schema_version = schema_version
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.write_failures = 0
        self.read_errors = 0
        self.corruptions = 0
        self.version_skew = 0
        self.evictions = 0

    def entry_path(self, key: str) -> Path:
        """The on-disk location of ``key`` (exists or not)."""
        return self.root / key[:2] / (key + _ENTRY_SUFFIX)

    def read(self, key: str, kind: str | None = None) -> Any:
        """Return the verified value stored under ``key``, or ``None``.

        ``None`` covers every non-success uniformly -- absent entry,
        unreadable file, corruption, version skew, kind mismatch -- because
        the caller's move is always the same: recompute, then
        :meth:`write`.  Defective entries are evicted so the next sweep
        does not pay the verification failure again; the distinction
        between miss, corruption and skew is kept in :meth:`stats`.
        """
        path = self.entry_path(key)
        try:
            faults.fault_point(faults.STORE_READ)
            if not path.exists():
                with self._lock:
                    self.misses += 1
                return None
            mode = faults.corruption_mode(faults.STORE_READ)
            if mode is not None:
                _corrupt_entry_file(path, mode)
            blob = path.read_bytes()
        except (faults.InjectedFault, OSError):
            with self._lock:
                self.read_errors += 1
            return None
        payload, reason = _parse_entry(blob, kind, self.schema_version)
        if reason is not None:
            self._evict(path, reason)
            return None
        try:
            value = pickle.loads(payload)
        except Exception:
            self._evict(path, "payload")
            return None
        with self._lock:
            self.hits += 1
        return value

    def write(self, key: str, value: Any, kind: str) -> bool:
        """Publish ``value`` under ``key``; return True on success.

        Serialization, the temp write, the fsync and the rename are all
        inside the failure guard: any exception (including an injected
        ``store.write`` fault) abandons the publish, counts a write
        failure, cleans up the temp file best-effort and returns False.
        The store must never turn a successful computation into a failure.
        """
        path = self.entry_path(key)
        tmp_name: str | None = None
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            blob = _entry_header(kind, payload, self.schema_version) + payload
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name + _TMP_MARKER)
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            # Mid-write crash site: the temp file is durable, the entry is
            # not yet visible.  A ``kill`` fault here dies exactly like a
            # power cut between fsync and rename.
            faults.fault_point(faults.STORE_WRITE)
            os.replace(tmp_name, path)
            tmp_name = None
            _fsync_directory(path.parent)
        except Exception:
            with self._lock:
                self.write_failures += 1
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            return False
        with self._lock:
            self.writes += 1
        return True

    def _evict(self, path: Path, reason: str) -> None:
        with self._lock:
            if reason == "schema":
                self.version_skew += 1
            else:
                self.corruptions += 1
            self.evictions += 1
        try:
            path.unlink()
        except OSError:
            pass

    def entries(self) -> Iterator[Path]:
        """Yield every entry file currently visible in the store."""
        yield from sorted(self.root.glob(f"*/*{_ENTRY_SUFFIX}"))

    def verify_all(self) -> dict[str, int]:
        """Scan every entry; report healthy/defective counts without evicting.

        Used by tests and ``tools/store_gc.py`` to prove no torn entry is
        ever visible: a store that only ever saw crash-safe writes scans
        clean no matter how many writers died.
        """
        healthy = 0
        defects: dict[str, int] = {}
        for path in self.entries():
            try:
                blob = path.read_bytes()
            except OSError:
                defects["unreadable"] = defects.get("unreadable", 0) + 1
                continue
            _, reason = _parse_entry(blob, None, self.schema_version)
            if reason is None:
                healthy += 1
            else:
                defects[reason] = defects.get(reason, 0) + 1
        return {"healthy": healthy, "defective": sum(defects.values()), **defects}

    def stats(self) -> dict[str, int]:
        """Counter snapshot: hits, misses, writes, failures, defects, evictions."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "writes": self.writes,
                "write_failures": self.write_failures,
                "read_errors": self.read_errors,
                "corruptions": self.corruptions,
                "version_skew": self.version_skew,
                "evictions": self.evictions,
            }


def _seal_record(record: dict[str, Any]) -> str:
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]
    return json.dumps({"rec": record, "sha": digest}, sort_keys=True, separators=(",", ":")) + "\n"


def _unseal_line(line: str) -> dict[str, Any] | None:
    try:
        wrapper = json.loads(line)
        record = wrapper["rec"]
        body = json.dumps(record, sort_keys=True, separators=(",", ":"))
        if wrapper["sha"] != hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]:
            return None
    except (ValueError, KeyError, TypeError):
        return None
    return record if isinstance(record, dict) else None


class SweepJournal:
    """Append-only per-sweep completion log next to a :class:`ResultStore`.

    The journal is ``journal.jsonl`` in the store root.  Line one is a
    header record pinning the *sweep identity* -- a digest over the ordered
    catalogue result keys -- so a resume against a different catalogue or
    settings is detected, not silently honored.  Each subsequent line
    records one chart's completion (key, status, attempts, source), sealed
    with its own sha256 so a torn tail (the writer died mid-append) is
    dropped rather than trusted.  Appends are single ``os.write`` calls on
    an ``O_APPEND`` descriptor followed by fsync, so concurrent sweeps
    interleave whole records.
    """

    FILENAME = "journal.jsonl"
    #: The one *expected* rotation reason: a fresh (non-resume) sweep
    #: deliberately supersedes any prior journal.  :func:`store_hint`
    #: treats every other reason as degradation worth a hint.
    ROTATED_FRESH = "superseded by a fresh sweep"

    def __init__(self, root: Path | str, identity: str) -> None:
        self.root = Path(root)
        self.identity = identity
        self.path = self.root / self.FILENAME
        self.rotated_reason: str | None = None
        self.dropped_lines = 0
        #: The sweep epoch this journal is writing under: 0 until
        #: :meth:`begin`, then the prior header's epoch + 1 for a fresh or
        #: rotated sweep, or the prior epoch unchanged for a valid resume.
        self.epoch = 0
        self._fd: int | None = None
        self._lock = threading.Lock()

    def begin(self, resume: bool) -> dict[str, dict[str, Any]]:
        """Open the journal; return prior completions when resuming.

        A fresh sweep (``resume=False``) rotates any existing journal aside
        (``journal.jsonl.prev``).  A resume validates the header identity
        first: a mismatch (different catalogue, settings or schema) rotates
        the stale journal and starts clean -- :attr:`rotated_reason` records
        why, so the CLI can surface one hint instead of a traceback.

        Either way :attr:`epoch` is settled here: it continues the prior
        header's epoch on a valid resume and advances it by one otherwise,
        so every generation of results a store has seen is totally ordered.
        """
        completed: dict[str, dict[str, Any]] = {}
        prior_epoch = 0
        if self.path.exists():
            header, records, dropped = self._parse()
            self.dropped_lines = dropped
            prior_epoch = _header_epoch(header)
            if not resume:
                self._rotate(self.ROTATED_FRESH)
            elif header is None:
                self._rotate("journal header unreadable")
            elif header.get("identity") != self.identity:
                self._rotate("journal identity mismatch (catalogue or settings changed)")
            else:
                completed = records
        self._fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        if os.fstat(self._fd).st_size == 0:
            self.epoch = prior_epoch + 1
            self._append(
                {
                    "type": "header",
                    "identity": self.identity,
                    "schema": SCHEMA_VERSION,
                    "epoch": self.epoch,
                }
            )
        else:
            self.epoch = prior_epoch or 1
        return completed

    def record(
        self,
        chart: str,
        status: str,
        result_key: str = "",
        attempts: int = 1,
        source: str = "computed",
        fingerprints: dict[str, str] | None = None,
    ) -> None:
        """Append one sealed per-chart completion record and fsync it.

        ``fingerprints`` (optional) attaches the chart's delta-classifier
        fingerprints -- values / templates / behaviours / settings, see
        :func:`repro.experiments.evaluation.classifier_fingerprints` -- so a
        later delta sweep can explain *which* input moved, not just that
        the content-addressed result key did.
        """
        record: dict[str, Any] = {
            "type": "chart",
            "chart": chart,
            "status": status,
            "result": result_key,
            "attempts": attempts,
            "source": source,
        }
        if fingerprints:
            record["fp"] = dict(fingerprints)
        self._append(record)

    def close(self) -> None:
        """Release the journal descriptor (records already durable)."""
        with self._lock:
            if self._fd is not None:
                try:
                    os.close(self._fd)
                except OSError:
                    pass
                self._fd = None

    def _append(self, record: dict[str, Any]) -> None:
        if self._fd is None:
            return
        line = _seal_record(record).encode("utf-8")
        with self._lock:
            try:
                os.write(self._fd, line)
                os.fsync(self._fd)
            except OSError:
                pass

    def _rotate(self, reason: str) -> None:
        self.rotated_reason = reason
        try:
            os.replace(self.path, self.path.with_name(self.FILENAME + ".prev"))
        except OSError:
            pass

    def _parse(self) -> tuple[dict[str, Any] | None, dict[str, dict[str, Any]], int]:
        return _parse_journal(self.path)


def _parse_journal(path: Path) -> tuple[dict[str, Any] | None, dict[str, dict[str, Any]], int]:
    """Parse one journal file into (header, live chart records, dropped lines).

    Chart records are *last-wins* by chart key: a chart recorded several
    times across resumed sweeps keeps exactly one live record -- the
    superseded-entry semantics every reader (resume, delta, prior-state
    lookup) shares.
    """
    header: dict[str, Any] | None = None
    records: dict[str, dict[str, Any]] = {}
    dropped = 0
    try:
        lines = path.read_text(encoding="utf-8", errors="replace").splitlines()
    except OSError:
        return None, {}, 0
    for index, line in enumerate(lines):
        record = _unseal_line(line)
        if record is None:
            dropped += 1
            continue
        if record.get("type") == "header" and index == 0:
            header = record
        elif record.get("type") == "chart" and isinstance(record.get("chart"), str):
            records[record["chart"]] = record
    return header, records, dropped


def _header_epoch(header: dict[str, Any] | None) -> int:
    """The epoch a journal header carries (0 for absent or pre-epoch headers)."""
    if not isinstance(header, dict):
        return 0
    try:
        return max(int(header.get("epoch", 0)), 0)
    except (TypeError, ValueError):
        return 0


@dataclass(frozen=True)
class PriorState:
    """The epoch-tagged prior state a store's journal records.

    ``records`` holds the *live* (last-wins) chart record per chart key --
    journal rotation and resumed sweeps keep exactly one record per chart.
    ``epoch`` is the journal generation those records were written under
    (0 when no journal exists), ``identity`` the sweep identity digest the
    header pinned, so a delta consumer can tell "same catalogue, resumable"
    from "prior state of a different sweep shape".
    """

    epoch: int
    identity: str | None
    records: dict[str, dict[str, Any]]
    dropped_lines: int = 0

    def completed(self) -> dict[str, dict[str, Any]]:
        """The live records of charts that finished successfully."""
        return {
            chart: record
            for chart, record in self.records.items()
            if record.get("status") == "ok"
        }


def read_prior_state(root: Path | str) -> PriorState:
    """Read a store directory's journal as delta-consumable prior state.

    This is the read-only side of :class:`SweepJournal`: it never opens the
    journal for append, never rotates, and tolerates a missing or torn
    journal (sealed records keep their last-wins semantics; torn lines are
    counted in ``dropped_lines``).  The delta evaluator uses it to classify
    charts against what the store last recorded before deciding what to
    recompute.
    """
    header, records, dropped = _parse_journal(Path(root) / SweepJournal.FILENAME)
    identity = header.get("identity") if isinstance(header, dict) else None
    return PriorState(
        epoch=_header_epoch(header),
        identity=identity if isinstance(identity, str) else None,
        records=records,
        dropped_lines=dropped,
    )


def store_hint(stats: dict[str, int], root: Path | str, rotated: str | None = None) -> str | None:
    """One actionable-message-style hint line for a degraded store, or None.

    Mirrors :func:`repro.cluster.errors.actionable_message` formatting so
    CLI output stays uniform: a one-line diagnosis plus an indented hint.
    Returned only when the sweep actually degraded (corruption, version
    skew, read/write errors or an *unexpected* journal rotation -- the
    deliberate :attr:`SweepJournal.ROTATED_FRESH` supersede is not a
    problem); a healthy store stays silent.
    """
    problems = []
    if stats.get("corruptions"):
        problems.append(f"{stats['corruptions']} corrupt entr{'y' if stats['corruptions'] == 1 else 'ies'}")
    if stats.get("version_skew"):
        problems.append(f"{stats['version_skew']} version-skewed entr{'y' if stats['version_skew'] == 1 else 'ies'}")
    if stats.get("read_errors"):
        problems.append(f"{stats['read_errors']} unreadable entr{'y' if stats['read_errors'] == 1 else 'ies'}")
    if stats.get("write_failures"):
        problems.append(f"{stats['write_failures']} failed write{'s' if stats['write_failures'] != 1 else ''}")
    if rotated and rotated != SweepJournal.ROTATED_FRESH:
        problems.append(f"journal rotated ({rotated})")
    if not problems:
        return None
    return (
        f"StoreIntegrity: {', '.join(problems)} at {root}; affected charts were recomputed\n"
        f"  hint: results are unaffected; run 'python tools/store_gc.py {root} --apply' to prune stale entries"
    )
