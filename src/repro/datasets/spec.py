"""Application specifications: the intermediate model between injection plans
and concrete Helm charts.

An :class:`AppSpec` describes one synthetic application the way a chart
author would think about it: a set of components (compute units) with
declared and actually-opened ports, the services that front them, and the
network-policy posture.  The builder turns an AppSpec into a real Helm chart
plus the container behaviours the cluster simulator needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Network-policy posture of a chart.
NETPOL_NONE = "none"                       # chart ships no NetworkPolicy at all
NETPOL_DISABLED = "disabled"               # template exists but values disable it (strict rules)
NETPOL_DISABLED_LOOSE = "disabled-loose"   # disabled by default; allows all ports when enabled
NETPOL_ENABLED_STRICT = "strict"           # enabled, allows only declared service ports
NETPOL_ENABLED_ALLOW_ALL = "loose"         # enabled, but allows every port
NETPOL_ENABLED_MISMATCH = "mismatch"       # enabled, but selects labels that match nothing

NETPOL_MODES = (
    NETPOL_NONE,
    NETPOL_DISABLED,
    NETPOL_DISABLED_LOOSE,
    NETPOL_ENABLED_STRICT,
    NETPOL_ENABLED_ALLOW_ALL,
    NETPOL_ENABLED_MISMATCH,
)


@dataclass
class PortSpec:
    """One application port of a component."""

    number: int
    name: str = ""
    protocol: str = "TCP"
    #: The port appears in the pod template's containerPort list.
    declared: bool = True
    #: The application actually listens on the port at runtime.
    opened: bool = True


@dataclass
class ComponentSpec:
    """One compute unit of the application."""

    name: str
    kind: str = "Deployment"  # Deployment | StatefulSet | DaemonSet
    replicas: int = 1
    ports: list[PortSpec] = field(default_factory=list)
    #: Number of dynamic (ephemeral) ports opened at runtime.
    dynamic_ports: int = 0
    host_network: bool = False
    #: Explicit pod labels; ``None`` derives unique labels from the app/component.
    labels: dict[str, str] | None = None
    image: str = ""

    def declared_ports(self) -> list[PortSpec]:
        return [port for port in self.ports if port.declared]

    def opened_ports(self) -> list[PortSpec]:
        return [port for port in self.ports if port.opened]


@dataclass
class ServicePortSpec:
    """One service port: the exposed port and the targeted container port."""

    port: int
    target_port: int | str | None = None
    name: str = ""
    protocol: str = "TCP"


@dataclass
class ServiceSpec:
    """A service fronting one (or more) components."""

    name: str
    #: Component names whose labels the selector must match.  The builder
    #: derives the selector from the first component unless ``selector`` is
    #: given explicitly.
    component: str = ""
    selector: dict[str, str] | None = None
    ports: list[ServicePortSpec] = field(default_factory=list)
    headless: bool = False


@dataclass
class NetworkPolicySpec:
    """The chart's network-policy posture."""

    mode: str = NETPOL_NONE
    #: Ports explicitly allowed when the policy is strict; empty derives the
    #: list from the declared service target ports.
    allowed_ports: list[int] = field(default_factory=list)

    @property
    def defined(self) -> bool:
        return self.mode != NETPOL_NONE

    @property
    def enabled_by_default(self) -> bool:
        return self.mode in (NETPOL_ENABLED_STRICT, NETPOL_ENABLED_ALLOW_ALL, NETPOL_ENABLED_MISMATCH)


@dataclass
class AppSpec:
    """A complete synthetic application."""

    name: str
    organization: str
    version: str = "1.0.0"
    archetype: str = "web"
    description: str = ""
    components: list[ComponentSpec] = field(default_factory=list)
    services: list[ServiceSpec] = field(default_factory=list)
    network_policy: NetworkPolicySpec = field(default_factory=NetworkPolicySpec)
    #: The app carries the shared "global collision" marker component (M4*).
    global_collision_marker: bool = False

    def component(self, name: str) -> ComponentSpec | None:
        for component in self.components:
            if component.name == name:
                return component
        return None

    def all_port_numbers(self) -> set[int]:
        numbers: set[int] = set()
        for component in self.components:
            numbers.update(port.number for port in component.ports)
        return numbers


@dataclass
class InjectionPlan:
    """How many findings of each class one application must exhibit.

    This is the contract between the catalogue (which distributes the Table 2
    per-dataset totals across applications) and the builder (which constructs
    an application exhibiting exactly those misconfigurations).
    """

    m1: int = 0
    m2: int = 0
    m3: int = 0
    m4a: int = 0
    m4b: int = 0
    m4c: int = 0
    m5a: int = 0
    m5b: int = 0
    m5c: int = 0
    m5d: int = 0
    m6: bool = False
    m7: int = 0
    #: Participates in the dataset-wide global label collision group (M4*).
    global_collision: bool = False
    #: Network-policy posture (overrides the default derived from ``m6``).
    netpol_mode: str | None = None

    def total(self) -> int:
        return (
            self.m1 + self.m2 + self.m3 + self.m4a + self.m4b + self.m4c
            + self.m5a + self.m5b + self.m5c + self.m5d + int(self.m6) + self.m7
            + int(self.global_collision)
        )

    def expected_counts(self) -> dict[str, int]:
        """Expected per-class finding counts (used by validation tests)."""
        return {
            "M1": self.m1,
            "M2": self.m2,
            "M3": self.m3,
            "M4A": self.m4a,
            "M4B": self.m4b,
            "M4C": self.m4c,
            "M4*": int(self.global_collision),
            "M5A": self.m5a,
            "M5B": self.m5b,
            "M5C": self.m5c,
            "M5D": self.m5d,
            "M6": int(self.m6),
            "M7": self.m7,
        }

    def validate(self) -> None:
        """Check internal consistency of the plan."""
        if self.m5b > self.m1:
            raise ValueError(
                f"plan requires m5b ({self.m5b}) <= m1 ({self.m1}): each M5B finding targets "
                "an open-but-undeclared port"
            )
        for name, value in self.expected_counts().items():
            if value < 0:
                raise ValueError(f"negative count for {name}")
