"""Proof-of-concept attack scenarios from Section 2.1 of the paper.

Two lateral-movement attacks enabled by network misconfigurations:

* **Concourse -- broken control plane**: the CI/CD web node terminates
  reverse SSH tunnels from its workers on ephemeral ports that should only
  be reachable on the loopback interface, but are exposed on the pod network
  (M1 + M2 + M6).  Any pod in the cluster can send commands to the workers.
* **Thanos -- service impersonation**: ``thanos-query-frontend`` and
  ``thanos-query`` share the same label, so a malicious pod that adopts the
  label receives traffic from the service and can impersonate it (M4 + M6).

The scenarios build the vulnerable applications, deploy them into a
simulated cluster next to an attacker pod, and expose helpers that carry out
(and verify) the attack steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster import (
    BehaviorRegistry,
    Cluster,
    ContainerBehavior,
    ListenSpec,
)
from ..k8s import (
    Container,
    ContainerPort,
    Deployment,
    LabelSet,
    ObjectMeta,
    Pod,
    PodSpec,
    PodTemplateSpec,
    Service,
    ServicePort,
    equality_selector,
)
from ..probe import make_attacker_pod

CONCOURSE_WEB_IMAGE = "concourse/concourse-web"
CONCOURSE_WORKER_IMAGE = "concourse/concourse-worker"
THANOS_QUERY_IMAGE = "thanos/query"
THANOS_FRONTEND_IMAGE = "thanos/query-frontend"


# ---------------------------------------------------------------------------
# Concourse: broken control plane
# ---------------------------------------------------------------------------


def concourse_behaviors(worker_count: int = 2) -> BehaviorRegistry:
    """Runtime behaviour of the Concourse components.

    The web node listens on its declared API port (8080) and TSA port (2222),
    plus one *undeclared ephemeral* port per registered worker: the endpoints
    of the reverse SSH tunnels used as command-and-control channels.
    """
    registry = BehaviorRegistry()
    registry.register(
        CONCOURSE_WEB_IMAGE,
        ContainerBehavior(
            listen_on_declared=True,
            extra_listens=[ListenSpec(port=None, process="reverse-ssh-tunnel")
                           for _ in range(worker_count)],
        ),
    )
    registry.register(CONCOURSE_WORKER_IMAGE, ContainerBehavior(listen_on_declared=True))
    return registry


def concourse_objects(worker_count: int = 2) -> list:
    """The Kubernetes objects of a default Concourse deployment (no policies)."""
    web_labels = {"app": "concourse", "component": "web"}
    worker_labels = {"app": "concourse", "component": "worker"}
    web = Deployment(
        metadata=ObjectMeta(name="concourse-web", labels=LabelSet(web_labels)),
        replicas=1,
        selector=equality_selector(**web_labels),
        template=PodTemplateSpec(
            metadata=ObjectMeta(name="concourse-web", labels=LabelSet(web_labels)),
            spec=PodSpec(
                containers=[
                    Container(
                        name="web",
                        image=CONCOURSE_WEB_IMAGE,
                        ports=[ContainerPort(8080, name="atc"), ContainerPort(2222, name="tsa")],
                    )
                ]
            ),
        ),
    )
    workers = Deployment(
        metadata=ObjectMeta(name="concourse-worker", labels=LabelSet(worker_labels)),
        replicas=worker_count,
        selector=equality_selector(**worker_labels),
        template=PodTemplateSpec(
            metadata=ObjectMeta(name="concourse-worker", labels=LabelSet(worker_labels)),
            spec=PodSpec(
                containers=[
                    Container(
                        name="worker",
                        image=CONCOURSE_WORKER_IMAGE,
                        ports=[ContainerPort(7777, name="garden"), ContainerPort(7788, name="baggageclaim")],
                    )
                ]
            ),
        ),
    )
    service = Service(
        metadata=ObjectMeta(name="concourse-web", labels=LabelSet({"app": "concourse"})),
        selector=equality_selector(**web_labels),
        ports=[ServicePort(port=8080, target_port=8080, name="atc")],
    )
    return [web, workers, service]


@dataclass
class ConcourseAttackResult:
    """Outcome of the broken-control-plane attack."""

    tunnel_ports: list[int] = field(default_factory=list)
    reachable_tunnel_ports: list[int] = field(default_factory=list)
    commands_sent: list[str] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return bool(self.reachable_tunnel_ports)


def run_concourse_attack(cluster: Cluster | None = None, worker_count: int = 2) -> ConcourseAttackResult:
    """Deploy Concourse and show that an attacker pod can reach the C2 tunnels."""
    cluster = cluster or Cluster(name="concourse-poc", behaviors=concourse_behaviors(worker_count))
    installed = {application.name for application in cluster.applications()}
    if "concourse" not in installed:
        cluster.install(concourse_objects(worker_count), app_name="concourse")
    if "attacker" not in installed:
        cluster.install([make_attacker_pod()], app_name="attacker")
    attacker = cluster.running_pod("attacker")
    web = cluster.running_pods(app_name="concourse")
    web_pod = next(pod for pod in web if "web" in pod.name)
    result = ConcourseAttackResult()
    for socket in web_pod.sockets:
        if not socket.dynamic:
            continue
        result.tunnel_ports.append(socket.port)
        attempt = cluster.connect(attacker, web_pod, socket.port)
        if attempt.success:
            result.reachable_tunnel_ports.append(socket.port)
            result.commands_sent.append(
                f"land-worker --worker worker-{socket.port} (via {web_pod.ip}:{socket.port})"
            )
    return result


# ---------------------------------------------------------------------------
# Thanos: service impersonation
# ---------------------------------------------------------------------------

#: The shared (colliding) label both Thanos compute units carry.
THANOS_SHARED_LABELS = {"app.kubernetes.io/name": "thanos-query-frontend"}


def thanos_behaviors() -> BehaviorRegistry:
    registry = BehaviorRegistry()
    registry.register(THANOS_FRONTEND_IMAGE, ContainerBehavior(listen_on_declared=True))
    registry.register(THANOS_QUERY_IMAGE, ContainerBehavior(listen_on_declared=True))
    return registry


def thanos_objects() -> list:
    """Thanos query + query-frontend sharing a single label (M4 collision)."""
    frontend = Deployment(
        metadata=ObjectMeta(name="thanos-query-frontend", labels=LabelSet(THANOS_SHARED_LABELS)),
        replicas=1,
        selector=equality_selector(**THANOS_SHARED_LABELS),
        template=PodTemplateSpec(
            metadata=ObjectMeta(name="thanos-query-frontend", labels=LabelSet(THANOS_SHARED_LABELS)),
            spec=PodSpec(
                containers=[
                    Container(
                        name="query-frontend",
                        image=THANOS_FRONTEND_IMAGE,
                        ports=[ContainerPort(10902, name="http")],
                    )
                ]
            ),
        ),
    )
    query = Deployment(
        metadata=ObjectMeta(name="thanos-query", labels=LabelSet(THANOS_SHARED_LABELS)),
        replicas=1,
        selector=equality_selector(**THANOS_SHARED_LABELS),
        template=PodTemplateSpec(
            metadata=ObjectMeta(name="thanos-query", labels=LabelSet(THANOS_SHARED_LABELS)),
            spec=PodSpec(
                containers=[
                    Container(
                        name="query",
                        image=THANOS_QUERY_IMAGE,
                        ports=[ContainerPort(10902, name="http"), ContainerPort(10901, name="grpc")],
                    )
                ]
            ),
        ),
    )
    frontend_service = Service(
        metadata=ObjectMeta(name="thanos-query-frontend", labels=LabelSet(THANOS_SHARED_LABELS)),
        selector=equality_selector(**THANOS_SHARED_LABELS),
        ports=[ServicePort(port=9090, target_port=10902, name="http")],
    )
    return [frontend, query, frontend_service]


def malicious_thanos_pod() -> Pod:
    """The attacker pod that adopts the colliding label to impersonate the service."""
    return Pod(
        metadata=ObjectMeta(name="thanos-impersonator", labels=LabelSet(THANOS_SHARED_LABELS)),
        spec=PodSpec(
            containers=[
                Container(
                    name="impersonator",
                    image="attacker/fake-thanos",
                    ports=[ContainerPort(10902, name="http")],
                )
            ]
        ),
    )


@dataclass
class ThanosAttackResult:
    """Outcome of the service-impersonation attack."""

    legitimate_backends: list[str] = field(default_factory=list)
    backends_receiving_traffic: list[str] = field(default_factory=list)

    @property
    def impersonation_succeeded(self) -> bool:
        return "thanos-impersonator" in self.backends_receiving_traffic


def run_thanos_attack(cluster: Cluster | None = None) -> ThanosAttackResult:
    """Deploy Thanos, add the malicious pod, and check who receives service traffic."""
    behaviors = thanos_behaviors()
    behaviors.register("attacker/fake-thanos", ContainerBehavior(listen_on_declared=True))
    cluster = cluster or Cluster(name="thanos-poc", behaviors=behaviors)
    cluster.install(thanos_objects(), app_name="thanos")
    cluster.install([malicious_thanos_pod(), make_attacker_pod()], app_name="attacker")
    client = cluster.running_pod("attacker")
    binding = cluster.binding_for("thanos-query-frontend")
    result = ThanosAttackResult(
        legitimate_backends=[pod.name for pod in cluster.running_pods(app_name="thanos")]
    )
    receiving = cluster.network.service_backends_receiving(
        cluster.network_policies(), client, binding, 9090
    )
    result.backends_receiving_traffic = [pod.name for pod in receiving]
    return result
