"""Builders: injection plan -> AppSpec -> Helm chart + runtime behaviours.

The builder produces applications that are *clean by construction* except
for the misconfigurations the plan asks for, so that the evaluation pipeline
can be validated end to end: analyzing a built application must yield
exactly the planned findings.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..cluster import BehaviorRegistry, ContainerBehavior, ListenSpec
from ..helm import Chart
from .spec import (
    AppSpec,
    ComponentSpec,
    InjectionPlan,
    NETPOL_DISABLED,
    NETPOL_DISABLED_LOOSE,
    NETPOL_ENABLED_ALLOW_ALL,
    NETPOL_ENABLED_MISMATCH,
    NETPOL_ENABLED_STRICT,
    NETPOL_NONE,
    NetworkPolicySpec,
    PortSpec,
    ServicePortSpec,
    ServiceSpec,
)

# Port ranges used by the injections (kept away from archetype base ports).
M1_PORT_BASE = 14001      # open but undeclared
M3_PORT_BASE = 15001      # declared but closed
M5A_PORT_BASE = 16001     # service target neither declared nor open
M5C_PORT_BASE = 17001     # headless service port unavailable
M4C_PORT = 8085           # shared port of subset-collision components
M4B_PORT = 8090           # port of the dual-service component
M5C_COMPONENT_PORT = 8086 # real port of the headless-service component
M7_PORT_BASE = 9100       # hostNetwork DaemonSet port

#: Pod label shared by every application participating in the M4* collision.
GLOBAL_COLLISION_LABELS = {"app": "global-metrics-agent"}

_SLUG_RE = re.compile(r"[^a-z0-9-]+")


def slugify(value: str) -> str:
    """Turn an organization or application name into a DNS-safe slug."""
    slug = _SLUG_RE.sub("-", value.lower()).strip("-")
    return slug or "app"


# ---------------------------------------------------------------------------
# Archetypes: the clean base structure of each application
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Archetype:
    """The clean skeleton of an application category."""

    name: str
    components: tuple[tuple[str, str, int, int], ...]  # (name, kind, replicas, port)
    description: str = ""


ARCHETYPES: dict[str, Archetype] = {
    "web": Archetype(
        "web",
        (("server", "Deployment", 2, 8080),),
        "stateless web application behind a ClusterIP service",
    ),
    "database": Archetype(
        "database",
        (("primary", "StatefulSet", 1, 5432),),
        "single-primary database",
    ),
    "monitoring": Archetype(
        "monitoring",
        (("exporter", "Deployment", 1, 9090),),
        "metrics exporter / observability component",
    ),
    "messaging": Archetype(
        "messaging",
        (("broker", "StatefulSet", 3, 5672), ("dashboard", "Deployment", 1, 15672)),
        "message broker with a management dashboard",
    ),
    "pipeline": Archetype(
        "pipeline",
        (("controller", "Deployment", 1, 8443), ("worker", "Deployment", 2, 7077)),
        "controller/worker data or CI pipeline",
    ),
    "microservices": Archetype(
        "microservices",
        (
            ("frontend", "Deployment", 2, 8080),
            ("api", "Deployment", 2, 9000),
            ("cache", "StatefulSet", 1, 6379),
        ),
        "multi-service application",
    ),
}

#: Deterministic assignment of archetypes when the catalogue does not pin one.
ARCHETYPE_CYCLE = ("web", "database", "monitoring", "messaging", "pipeline", "microservices")


def default_labels(app_name: str, component: str, organization: str = "") -> dict[str, str]:
    """The unique-by-construction labels of one component.

    The organization slug is included as ``app.kubernetes.io/part-of`` so
    that two organizations shipping a chart with the same name do not create
    accidental cross-dataset label collisions in the synthetic catalogue
    (global collisions are injected explicitly via the M4* marker instead).
    """
    labels = {
        "app.kubernetes.io/name": app_name,
        "app.kubernetes.io/instance": app_name,
        "app.kubernetes.io/component": component,
    }
    if organization:
        labels["app.kubernetes.io/part-of"] = slugify(organization)
    return labels


# ---------------------------------------------------------------------------
# Plan -> AppSpec
# ---------------------------------------------------------------------------


def build_app_spec(
    name: str,
    organization: str,
    plan: InjectionPlan,
    archetype: str = "web",
    version: str = "1.0.0",
) -> AppSpec:
    """Construct an application exhibiting exactly the planned misconfigurations."""
    plan.validate()
    base = ARCHETYPES[archetype]
    app = AppSpec(
        name=name,
        organization=organization,
        version=version,
        archetype=archetype,
        description=base.description,
        global_collision_marker=plan.global_collision,
    )
    org_slug = slugify(organization)

    # Clean base components and their services.
    for component_name, kind, replicas, port in base.components:
        component = ComponentSpec(
            name=component_name,
            kind=kind,
            replicas=replicas,
            image=f"{org_slug}/{slugify(name)}-{component_name}",
            ports=[PortSpec(number=port, name="main")],
            labels=default_labels(name, component_name, organization),
        )
        app.components.append(component)
        app.services.append(
            ServiceSpec(
                name=f"{slugify(name)}-{component_name}",
                component=component_name,
                ports=[ServicePortSpec(port=port, target_port=port, name="main")],
            )
        )

    primary = app.components[0]
    primary_service = app.services[0]

    # M1: open, undeclared ports on the primary component.
    m1_ports = [M1_PORT_BASE + i for i in range(plan.m1)]
    for port in m1_ports:
        primary.ports.append(PortSpec(number=port, declared=False, opened=True))

    # M3: declared, never-opened ports on the primary component.
    for i in range(plan.m3):
        primary.ports.append(
            PortSpec(number=M3_PORT_BASE + i, name=f"opt-{i}", declared=True, opened=False)
        )

    # M2: dynamic ports, one component per finding.
    for i in range(plan.m2):
        if i == 0:
            primary.dynamic_ports += 1
        else:
            target = app.components[min(i, len(app.components) - 1)]
            if target.dynamic_ports:
                target = _add_aux_component(app, org_slug, f"coordinator-{i}", 7400 + i)
            target.dynamic_ports += 1

    # M4A: pairs of compute units with identical labels.
    for i in range(plan.m4a):
        shared = {
            "app.kubernetes.io/name": name,
            "app.kubernetes.io/instance": name,
            "app.kubernetes.io/part-of": org_slug,
            "collision-group": f"group-{i}",
        }
        for suffix in ("a", "b"):
            app.components.append(
                ComponentSpec(
                    name=f"agent-{i}-{suffix}",
                    kind="Deployment",
                    replicas=1,
                    image=f"{org_slug}/{slugify(name)}-agent-{i}-{suffix}",
                    ports=[],
                    labels=dict(shared),
                )
            )

    # M4B: components fronted by two services each.
    for i in range(plan.m4b):
        component = _add_aux_component(app, org_slug, f"gateway-{i}", M4B_PORT + i)
        for which in ("svc", "svc-internal"):
            app.services.append(
                ServiceSpec(
                    name=f"{slugify(name)}-{component.name}-{which}",
                    component=component.name,
                    ports=[ServicePortSpec(port=M4B_PORT + i, target_port=M4B_PORT + i, name="main")],
                )
            )

    # M4C: one service selecting two unrelated components via a shared subset label.
    for i in range(plan.m4c):
        subset = {
            "app.kubernetes.io/name": name,
            "app.kubernetes.io/part-of": org_slug,
            "tier": f"shared-{i}",
        }
        for suffix in ("alpha", "beta"):
            labels = default_labels(name, f"pool-{i}-{suffix}", organization)
            labels["tier"] = f"shared-{i}"
            app.components.append(
                ComponentSpec(
                    name=f"pool-{i}-{suffix}",
                    kind="Deployment",
                    replicas=1,
                    image=f"{org_slug}/{slugify(name)}-pool-{i}-{suffix}",
                    ports=[PortSpec(number=M4C_PORT, name="main")],
                    labels=labels,
                )
            )
        app.services.append(
            ServiceSpec(
                name=f"{slugify(name)}-pool-{i}",
                selector=subset,
                ports=[ServicePortSpec(port=M4C_PORT, target_port=M4C_PORT, name="main")],
            )
        )

    # M5A: the primary service also exposes a port whose target is dead.
    for i in range(plan.m5a):
        dead = M5A_PORT_BASE + i
        primary_service.ports.append(
            ServicePortSpec(port=dead, target_port=dead, name=f"dead-{i}")
        )

    # M5B: the primary service exposes a port targeting an open-but-undeclared port.
    for i in range(plan.m5b):
        hidden = m1_ports[i]
        primary_service.ports.append(
            ServicePortSpec(port=20000 + i, target_port=hidden, name=f"hidden-{i}")
        )

    # M5C: headless services whose single port is unavailable on their pods.
    for i in range(plan.m5c):
        component = _add_aux_component(app, org_slug, f"peers-{i}", M5C_COMPONENT_PORT + i,
                                       kind="StatefulSet")
        app.services.append(
            ServiceSpec(
                name=f"{slugify(name)}-{component.name}-headless",
                component=component.name,
                headless=True,
                ports=[ServicePortSpec(port=M5C_PORT_BASE + i, target_port=M5C_PORT_BASE + i,
                                       name="gossip")],
            )
        )

    # M5D: services whose selector matches nothing.
    for i in range(plan.m5d):
        app.services.append(
            ServiceSpec(
                name=f"{slugify(name)}-orphan-{i}",
                selector={"app.kubernetes.io/name": f"{name}-retired-{i}"},
                ports=[ServicePortSpec(port=8000 + i, target_port=8000 + i, name="main")],
            )
        )

    # M7: hostNetwork DaemonSets (node agents / exporters).
    for i in range(plan.m7):
        app.components.append(
            ComponentSpec(
                name=f"node-agent-{i}",
                kind="DaemonSet",
                replicas=1,
                image=f"{org_slug}/{slugify(name)}-node-agent-{i}",
                ports=[PortSpec(number=M7_PORT_BASE + i, name="metrics")],
                host_network=True,
                labels=default_labels(name, f"node-agent-{i}", organization),
            )
        )

    # M4*: the shared marker component (identical labels across applications).
    if plan.global_collision:
        app.components.append(
            ComponentSpec(
                name="global-metrics-agent",
                kind="Deployment",
                replicas=1,
                image="shared/global-metrics-agent",
                ports=[],
                labels=dict(GLOBAL_COLLISION_LABELS),
            )
        )

    # Network policy posture.
    app.network_policy = _network_policy_for(plan)
    return app


def _add_aux_component(
    app: AppSpec, org_slug: str, component_name: str, port: int, kind: str = "Deployment"
) -> ComponentSpec:
    component = ComponentSpec(
        name=component_name,
        kind=kind,
        replicas=1,
        image=f"{org_slug}/{slugify(app.name)}-{component_name}",
        ports=[PortSpec(number=port, name="main")],
        labels=default_labels(app.name, component_name, app.organization),
    )
    app.components.append(component)
    return component


def _network_policy_for(plan: InjectionPlan) -> NetworkPolicySpec:
    if plan.netpol_mode is not None:
        return NetworkPolicySpec(mode=plan.netpol_mode)
    if plan.m6:
        return NetworkPolicySpec(mode=NETPOL_NONE)
    return NetworkPolicySpec(mode=NETPOL_ENABLED_STRICT)


# ---------------------------------------------------------------------------
# AppSpec -> Helm chart
# ---------------------------------------------------------------------------

_HELPERS_TEMPLATE = """\
{{- define "app.name" -}}
{{ .Chart.Name }}
{{- end }}
{{- define "app.commonLabels" -}}
helm.sh/chart: {{ printf "%s-%s" .Chart.Name .Chart.Version }}
app.kubernetes.io/managed-by: {{ .Release.Service }}
app.kubernetes.io/part-of: {{ .Chart.Name }}
{{- end }}
"""

_COMPONENTS_TEMPLATE = """\
{{- range $name, $comp := .Values.components }}
---
apiVersion: {{ $comp.apiVersion }}
kind: {{ $comp.kind }}
metadata:
  name: {{ $.Release.Name }}-{{ $name }}
  namespace: {{ $.Release.Namespace }}
  labels:
    {{- toYaml $comp.labels | nindent 4 }}
    {{- include "app.commonLabels" $ | nindent 4 }}
spec:
  {{- if ne $comp.kind "DaemonSet" }}
  replicas: {{ $comp.replicas }}
  {{- end }}
  selector:
    matchLabels:
      {{- toYaml $comp.labels | nindent 6 }}
  template:
    metadata:
      labels:
        {{- toYaml $comp.labels | nindent 8 }}
    spec:
      {{- if $comp.hostNetwork }}
      hostNetwork: true
      {{- end }}
      containers:
        - name: {{ $name }}
          image: {{ $comp.image | quote }}
          {{- if $comp.ports }}
          ports:
            {{- range $comp.ports }}
            - containerPort: {{ .port }}
              {{- if .name }}
              name: {{ .name }}
              {{- end }}
              protocol: {{ .protocol | default "TCP" }}
            {{- end }}
          {{- end }}
{{- end }}
"""

_SERVICES_TEMPLATE = """\
{{- range $name, $svc := .Values.services }}
---
apiVersion: v1
kind: Service
metadata:
  name: {{ $.Release.Name }}-{{ $name }}
  namespace: {{ $.Release.Namespace }}
  labels:
    app.kubernetes.io/part-of: {{ $.Chart.Name }}
    {{- include "app.commonLabels" $ | nindent 4 }}
spec:
  type: ClusterIP
  {{- if $svc.headless }}
  clusterIP: None
  {{- end }}
  selector:
    {{- toYaml $svc.selector | nindent 4 }}
  ports:
    {{- range $svc.ports }}
    - name: {{ .name }}
      port: {{ .port }}
      targetPort: {{ .targetPort }}
      protocol: {{ .protocol | default "TCP" }}
    {{- end }}
{{- end }}
"""

_NETWORKPOLICY_TEMPLATE = """\
{{- if .Values.networkPolicy.enabled }}
apiVersion: networking.k8s.io/v1
kind: NetworkPolicy
metadata:
  name: {{ .Release.Name }}-ingress
  namespace: {{ .Release.Namespace }}
  labels:
    app.kubernetes.io/part-of: {{ .Chart.Name }}
spec:
  podSelector:
    {{- if .Values.networkPolicy.podSelector }}
    matchLabels:
      {{- toYaml .Values.networkPolicy.podSelector | nindent 6 }}
    {{- end }}
  policyTypes:
    - Ingress
  ingress:
    {{- if .Values.networkPolicy.allowedPorts }}
    - ports:
        {{- range .Values.networkPolicy.allowedPorts }}
        - port: {{ . }}
        {{- end }}
    {{- else }}
    - {}
    {{- end }}
{{- end }}
"""

#: Kubernetes apiVersion per workload kind.
_API_VERSIONS = {"Deployment": "apps/v1", "StatefulSet": "apps/v1", "DaemonSet": "apps/v1"}


def _component_values(app: AppSpec) -> dict:
    values: dict = {}
    for component in app.components:
        values[component.name] = {
            "apiVersion": _API_VERSIONS.get(component.kind, "apps/v1"),
            "kind": component.kind,
            "replicas": component.replicas,
            "image": component.image,
            "hostNetwork": component.host_network,
            "labels": component.labels or default_labels(app.name, component.name, app.organization),
            "ports": [
                {"port": port.number, "name": port.name, "protocol": port.protocol}
                for port in component.ports
                if port.declared
            ],
        }
    return values


def _service_values(app: AppSpec) -> dict:
    values: dict = {}
    for service in app.services:
        if service.selector is not None:
            selector = dict(service.selector)
        else:
            component = app.component(service.component)
            selector = dict(
                component.labels if component and component.labels
                else default_labels(app.name, service.component, app.organization)
            )
        values[service.name] = {
            "headless": service.headless,
            "selector": selector,
            "ports": [
                {
                    "name": port.name or f"port-{port.port}",
                    "port": port.port,
                    "targetPort": port.target_port if port.target_port is not None else port.port,
                    "protocol": port.protocol,
                }
                for port in service.ports
            ],
        }
    return values


def _network_policy_values(app: AppSpec) -> dict:
    policy = app.network_policy
    if policy.mode == NETPOL_NONE:
        return {"enabled": False, "defined": False, "allowedPorts": [], "podSelector": {}}
    allowed_ports: list[int] = []
    if policy.mode in (NETPOL_ENABLED_STRICT, NETPOL_DISABLED):
        allowed_ports = list(policy.allowed_ports) or sorted(
            {
                int(port.target_port)
                for service in app.services
                for port in service.ports
                if isinstance(port.target_port, int)
            }
        )
    pod_selector: dict[str, str] = {}
    if policy.mode == NETPOL_ENABLED_MISMATCH:
        pod_selector = {"app.kubernetes.io/name": f"{app.name}-legacy"}
    return {
        "enabled": policy.enabled_by_default,
        "defined": True,
        "allowedPorts": allowed_ports,
        "podSelector": pod_selector,
    }


def build_values(app: AppSpec) -> dict:
    """The chart's default values.yaml content (as a dictionary)."""
    return {
        "components": _component_values(app),
        "services": _service_values(app),
        "networkPolicy": _network_policy_values(app),
    }


def _sorted_tree(value):
    """Recursively key-sort a values tree.

    The chart adopts the builder's values dict-natively (no ``values.yaml``
    round trip), but the on-disk form this replaces was dumped with
    ``sort_keys=True`` and re-parsed -- so mapping iteration order (which
    ``range`` in templates observes) must stay sorted for charts, renders
    and fingerprints to be byte-identical with that era.
    """
    if isinstance(value, dict):
        return {key: _sorted_tree(value[key]) for key in sorted(value)}
    if isinstance(value, list):
        return [_sorted_tree(item) for item in value]
    return value


def build_chart(app: AppSpec) -> Chart:
    """Build the Helm chart of a synthetic application."""
    values = build_values(app)
    templates = {
        "_helpers.tpl": _HELPERS_TEMPLATE,
        "components.yaml": _COMPONENTS_TEMPLATE,
        "services.yaml": _SERVICES_TEMPLATE,
    }
    if app.network_policy.defined:
        templates["networkpolicy.yaml"] = _NETWORKPOLICY_TEMPLATE
    chart = Chart.from_files(
        name=app.name,
        values=_sorted_tree(values),
        templates=templates,
        version=app.version,
        description=app.description or f"{app.archetype} application",
        organization=app.organization,
    )
    return chart


def build_behaviors(app: AppSpec) -> BehaviorRegistry:
    """Register the runtime behaviour of every container image of the app."""
    registry = BehaviorRegistry()
    for component in app.components:
        ignore = {port.number for port in component.ports if port.declared and not port.opened}
        extra = [
            ListenSpec(port=port.number, protocol=port.protocol)
            for port in component.ports
            if port.opened and not port.declared
        ]
        extra.extend(ListenSpec(port=None) for _ in range(component.dynamic_ports))
        registry.register(
            component.image,
            ContainerBehavior(
                listen_on_declared=True,
                ignore_declared_ports=ignore,
                extra_listens=extra,
            ),
        )
    return registry


@dataclass
class BuiltApplication:
    """Everything the evaluation pipeline needs about one application."""

    spec: AppSpec
    plan: InjectionPlan
    chart: Chart
    behaviors: BehaviorRegistry
    dataset: str = ""
    use_case: str = ""  # sharing | internal | production
    #: Cached chart content fingerprint (charts are immutable once built).
    _fingerprint: str | None = field(default=None, init=False, repr=False, compare=False)

    def fingerprint(self) -> str:
        """The chart's content fingerprint, hashed once and cached.

        Sweeps key the render cache on this repeatedly (serial pass, bench
        reruns, process fan-outs); caching it here means a catalogue is
        hashed once per build instead of once per consumer.
        """
        if self._fingerprint is None:
            self._fingerprint = self.chart.fingerprint()
        return self._fingerprint

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def organization(self) -> str:
        return self.spec.organization

    @property
    def defines_network_policies(self) -> bool:
        return self.spec.network_policy.defined

    @property
    def network_policies_enabled_by_default(self) -> bool:
        return self.spec.network_policy.enabled_by_default


def build_application(
    name: str,
    organization: str,
    plan: InjectionPlan,
    archetype: str = "web",
    dataset: str = "",
    use_case: str = "",
    version: str = "1.0.0",
) -> BuiltApplication:
    """End-to-end helper: plan -> spec -> chart + behaviours."""
    spec = build_app_spec(name, organization, plan, archetype=archetype, version=version)
    application = BuiltApplication(
        spec=spec,
        plan=plan,
        chart=build_chart(spec),
        behaviors=build_behaviors(spec),
        dataset=dataset or organization,
        use_case=use_case,
    )
    # Hash the chart while its content is authoritative (it was just built):
    # every downstream consumer -- evaluation sweeps, render-cache keys, the
    # process-pool fan-out -- then reads the memo instead of re-hashing
    # inside its own timed/hot path.
    application.fingerprint()
    return application
