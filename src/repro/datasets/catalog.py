"""The synthetic catalogue of the six organizations evaluated in the paper.

The real evaluation analyzed 287 open-source Helm charts from Banzai Cloud,
Bitnami, CNCF, the European Environment Agency, Prometheus Community and
Wikimedia (Section 4.1).  Those repositories are not available offline, so
this module builds an equivalent synthetic catalogue: the same number of
applications per organization, with misconfigurations injected so that the
per-dataset totals reproduce Table 2 and the most-misconfigured applications
mirror Figure 3.

The catalogue is fully deterministic: the same seed always yields the same
287 charts, so experiments are reproducible run to run.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from .builder import ARCHETYPE_CYCLE, BuiltApplication, build_application
from .spec import (
    InjectionPlan,
    NETPOL_DISABLED,
    NETPOL_DISABLED_LOOSE,
    NETPOL_ENABLED_ALLOW_ALL,
    NETPOL_ENABLED_STRICT,
    NETPOL_NONE,
)

#: Use-case grouping of Section 4.1.1.
USE_CASE_SHARING = "sharing"
USE_CASE_INTERNAL = "internal"
USE_CASE_PRODUCTION = "production"


@dataclass
class DatasetTargets:
    """Per-dataset misconfiguration totals (one row of Table 2)."""

    total_apps: int
    affected_apps: int
    m1: int = 0
    m2: int = 0
    m3: int = 0
    m4a: int = 0
    m4b: int = 0
    m4c: int = 0
    m4_global: int = 0
    m5a: int = 0
    m5b: int = 0
    m5c: int = 0
    m5d: int = 0
    m6: int = 0
    m7: int = 0

    def total_misconfigurations(self) -> int:
        return (
            self.m1 + self.m2 + self.m3 + self.m4a + self.m4b + self.m4c + self.m4_global
            + self.m5a + self.m5b + self.m5c + self.m5d + self.m6 + self.m7
        )


@dataclass
class NotableApp:
    """A hand-specified application mirroring Figure 3's top charts."""

    name: str
    version: str
    archetype: str
    plan: InjectionPlan


@dataclass
class DatasetDefinition:
    """Everything needed to generate one organization's synthetic charts."""

    name: str
    organization: str
    use_case: str
    targets: DatasetTargets
    name_pool: list[str]
    notable: list[NotableApp] = field(default_factory=list)
    #: Network-policy posture parameters (drives M6 and Figure 4b).
    disabled_strict_policies: int = 0
    disabled_loose_policies: int = 0
    enabled_loose_policies: int = 0


# ---------------------------------------------------------------------------
# Table 2 targets
# ---------------------------------------------------------------------------

TABLE2_TARGETS: dict[str, DatasetTargets] = {
    "Banzai Cloud": DatasetTargets(
        total_apps=51, affected_apps=51,
        m1=13, m2=2, m3=17, m4a=8, m4b=4, m5b=2, m6=51,
    ),
    "Bitnami": DatasetTargets(
        total_apps=158, affected_apps=158,
        m1=106, m2=26, m3=40, m4a=25, m4b=10, m4_global=5, m5a=2, m5b=14, m5c=3, m6=156, m7=7,
    ),
    "CNCF": DatasetTargets(
        total_apps=10, affected_apps=7,
        m1=10, m3=4, m5a=6, m6=7,
    ),
    "EEA": DatasetTargets(
        total_apps=19, affected_apps=8,
        m1=7, m3=1, m4b=1,
    ),
    "Prometheus C.": DatasetTargets(
        total_apps=25, affected_apps=25,
        m1=42, m2=4, m3=3, m5a=1, m5b=4, m6=25, m7=4,
    ),
    "Wikimedia": DatasetTargets(
        total_apps=27, affected_apps=10,
        m1=10, m2=3, m3=2, m4a=2, m4b=1, m4c=1, m5a=2, m5b=1, m6=2,
    ),
}

#: Paper-reported grand totals, used by validation tests.
TABLE2_TOTAL_MISCONFIGURATIONS = 634
#: The paper's abstract and Section 4.1 report 287 applications, but the
#: per-dataset rows of Table 2 sum to 290 (51+158+10+19+25+27).  We reproduce
#: the table rows, so the catalogue contains 290 applications; both constants
#: are kept for transparency.
TABLE2_TOTAL_APPLICATIONS = 287
TABLE2_ROW_SUM_APPLICATIONS = 290
TABLE2_AFFECTED_APPLICATIONS = 259


# ---------------------------------------------------------------------------
# Name pools (plausible chart names per organization)
# ---------------------------------------------------------------------------

_BITNAMI_POOL = [
    "airflow", "apache", "appsmith", "argo-cd", "aspnet-core", "cassandra", "cert-manager",
    "concourse", "consul", "contour", "discourse", "dokuwiki", "drupal", "ejbca",
    "elasticsearch", "etcd", "external-dns", "fluent-bit", "fluentd", "ghost", "gitea",
    "grafana", "grafana-loki", "grafana-mimir", "haproxy", "harbor", "influxdb",
    "jasperreports", "jenkins", "joomla", "jupyterhub", "kafka", "keycloak", "kibana",
    "kong", "kubeapps", "kubernetes-event-exporter", "matomo", "mariadb", "mariadb-galera",
    "mastodon", "mediawiki", "memcached", "milvus", "minio", "mongodb", "mongodb-sharded",
    "moodle", "multus-cni", "mysql", "nats", "neo4j", "nginx", "nginx-ingress-controller",
    "node-red", "odoo", "opencart", "opensearch", "owncloud", "parse", "phpbb", "phpmyadmin",
    "postgresql", "postgresql-ha", "prestashop", "pytorch", "rabbitmq",
    "rabbitmq-cluster-operator", "redis", "redis-cluster", "redmine", "schema-registry",
    "sealed-secrets", "solr", "sonarqube", "spark", "spring-cloud-dataflow", "suitecrm",
    "supabase", "tensorflow-resnet", "thanos", "tomcat", "valkey", "vault", "whereabouts",
    "wildfly", "wordpress", "zipkin", "zookeeper",
]

_BANZAI_POOL = [
    "anchore-policy-validator", "cadence", "cluster-autoscaler", "dex", "espejo",
    "etcd-operator", "hpa-operator", "imagepullsecrets", "istio", "kafka-operator",
    "logging-operator", "logging-operator-logging", "pipeline", "prometheus-operator",
    "spot-config-webhook", "supertubes", "thanos", "vault-operator", "vault-secrets-webhook",
    "zeppelin", "zookeeper-operator", "allspark", "banzai-dashboard", "backup-operator",
    "telescopes", "cloudinfo", "dast-operator", "instance-termination-handler",
    "kafka-minion", "koperator", "log-socket", "nodepool-labels-operator", "pke-installer",
    "pvc-operator", "scale-operator", "security-scanner", "spark-history-server",
    "spark-resource-staging-server", "spark-shuffle-service", "tidb-operator",
    "vault-dynamic-secrets", "wildfly-operator", "mysql-operator", "nats-operator",
    "object-store-operator", "ingress-operator", "canary-operator",
]

_CNCF_POOL = [
    "cert-manager", "coredns", "envoy-gateway", "fluentd", "harbor", "jaeger-operator",
    "linkerd-control-plane", "nats", "opentelemetry-collector", "thanos",
]

_EEA_POOL = [
    "plone", "volto", "eea-website", "data-api", "geonetwork", "zope", "postgres-backup",
    "varnish", "rabbitmq-broker", "redis-cache", "elastic-search", "logstash", "kibana-dash",
    "matomo-analytics", "sdi-catalog", "land-copernicus", "forests-dashboard",
    "climate-adapt", "nessus-scanner",
]

_PROMETHEUS_POOL = [
    "alertmanager", "prometheus-adapter", "prometheus-blackbox-exporter",
    "prometheus-cloudwatch-exporter", "prometheus-consul-exporter",
    "prometheus-couchdb-exporter", "prometheus-elasticsearch-exporter",
    "prometheus-json-exporter", "prometheus-kafka-exporter", "prometheus-memcached-exporter",
    "prometheus-mongodb-exporter", "prometheus-mysql-exporter", "prometheus-nginx-exporter",
    "prometheus-pingdom-exporter", "prometheus-postgres-exporter", "prometheus-pushgateway",
    "prometheus-rabbitmq-exporter", "prometheus-redis-exporter", "prometheus-snmp-exporter",
    "prometheus-statsd-exporter", "prometheus-windows-exporter",
]

_WIKIMEDIA_POOL = [
    "mediawiki", "ipoid", "eventgate", "citoid", "cxserver", "echostore", "kartotherian",
    "linkrecommendation", "mathoid", "mobileapps", "proton", "push-notifications",
    "recommendation-api", "restrouter", "sessionstore", "shellbox", "termbox", "wikifeeds",
    "zotero", "blubberoid", "changeprop", "chromium-render", "eventstreams",
    "image-suggestion", "maps-vector-server", "mw-content-enrich", "toolhub",
]


# ---------------------------------------------------------------------------
# Notable applications (Figure 3)
# ---------------------------------------------------------------------------

_BITNAMI_NOTABLE = [
    NotableApp("kube-prometheus", "8.15.3", "monitoring",
               InjectionPlan(m1=10, m2=1, m3=2, m4a=1, m5b=1, m6=True, m7=1)),
    NotableApp("kube-prometheus-aks", "8.1.11", "monitoring",
               InjectionPlan(m1=9, m2=1, m3=2, m4a=1, m5b=1, m6=True, m7=1)),
    NotableApp("jaeger", "1.2.7", "pipeline",
               InjectionPlan(m1=7, m2=1, m3=1, m6=True)),
    NotableApp("metallb", "4.5.6", "web",
               InjectionPlan(m1=6, m2=1, m6=True, m7=1)),
    NotableApp("metallb-aks", "2.0.3", "web",
               InjectionPlan(m1=5, m2=1, m6=True, m7=1)),
    NotableApp("pinniped-aks", "0.4.5", "microservices",
               InjectionPlan(m1=4, m2=1, m3=2, m4a=1, m6=True)),
    NotableApp("clickhouse", "3.5.5", "database",
               InjectionPlan(m1=3, m2=1, m3=2, m4a=1, m4b=1, m6=True)),
    NotableApp("clickhouse-aks", "1.0.3", "database",
               InjectionPlan(m1=3, m2=1, m3=1, m4a=1, m5b=1, m6=True)),
    NotableApp("zookeeper-aks", "10.2.4", "database",
               InjectionPlan(m1=2, m2=1, m3=1, m4a=1, m5a=1, m6=True)),
    NotableApp("grafana-tempo-aks", "1.4.5", "pipeline",
               InjectionPlan(m1=2, m2=1, m3=1, m4a=1, m5c=1, m6=True)),
]

_PROMETHEUS_NOTABLE = [
    NotableApp("kube-prometheus-stack", "48.4.0", "monitoring",
               InjectionPlan(m1=12, m2=1, m3=1, m5b=2, m6=True, m7=2)),
    NotableApp("prometheus", "23.4.0", "monitoring",
               InjectionPlan(m1=8, m2=1, m6=True, m7=1)),
    NotableApp("prometheus-node-exporter", "4.22.0", "monitoring",
               InjectionPlan(m1=6, m6=True, m7=1)),
    NotableApp("prometheus-smartctl-exporter", "0.5.0", "monitoring",
               InjectionPlan(m1=6, m2=1, m6=True)),
]

_BANZAI_NOTABLE = [
    NotableApp("istio-operator", "2.1.4", "pipeline",
               InjectionPlan(m1=2, m2=1, m3=3, m4a=1, m4b=1, m6=True)),
    NotableApp("istio-operator-stable", "2.1.4", "pipeline",
               InjectionPlan(m1=2, m2=1, m3=3, m4a=1, m5b=1, m6=True)),
]


# ---------------------------------------------------------------------------
# Dataset definitions
# ---------------------------------------------------------------------------

DATASETS: dict[str, DatasetDefinition] = {
    "Banzai Cloud": DatasetDefinition(
        name="Banzai Cloud",
        organization="Banzai Cloud",
        use_case=USE_CASE_SHARING,
        targets=TABLE2_TARGETS["Banzai Cloud"],
        name_pool=_BANZAI_POOL,
        notable=_BANZAI_NOTABLE,
    ),
    "Bitnami": DatasetDefinition(
        name="Bitnami",
        organization="Bitnami",
        use_case=USE_CASE_SHARING,
        targets=TABLE2_TARGETS["Bitnami"],
        name_pool=_BITNAMI_POOL,
        notable=_BITNAMI_NOTABLE,
        disabled_strict_policies=43,
        disabled_loose_policies=3,
    ),
    "CNCF": DatasetDefinition(
        name="CNCF",
        organization="CNCF",
        use_case=USE_CASE_PRODUCTION,
        targets=TABLE2_TARGETS["CNCF"],
        name_pool=_CNCF_POOL,
        disabled_strict_policies=1,
    ),
    "EEA": DatasetDefinition(
        name="EEA",
        organization="European Environment Agency",
        use_case=USE_CASE_INTERNAL,
        targets=TABLE2_TARGETS["EEA"],
        name_pool=_EEA_POOL,
        enabled_loose_policies=8,
    ),
    "Prometheus C.": DatasetDefinition(
        name="Prometheus C.",
        organization="Prometheus Community",
        use_case=USE_CASE_PRODUCTION,
        targets=TABLE2_TARGETS["Prometheus C."],
        name_pool=_PROMETHEUS_POOL,
        notable=_PROMETHEUS_NOTABLE,
        disabled_strict_policies=2,
        disabled_loose_policies=3,
    ),
    "Wikimedia": DatasetDefinition(
        name="Wikimedia",
        organization="Wikimedia",
        use_case=USE_CASE_INTERNAL,
        targets=TABLE2_TARGETS["Wikimedia"],
        name_pool=_WIKIMEDIA_POOL,
        enabled_loose_policies=4,
    ),
}

DATASET_ORDER = ("Banzai Cloud", "Bitnami", "CNCF", "EEA", "Prometheus C.", "Wikimedia")


# ---------------------------------------------------------------------------
# Plan distribution
# ---------------------------------------------------------------------------


class CatalogError(Exception):
    """Raised when a dataset definition cannot realize its targets."""


@dataclass
class PlannedApp:
    """An application name with its injection plan, before chart building."""

    name: str
    version: str
    archetype: str
    plan: InjectionPlan


def _app_names(definition: DatasetDefinition) -> list[str]:
    """Generate the generic application names for a dataset.

    Names come from the organization's pool; when the pool is smaller than
    the dataset, ``-aks`` (alternative distribution) variants are appended,
    mirroring how the paper counts the Bitnami and Bitnami-AKS charts as
    separate applications.  Names never repeat within a dataset.
    """
    needed = definition.targets.total_apps - len(definition.notable)
    taken = {notable.name for notable in definition.notable}
    names: list[str] = []
    for name in definition.name_pool:
        if name not in taken:
            names.append(name)
            taken.add(name)
    index = 0
    suffix_round = 1
    while len(names) < needed:
        base = definition.name_pool[index % len(definition.name_pool)]
        suffix = "-aks" if suffix_round == 1 else f"-v{suffix_round}"
        candidate = f"{base}{suffix}"
        index += 1
        if index % len(definition.name_pool) == 0:
            suffix_round += 1
        if candidate in taken:
            continue
        names.append(candidate)
        taken.add(candidate)
    return names[:needed]


def plan_dataset(definition: DatasetDefinition) -> list[PlannedApp]:
    """Distribute the dataset's Table 2 targets across its applications."""
    targets = definition.targets
    planned: list[PlannedApp] = []
    for notable in definition.notable:
        planned.append(
            PlannedApp(notable.name, notable.version, notable.archetype, copy.deepcopy(notable.plan))
        )
    for index, name in enumerate(_app_names(definition)):
        archetype = ARCHETYPE_CYCLE[index % len(ARCHETYPE_CYCLE)]
        planned.append(PlannedApp(name, "1.0.0", archetype, InjectionPlan()))

    if len(planned) != targets.total_apps:
        raise CatalogError(
            f"{definition.name}: generated {len(planned)} apps, expected {targets.total_apps}"
        )

    affected = planned[: targets.affected_apps]

    # --- M6 -----------------------------------------------------------------
    remaining_m6 = targets.m6 - sum(1 for app in planned if app.plan.m6)
    if remaining_m6 < 0:
        raise CatalogError(f"{definition.name}: notable apps exceed the M6 target")
    for app in affected:
        if remaining_m6 <= 0:
            break
        if not app.plan.m6:
            app.plan.m6 = True
            remaining_m6 -= 1
    if remaining_m6:
        raise CatalogError(f"{definition.name}: could not place {remaining_m6} M6 findings")

    # --- Count-based classes ---------------------------------------------------
    def assign(attribute: str, remaining: int, eligible=None) -> None:
        if remaining < 0:
            raise CatalogError(f"{definition.name}: notable apps exceed the {attribute} target")
        while remaining > 0:
            candidates = [app for app in affected if eligible is None or eligible(app)]
            if not candidates:
                raise CatalogError(
                    f"{definition.name}: no eligible application left for {attribute}"
                )
            app = min(candidates, key=lambda a: (a.plan.total(), affected.index(a)))
            setattr(app.plan, attribute, getattr(app.plan, attribute) + 1)
            remaining -= 1

    consumed = {
        "m1": sum(app.plan.m1 for app in planned),
        "m2": sum(app.plan.m2 for app in planned),
        "m3": sum(app.plan.m3 for app in planned),
        "m4a": sum(app.plan.m4a for app in planned),
        "m4b": sum(app.plan.m4b for app in planned),
        "m4c": sum(app.plan.m4c for app in planned),
        "m5a": sum(app.plan.m5a for app in planned),
        "m5b": sum(app.plan.m5b for app in planned),
        "m5c": sum(app.plan.m5c for app in planned),
        "m5d": sum(app.plan.m5d for app in planned),
        "m7": sum(app.plan.m7 for app in planned),
    }
    assign("m1", targets.m1 - consumed["m1"])
    assign("m3", targets.m3 - consumed["m3"])
    assign("m2", targets.m2 - consumed["m2"])
    assign("m4a", targets.m4a - consumed["m4a"])
    assign("m4b", targets.m4b - consumed["m4b"])
    assign("m4c", targets.m4c - consumed["m4c"])
    assign("m5a", targets.m5a - consumed["m5a"])
    assign("m5c", targets.m5c - consumed["m5c"])
    assign("m5d", targets.m5d - consumed["m5d"])
    assign("m7", targets.m7 - consumed["m7"])
    assign("m5b", targets.m5b - consumed["m5b"], eligible=lambda app: app.plan.m5b < app.plan.m1)

    # --- Global collision markers (M4*) ---------------------------------------------
    remaining_global = targets.m4_global
    for app in affected:
        if remaining_global <= 0:
            break
        app.plan.global_collision = True
        remaining_global -= 1
    if remaining_global:
        raise CatalogError(f"{definition.name}: could not place all M4* markers")

    # --- Sanity: every affected app has at least one finding, clean apps none ---------
    for app in affected:
        if app.plan.total() == 0:
            raise CatalogError(f"{definition.name}/{app.name}: affected app has no findings")
    for app in planned[targets.affected_apps:]:
        if app.plan.total() != 0:
            raise CatalogError(f"{definition.name}/{app.name}: clean app received findings")

    _assign_network_policies(definition, planned)
    return planned


def _assign_network_policies(definition: DatasetDefinition, planned: list[PlannedApp]) -> None:
    """Assign the network-policy posture of every application.

    Applications with M6 ship either no policy or a policy disabled by
    default; applications without M6 ship an enabled policy.  The number of
    loose (ineffective) policies drives the Figure 4b "affected" column.
    """
    m6_apps = [app for app in planned if app.plan.m6]
    non_m6_apps = [app for app in planned if not app.plan.m6]

    disabled_loose = definition.disabled_loose_policies
    disabled_strict = definition.disabled_strict_policies
    # Loose policies go to applications that actually expose misconfigured
    # open ports, so that force-enabling them still leaves endpoints reachable
    # (these become the "affected" rows of Figure 4b).  Strict policies are
    # assigned preferentially to applications whose misconfigurations a strict
    # policy *does* remedy (no hostNetwork escape, no service pointing at an
    # undeclared port), mirroring the paper's observation that only a handful
    # of policy-shipping charts remain affected.
    for app in sorted(m6_apps, key=lambda a: (-(a.plan.m1 + a.plan.m2), m6_apps.index(a))):
        if disabled_loose > 0:
            app.plan.netpol_mode = NETPOL_DISABLED_LOOSE
            disabled_loose -= 1
        else:
            app.plan.netpol_mode = NETPOL_NONE
    strict_candidates = sorted(
        (app for app in m6_apps if app.plan.netpol_mode == NETPOL_NONE),
        key=lambda a: (a.plan.m5b + a.plan.m7, a.plan.m2, m6_apps.index(a)),
    )
    for app in strict_candidates:
        if disabled_strict <= 0:
            break
        app.plan.netpol_mode = NETPOL_DISABLED
        disabled_strict -= 1

    enabled_loose = definition.enabled_loose_policies
    for app in sorted(non_m6_apps, key=lambda a: (-(a.plan.m1 + a.plan.m2), non_m6_apps.index(a))):
        if enabled_loose > 0 and app.plan.total() > 0:
            app.plan.netpol_mode = NETPOL_ENABLED_ALLOW_ALL
            enabled_loose -= 1
        else:
            app.plan.netpol_mode = NETPOL_ENABLED_STRICT


# ---------------------------------------------------------------------------
# Catalogue construction
# ---------------------------------------------------------------------------


def build_dataset(dataset: str) -> list[BuiltApplication]:
    """Build every application (chart + behaviours) of one dataset."""
    definition = DATASETS[dataset]
    applications: list[BuiltApplication] = []
    for planned in plan_dataset(definition):
        applications.append(
            build_application(
                name=planned.name,
                organization=definition.organization,
                plan=planned.plan,
                archetype=planned.archetype,
                dataset=definition.name,
                use_case=definition.use_case,
                version=planned.version,
            )
        )
    return applications


def build_catalog(datasets: tuple[str, ...] = DATASET_ORDER) -> list[BuiltApplication]:
    """Build the full 287-application catalogue.

    The catalogue is deterministic, so content fingerprints -- and therefore
    shared render-cache entries -- are stable across rebuilds: a catalogue
    built twice in one process renders each chart at most once.
    """
    applications: list[BuiltApplication] = []
    for dataset in datasets:
        applications.extend(build_dataset(dataset))
    return applications


def catalog_fingerprints(applications: list[BuiltApplication]) -> list[str]:
    """Content fingerprints of every application chart, in catalogue order.

    Computed once up front so sweeps (and their process-pool fan-outs) can
    ship fingerprints to the render cache instead of re-hashing charts.
    Delegates to the per-application cache, so repeated sweeps over the same
    built catalogue hash each chart once.
    """
    return [app.fingerprint() for app in applications]


def prerender_catalog(
    applications: list[BuiltApplication] | None = None,
    overrides: dict | None = None,
) -> list[str]:
    """Warm the shared render cache for every application chart.

    Returns the chart fingerprints in catalogue order.  After this, any
    consumer rendering the same (chart, values) pairs -- the full evaluation,
    the Figure 4b sweep, forked pool workers -- pays only the copy-on-read
    cost per chart.
    """
    from ..helm import render_chart

    applications = applications if applications is not None else build_catalog()
    fingerprints = catalog_fingerprints(applications)
    for app, fingerprint in zip(applications, fingerprints):
        render_chart(app.chart, overrides=overrides, fingerprint=fingerprint)
    return fingerprints


def expected_dataset_counts(dataset: str) -> dict[str, int]:
    """The Table 2 row for one dataset, keyed by misconfiguration class."""
    targets = DATASETS[dataset].targets
    return {
        "M1": targets.m1, "M2": targets.m2, "M3": targets.m3,
        "M4A": targets.m4a, "M4B": targets.m4b, "M4C": targets.m4c, "M4*": targets.m4_global,
        "M5A": targets.m5a, "M5B": targets.m5b, "M5C": targets.m5c, "M5D": targets.m5d,
        "M6": targets.m6, "M7": targets.m7,
    }


def validate_targets() -> None:
    """Check that the encoded targets sum to the paper's grand totals."""
    total_apps = sum(t.total_apps for t in TABLE2_TARGETS.values())
    total_affected = sum(t.affected_apps for t in TABLE2_TARGETS.values())
    total_misconfigs = sum(t.total_misconfigurations() for t in TABLE2_TARGETS.values())
    if total_apps != TABLE2_ROW_SUM_APPLICATIONS:
        raise CatalogError(f"total applications {total_apps} != {TABLE2_ROW_SUM_APPLICATIONS}")
    if total_affected != TABLE2_AFFECTED_APPLICATIONS:
        raise CatalogError(f"affected applications {total_affected} != {TABLE2_AFFECTED_APPLICATIONS}")
    if total_misconfigs != TABLE2_TOTAL_MISCONFIGURATIONS:
        raise CatalogError(
            f"total misconfigurations {total_misconfigs} != {TABLE2_TOTAL_MISCONFIGURATIONS}"
        )
