"""Reproduction of "Inside Job: Defending Kubernetes Clusters Against Network
Misconfigurations" (CoNEXT 2025).

Subpackages
-----------

``repro.k8s``
    Typed Kubernetes object model (pods, workloads, services, network
    policies, labels/selectors, YAML parsing).
``repro.helm``
    Helm chart engine: values, a Go-template subset renderer, dependencies.
``repro.cluster``
    In-process cluster simulator: API server with admission chain, scheduler,
    container runtime with socket behaviours, endpoint controller, DNS, CNI.
``repro.probe``
    Runtime analysis: netstat-style snapshots, double-snapshot dynamic-port
    detection, reachability probing.
``repro.core``
    The paper's contribution: the hybrid misconfiguration analyzer (rules
    M1-M7), cluster-wide collision analysis, mitigation engine, admission
    defense, reporting.
``repro.baselines``
    Re-implementations of the eleven compared tools (Table 3).
``repro.datasets``
    Synthetic catalogue of the six evaluated organizations and the PoC
    attacks (Concourse, Thanos).
``repro.experiments``
    Harnesses regenerating Table 2, Table 3, Figures 3, 4a and 4b.
``repro.store``
    Crash-safe content-addressed result store and sweep journal backing
    durable, resumable evaluations.

Quick start
-----------

>>> from repro.datasets import build_application, InjectionPlan
>>> from repro.core import MisconfigurationAnalyzer
>>> app = build_application("demo", "Acme", InjectionPlan(m1=1, m6=True))
>>> report = MisconfigurationAnalyzer().analyze_chart(app.chart, behaviors=app.behaviors)
>>> sorted(cls.value for cls in report.classes_present())
['M1', 'M6']
"""

from . import baselines, cluster, core, datasets, experiments, faults, helm, k8s, probe, store

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "baselines",
    "cluster",
    "core",
    "datasets",
    "experiments",
    "faults",
    "helm",
    "k8s",
    "probe",
    "store",
]
