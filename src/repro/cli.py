"""Command-line interface: ``insidejob``.

Subcommands
-----------

``analyze <chart.yaml or manifests.yaml>``
    Run the static analyzer on rendered Kubernetes manifests (YAML files).
``catalog``
    Build the synthetic catalogue and print the Table 2 breakdown.
``table2`` / ``table3`` / ``figure3`` / ``figure4a`` / ``figure4b``
    Regenerate the corresponding table or figure of the paper.
``sweep [--store DIR | --resume DIR | --since DIR]``
    Run the catalogue sweep durably against a content-addressed result
    store: completed charts are loaded instead of recomputed, fresh ones
    persist as they finish, and ``--resume`` continues an interrupted
    sweep's journal.  ``--since`` runs an *incremental* sweep: the delta
    evaluator classifies every chart against the store's epoch-tagged
    journal and reports what moved and why, while recomputing only what
    must be.  A corrupt or version-skewed store degrades to a recompute
    with a one-line hint -- never a traceback, always exit 0.
``watch <dir>``
    Continuously re-verify a directory of Helm charts: each round rescans
    the directory, re-evaluates only the charts whose inputs changed
    (byte-identical to from-scratch) and prints one summary line.
``attack concourse|thanos``
    Run one of the Section 2.1 proof-of-concept attacks.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .cluster import ClusterError, actionable_message
from .core import (
    AnalyzerSettings,
    MODE_STATIC,
    MisconfigurationAnalyzer,
    format_report_text,
)
from .k8s import load_yaml


def _cmd_analyze(args: argparse.Namespace) -> int:
    text = Path(args.path).read_text(encoding="utf-8")
    objects = load_yaml(text)
    analyzer = MisconfigurationAnalyzer(settings=AnalyzerSettings(mode=MODE_STATIC))
    report = analyzer.analyze_objects(objects, application=Path(args.path).stem)
    print(format_report_text(report))
    return 1 if report.affected and args.strict else 0


def _sampled_applications(args: argparse.Namespace):
    """The catalogue restricted to ``--sample N`` charts (None = full)."""
    sample = getattr(args, "sample", None)
    if not sample:
        return None
    from .datasets import build_catalog

    return build_catalog()[:sample]


def _cmd_catalog(args: argparse.Namespace) -> int:
    from .experiments import run_full_evaluation

    result = run_full_evaluation(applications=_sampled_applications(args))
    print(result.summary.table2_text())
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    return _cmd_catalog(args)


def _cmd_table3(args: argparse.Namespace) -> int:
    from .experiments import run_comparison

    print(run_comparison().format_text())
    return 0


def _cmd_figure3(args: argparse.Namespace) -> int:
    from .experiments import figure3a, figure3b, format_figure3, run_full_evaluation

    summary = run_full_evaluation(applications=_sampled_applications(args)).summary
    print("Figure 3a - applications with the most misconfigurations")
    print(format_figure3(figure3a(summary), metric="total"))
    print()
    print("Figure 3b - applications with the most misconfiguration types")
    print(format_figure3(figure3b(summary), metric="types"))
    return 0


def _cmd_figure4a(args: argparse.Namespace) -> int:
    from .experiments import figure4a, format_figure4a, run_full_evaluation

    summary = run_full_evaluation(applications=_sampled_applications(args)).summary
    print(format_figure4a(figure4a(summary)))
    return 0


def _cmd_figure4b(args: argparse.Namespace) -> int:
    from .experiments import run_netpol_impact

    print(run_netpol_impact(applications=_sampled_applications(args)).format_text())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .experiments import run_full_evaluation
    from .store import ResultStore, store_hint

    since = getattr(args, "since", "")
    store_dir = since or args.resume or args.store
    store = ResultStore(store_dir) if store_dir else None
    if since:
        from .experiments import DeltaEvaluator

        evaluator = DeltaEvaluator(store=store)
        result = evaluator.evaluate(
            applications=_sampled_applications(args),
            workers=args.workers or None,
            resume=True,
        )
        delta = result.delta_stats or {}
        counts = delta.get("classified", {})
        moved = ", ".join(
            f"{count} {classification}"
            for classification, count in counts.items()
            if count
        )
        print(
            f"delta: epoch {delta.get('prior_epoch', 0)} -> {delta.get('epoch', 0)}; "
            f"{moved or 'no charts'}"
        )
    else:
        result = run_full_evaluation(
            applications=_sampled_applications(args),
            workers=args.workers or None,
            store=store,
            resume=bool(args.resume),
        )
    print(result.summary.table2_text())
    stats = result.store_stats
    if stats is not None:
        print(
            f"store: {stats['loaded']} loaded, {stats['computed']} computed, "
            f"{stats['failed']} quarantined ({stats['root']})"
        )
        hint = store_hint(stats["store"], stats["root"], rotated=stats["journal_rotated"])
        if hint:
            print(hint, file=sys.stderr)
    if result.failed:
        for failure in result.failed:
            print(f"quarantined: {failure.unique_id} ({failure.stage}: {failure.error_type})")
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    from .experiments import watch_directory

    watch_directory(
        Path(args.directory), rounds=args.rounds, interval=args.interval
    )
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    from .datasets import run_concourse_attack, run_thanos_attack

    if args.scenario == "concourse":
        result = run_concourse_attack()
        print(f"reverse-tunnel ports opened by the web node: {sorted(result.tunnel_ports)}")
        print(f"reachable from the attacker pod:             {sorted(result.reachable_tunnel_ports)}")
        for command in result.commands_sent:
            print(f"  attacker command: {command}")
        print("attack succeeded" if result.succeeded else "attack failed")
        return 0 if result.succeeded else 1
    result = run_thanos_attack()
    print(f"legitimate backends:        {sorted(result.legitimate_backends)}")
    print(f"backends receiving traffic: {sorted(result.backends_receiving_traffic)}")
    print(
        "impersonation succeeded"
        if result.impersonation_succeeded
        else "impersonation failed"
    )
    return 0 if result.impersonation_succeeded else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="insidejob",
        description="Detect network misconfigurations in Kubernetes applications",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    analyze = subparsers.add_parser("analyze", help="statically analyze rendered manifests")
    analyze.add_argument("path", help="path to a multi-document YAML file")
    analyze.add_argument("--strict", action="store_true", help="exit non-zero on findings")
    analyze.set_defaults(handler=_cmd_analyze)

    for name, handler, help_text in (
        ("catalog", _cmd_catalog, "analyze the synthetic catalogue (Table 2)"),
        ("table2", _cmd_table2, "regenerate Table 2"),
        ("table3", _cmd_table3, "regenerate Table 3 (tool comparison)"),
        ("figure3", _cmd_figure3, "regenerate Figure 3 (top applications)"),
        ("figure4a", _cmd_figure4a, "regenerate Figure 4a (distribution)"),
        ("figure4b", _cmd_figure4b, "regenerate Figure 4b (network-policy impact)"),
    ):
        sub = subparsers.add_parser(name, help=help_text)
        if name != "table3":
            sub.add_argument(
                "--sample",
                type=int,
                default=0,
                help="restrict the sweep to the first N catalogue charts (0 = all)",
            )
        sub.set_defaults(handler=handler)

    sweep = subparsers.add_parser(
        "sweep", help="run the catalogue sweep durably (resumable result store)"
    )
    sweep.add_argument(
        "--sample",
        type=int,
        default=0,
        help="restrict the sweep to the first N catalogue charts (0 = all)",
    )
    sweep.add_argument(
        "--workers", type=int, default=0, help="parallel workers (0 = serial)"
    )
    sweep.add_argument(
        "--store", default="", help="result-store directory to read and feed"
    )
    sweep.add_argument(
        "--resume",
        default="",
        help="resume an interrupted sweep from this store directory",
    )
    sweep.add_argument(
        "--since",
        default="",
        help="incremental sweep: classify against this store's journal and "
        "recompute only changed charts",
    )
    sweep.set_defaults(handler=_cmd_sweep)

    watch = subparsers.add_parser(
        "watch", help="continuously re-verify a directory of Helm charts"
    )
    watch.add_argument("directory", help="directory holding chart directories")
    watch.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between rescan rounds (default 2)",
    )
    watch.add_argument(
        "--rounds",
        type=int,
        default=0,
        help="stop after N rounds (0 = watch until interrupted)",
    )
    watch.set_defaults(handler=_cmd_watch)

    attack = subparsers.add_parser("attack", help="run a proof-of-concept attack")
    attack.add_argument("scenario", choices=("concourse", "thanos"))
    attack.set_defaults(handler=_cmd_attack)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ClusterError as exc:
        # Simulator errors (scheduling, IPAM exhaustion, missing pods, ...)
        # are user-fixable: print the actionable guidance, not a traceback.
        print(actionable_message(exc), file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
