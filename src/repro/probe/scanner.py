"""The runtime scanner: snapshots, double snapshots and host-port filtering.

Implements the two special cases described in Section 4.2.2 of the paper:

* **Dynamic ports (M2)** are not captured by a single snapshot; the scanner
  therefore restarts the application and compares two snapshots, flagging
  ports that changed between runs as dynamic.
* **Host network (M7)** pods see every port open on the node, including
  processes unrelated to the application; the scanner takes a preliminary
  baseline of host ports and removes them from those pods' observations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster import Cluster
from .snapshot import ClusterSnapshot, PodSnapshot, SocketRecord


@dataclass
class RuntimeObservation:
    """The consolidated runtime view of one application, ready for analysis."""

    app: str
    first: ClusterSnapshot
    second: ClusterSnapshot
    host_ports: set[int] = field(default_factory=set)

    def pods(self) -> list[PodSnapshot]:
        return self.first.for_app(self.app) if self.app else list(self.first.pods)

    def stable_open_ports(self, snapshot: PodSnapshot, protocol: str = "TCP") -> set[int]:
        """Ports open in both snapshots for the pod (dynamic ports excluded)."""
        other = self.second.pod(snapshot.pod_name, snapshot.namespace)
        ports = snapshot.open_ports(protocol)
        if other is not None:
            ports = ports & other.open_ports(protocol)
        if snapshot.host_network:
            ports = ports - self.host_ports
        return ports

    def dynamic_ports(self, snapshot: PodSnapshot, protocol: str = "TCP") -> set[int]:
        """Ports that differ between the two snapshots (the M2 signal)."""
        other = self.second.pod(snapshot.pod_name, snapshot.namespace)
        if other is None:
            return set()
        first_ports = snapshot.open_ports(protocol)
        second_ports = other.open_ports(protocol)
        if snapshot.host_network:
            first_ports = first_ports - self.host_ports
            second_ports = second_ports - self.host_ports
        return first_ports.symmetric_difference(second_ports)

    def has_dynamic_ports(self, snapshot: PodSnapshot, protocol: str = "TCP") -> bool:
        return bool(self.dynamic_ports(snapshot, protocol))

    def observed_sockets(self, snapshot: PodSnapshot) -> list[SocketRecord]:
        """Sockets of the first snapshot minus host baseline for hostNetwork pods."""
        if not snapshot.host_network:
            return list(snapshot.sockets)
        return [record for record in snapshot.sockets if record.port not in self.host_ports]


class RuntimeScanner:
    """Produces runtime observations from a simulated cluster."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster

    def snapshot(
        self,
        app: str | None = None,
        sequence: int = 0,
        host_ports: set[int] | None = None,
    ) -> ClusterSnapshot:
        """Take a single netstat-style snapshot of the running pods.

        ``host_ports`` lets callers that take several snapshots (the double
        snapshot) reuse one host-port baseline instead of re-walking every
        node per snapshot.
        """
        pods = self.cluster.running_pods(app_name=app)
        if host_ports is None:
            host_ports = self.cluster.host_port_baseline()
        return ClusterSnapshot.from_pods(pods, host_ports=host_ports, sequence=sequence)

    def observe(self, app: str, restart_between_snapshots: bool = True) -> RuntimeObservation:
        """Take the double snapshot of one application.

        ``restart_between_snapshots=False`` degrades to a single-snapshot
        observation (used by the ablation benchmark to show why the double
        snapshot is needed for M2).
        """
        host_ports = self.cluster.host_port_baseline()
        first = self.snapshot(app, sequence=0, host_ports=host_ports)
        if restart_between_snapshots:
            self.cluster.restart_application(app)
            second = self.snapshot(app, sequence=1, host_ports=host_ports)
        else:
            second = first
        return RuntimeObservation(app=app, first=first, second=second, host_ports=host_ports)

    def observe_all(self, restart_between_snapshots: bool = True) -> dict[str, RuntimeObservation]:
        """Observe every installed application separately."""
        observations: dict[str, RuntimeObservation] = {}
        for application in self.cluster.applications():
            observations[application.name] = self.observe(
                application.name, restart_between_snapshots
            )
        return observations
