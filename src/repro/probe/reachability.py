"""Reachability probing: which misconfigured endpoints stay reachable.

Reproduces the Section 4.3.2 analysis (Figure 4b): after enabling the
network policies shipped with a chart, how many misconfigured pods and
services can still be reached from an attacker-controlled pod in the same
cluster?
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster import Cluster, PodNotFound, RunningPod
from ..k8s import Container, LabelSet, ObjectMeta, Pod, PodSpec


@dataclass
class ReachabilityReport:
    """Reachability of one application's endpoints from an attacker pod."""

    app: str
    reachable_pod_endpoints: list[tuple[str, int]] = field(default_factory=list)
    reachable_service_endpoints: list[tuple[str, int]] = field(default_factory=list)
    reachable_dynamic_endpoints: list[tuple[str, int]] = field(default_factory=list)
    isolated_pods: int = 0
    unprotected_pods: int = 0

    @property
    def reachable_pods(self) -> set[str]:
        return {name for name, _ in self.reachable_pod_endpoints}

    @property
    def reachable_services(self) -> set[str]:
        return {name for name, _ in self.reachable_service_endpoints}

    @property
    def pods_with_dynamic_ports(self) -> set[str]:
        return {name for name, _ in self.reachable_dynamic_endpoints}

    @property
    def affected(self) -> bool:
        """An application is *affected* when some endpoint remains reachable."""
        return bool(self.reachable_pod_endpoints or self.reachable_service_endpoints)


ATTACKER_POD_NAME = "attacker"


def make_attacker_pod(namespace: str = "default") -> Pod:
    """The attacker-controlled pod of the threat model (Section 3.1)."""
    return Pod(
        metadata=ObjectMeta(
            name=ATTACKER_POD_NAME,
            namespace=namespace,
            labels=LabelSet({"app.kubernetes.io/name": "attacker"}),
        ),
        spec=PodSpec(containers=[Container(name="shell", image="probe/attacker")]),
    )


class ReachabilityProbe:
    """Measures the lateral-movement surface of installed applications."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster

    def ensure_attacker(self, namespace: str = "default") -> RunningPod:
        """Install the attacker pod (idempotent) and return its running instance."""
        try:
            return self.cluster.running_pod(ATTACKER_POD_NAME, namespace)
        except PodNotFound:
            self.cluster.install([make_attacker_pod(namespace)], app_name="__attacker__",
                                 namespace=namespace)
            return self.cluster.running_pod(ATTACKER_POD_NAME, namespace)

    def probe_application(self, app: str, namespace: str = "default") -> ReachabilityReport:
        """Probe every endpoint of one installed application from the attacker.

        Runs on the cluster's cached :class:`ReachabilityMatrix` machinery:
        the policy index is compiled once per epoch and every decision is
        memoized by equivalence class, so probing replicas or many sockets of
        the same destination does no repeated policy work.
        """
        attacker = self.ensure_attacker(namespace)
        index = self.cluster.policies_view()
        report = ReachabilityReport(app=app)
        app_pods = self.cluster.running_pods(app_name=app)
        isolated, unprotected = self.cluster.enforcer.partition_pods(index, app_pods)
        report.isolated_pods = len(isolated)
        report.unprotected_pods = len(unprotected)
        bindings = self.cluster.service_bindings()
        matrix = self.cluster.network.reachability_matrix(index, app_pods, bindings)
        for destination in app_pods:
            for socket in destination.sockets:
                if not socket.reachable_from_network:
                    continue
                attempt = matrix.connect(attacker, destination, socket.port, socket.protocol)
                if attempt.success:
                    report.reachable_pod_endpoints.append((destination.name, socket.port))
                    if socket.dynamic:
                        report.reachable_dynamic_endpoints.append((destination.name, socket.port))
        for binding in bindings:
            if not any(backend.app == app for backend in binding.backends):
                continue
            for service_port in binding.service.ports:
                attempt = matrix.connect_via_service(
                    attacker, binding, service_port.port, service_port.protocol
                )
                if attempt.success:
                    report.reachable_service_endpoints.append(
                        (binding.service.name, service_port.port)
                    )
        return report
