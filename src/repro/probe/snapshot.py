"""Runtime snapshots: the netstat-style view of running pods.

The runtime analysis of the paper installs each chart into a clean cluster
and observes its actual behaviour (following the Kubesonde approach).  A
:class:`PodSnapshot` captures what ``netstat -a`` inside one pod would show,
and a :class:`ClusterSnapshot` aggregates them for all pods of interest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..cluster import RunningPod, Socket
from ..k8s import is_ephemeral_port


@dataclass(frozen=True)
class SocketRecord:
    """One observed listening socket."""

    port: int
    protocol: str = "TCP"
    interface: str = "0.0.0.0"
    process: str = ""
    container: str = ""
    dynamic: bool = False

    @property
    def reachable_from_network(self) -> bool:
        return self.interface != "127.0.0.1"

    @property
    def in_ephemeral_range(self) -> bool:
        return is_ephemeral_port(self.port)

    def netstat_line(self) -> str:
        """Format the socket the way ``netstat -a`` prints listening sockets."""
        protocol = self.protocol.lower()
        return f"{protocol:<5} 0      0 {self.interface}:{self.port:<15} 0.0.0.0:*               LISTEN"

    def to_dict(self) -> dict:
        """Canonical serialization, used by the conformance differ."""
        return {
            "port": self.port,
            "protocol": self.protocol,
            "interface": self.interface,
            "process": self.process,
            "container": self.container,
            "dynamic": self.dynamic,
        }

    @classmethod
    def from_socket(cls, socket: Socket) -> "SocketRecord":
        return cls(
            port=socket.port,
            protocol=socket.protocol,
            interface=socket.interface,
            process=socket.process,
            container=socket.container,
            dynamic=socket.dynamic,
        )


@dataclass
class PodSnapshot:
    """The runtime observation of one pod."""

    pod_name: str
    namespace: str
    app: str = ""
    owner: str = ""
    labels: dict[str, str] = field(default_factory=dict)
    host_network: bool = False
    node_name: str = ""
    declared_ports: dict[str, set[int]] = field(default_factory=dict)
    sockets: list[SocketRecord] = field(default_factory=list)

    def open_ports(self, protocol: str | None = None, include_loopback: bool = True) -> set[int]:
        return {
            record.port
            for record in self.sockets
            if (protocol is None or record.protocol == protocol)
            and (include_loopback or record.reachable_from_network)
        }

    def declared(self, protocol: str = "TCP") -> set[int]:
        return set(self.declared_ports.get(protocol, set()))

    def undeclared_open_ports(self, protocol: str = "TCP") -> set[int]:
        """Ports open at runtime but absent from the declaration (M1 input)."""
        return self.open_ports(protocol) - self.declared(protocol)

    def declared_closed_ports(self, protocol: str = "TCP") -> set[int]:
        """Ports declared but not open at runtime (M3 input)."""
        return self.declared(protocol) - self.open_ports(protocol)

    def netstat_output(self) -> str:
        """A human-readable dump matching Figure 1b of the paper."""
        lines = [
            "Active Internet connections (servers and established)",
            "Proto Recv-Q Send-Q Local Address           Foreign Address         State",
        ]
        lines.extend(record.netstat_line() for record in sorted(self.sockets, key=lambda r: r.port))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """Canonical serialization: deterministic ordering of every field.

        Two snapshots with equal semantic content -- regardless of socket or
        declaration insertion order -- serialize identically, which is what
        the differential conformance suite (``tests/support/diffing.py``)
        compares byte for byte.
        """
        return {
            "pod": self.pod_name,
            "namespace": self.namespace,
            "app": self.app,
            "owner": self.owner,
            "labels": dict(sorted(self.labels.items())),
            "host_network": self.host_network,
            "node": self.node_name,
            "declared_ports": {
                protocol: sorted(ports)
                for protocol, ports in sorted(self.declared_ports.items())
            },
            "sockets": [
                record.to_dict()
                for record in sorted(
                    self.sockets,
                    key=lambda r: (r.port, r.protocol, r.interface, r.container),
                )
            ],
        }

    @classmethod
    def from_running_pod(cls, running: RunningPod) -> "PodSnapshot":
        declared: dict[str, set[int]] = {}
        for container in running.pod.spec.containers:
            for port in container.ports:
                declared.setdefault(port.protocol, set()).add(port.container_port)
        return cls(
            pod_name=running.name,
            namespace=running.namespace,
            app=running.app,
            owner=running.owner,
            labels=dict(running.labels),
            host_network=running.host_network,
            node_name=running.node.name,
            declared_ports=declared,
            sockets=[SocketRecord.from_socket(socket) for socket in running.sockets],
        )


@dataclass
class ClusterSnapshot:
    """Runtime observations of a set of pods, taken at one point in time."""

    pods: list[PodSnapshot] = field(default_factory=list)
    host_ports: set[int] = field(default_factory=set)
    sequence: int = 0

    def pod(self, name: str, namespace: str = "default") -> PodSnapshot | None:
        for snapshot in self.pods:
            if snapshot.pod_name == name and snapshot.namespace == namespace:
                return snapshot
        return None

    def for_app(self, app: str) -> list[PodSnapshot]:
        return [snapshot for snapshot in self.pods if snapshot.app == app]

    def by_owner(self) -> dict[str, list[PodSnapshot]]:
        """Group pod snapshots by their owning compute unit."""
        grouped: dict[str, list[PodSnapshot]] = {}
        for snapshot in self.pods:
            grouped.setdefault(snapshot.owner or snapshot.pod_name, []).append(snapshot)
        return grouped

    def total_open_ports(self) -> int:
        return sum(len(snapshot.sockets) for snapshot in self.pods)

    def to_dict(self) -> dict:
        """Canonical serialization (pods ordered by namespace and name)."""
        return {
            "sequence": self.sequence,
            "host_ports": sorted(self.host_ports),
            "pods": [
                snapshot.to_dict()
                for snapshot in sorted(
                    self.pods, key=lambda s: (s.namespace, s.pod_name)
                )
            ],
        }

    @classmethod
    def from_pods(
        cls, pods: Iterable[RunningPod], host_ports: set[int] | None = None, sequence: int = 0
    ) -> "ClusterSnapshot":
        return cls(
            pods=[PodSnapshot.from_running_pod(pod) for pod in pods],
            host_ports=set(host_ports or ()),
            sequence=sequence,
        )
