"""Runtime analysis substrate (Kubesonde-style probing).

Takes netstat-style snapshots of running pods, handles the double-snapshot
strategy for dynamic ports and the host-port baseline for hostNetwork pods,
and measures endpoint reachability from an attacker-controlled pod.
"""

from .reachability import (
    ATTACKER_POD_NAME,
    ReachabilityProbe,
    ReachabilityReport,
    make_attacker_pod,
)
from .scanner import RuntimeObservation, RuntimeScanner
from .snapshot import ClusterSnapshot, PodSnapshot, SocketRecord

__all__ = [
    "ATTACKER_POD_NAME",
    "ClusterSnapshot",
    "PodSnapshot",
    "ReachabilityProbe",
    "ReachabilityReport",
    "RuntimeObservation",
    "RuntimeScanner",
    "SocketRecord",
    "make_attacker_pod",
]
