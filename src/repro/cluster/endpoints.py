"""Endpoint controller: binds services to the pods they select.

The controller reproduces the part of Kubernetes that the M4/M5
misconfiguration families abuse: endpoints are derived purely from label
selectors, with no check that the selected pods are related to the service
or that the target ports are actually open.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..k8s import EndpointAddress, Endpoints, ObjectMeta, Service
from .runtime import RunningPod


@dataclass
class ServiceBinding:
    """A service together with the running pods it currently selects."""

    service: Service
    backends: list[RunningPod] = field(default_factory=list)

    @property
    def has_backends(self) -> bool:
        return bool(self.backends)

    def resolved_target_ports(self) -> dict[int, list[int]]:
        """Map each service port to the concrete target port per backend.

        Named target ports are resolved against each backend's declared
        container ports; unresolvable names are skipped (Kubernetes marks the
        endpoint as not ready in that case).
        """
        resolution: dict[int, list[int]] = {}
        for service_port in self.service.ports:
            targets: list[int] = []
            raw_target = service_port.resolved_target()
            for backend in self.backends:
                if isinstance(raw_target, int):
                    targets.append(raw_target)
                else:
                    named = backend.named_ports().get(str(raw_target))
                    if named is not None:
                        targets.append(named)
            resolution[service_port.port] = targets
        return resolution

    def to_endpoints(self) -> Endpoints:
        return Endpoints(
            metadata=ObjectMeta(
                name=self.service.name,
                namespace=self.service.namespace,
                labels=self.service.labels,
            ),
            addresses=[
                EndpointAddress(ip=backend.ip, pod_name=backend.name, node_name=backend.node.name)
                for backend in self.backends
            ],
            ports=list(self.service.ports),
        )


class EndpointController:
    """Computes service-to-pod bindings from selectors."""

    def bind(self, services: list[Service], pods: list[RunningPod]) -> list[ServiceBinding]:
        """Compute a binding for every service."""
        bindings: list[ServiceBinding] = []
        for service in services:
            backends: list[RunningPod] = []
            if service.has_selector:
                backends = [
                    pod
                    for pod in pods
                    if pod.namespace == service.namespace
                    and service.selector.matches(pod.labels)
                ]
            bindings.append(ServiceBinding(service=service, backends=backends))
        return bindings

    def binding_for(
        self, service: Service, pods: list[RunningPod]
    ) -> ServiceBinding:
        return self.bind([service], pods)[0]

    def services_without_backends(
        self, services: list[Service], pods: list[RunningPod]
    ) -> list[Service]:
        """Services whose selector matches no running pod (M5D at runtime)."""
        return [
            binding.service
            for binding in self.bind(services, pods)
            if binding.service.has_selector and not binding.has_backends
        ]
