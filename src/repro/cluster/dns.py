"""Cluster DNS simulation.

Reproduces the resolution behaviour that matters for the analysis:

* ``<service>.<namespace>.svc.cluster.local`` resolves to the service
  ClusterIP for normal services;
* headless services (``clusterIP: None``) resolve directly to the IPs of the
  pods they select -- the behaviour behind misconfiguration M5C;
* a service with no ready endpoints still resolves (normal service) or
  returns no records (headless), mirroring ``kube-dns``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .endpoints import ServiceBinding


@dataclass(frozen=True)
class DNSRecord:
    """The answer to a DNS query inside the cluster."""

    fqdn: str
    addresses: tuple[str, ...]
    headless: bool = False

    @property
    def resolvable(self) -> bool:
        return bool(self.addresses)


class ClusterDNS:
    """Maps service names to addresses based on the current bindings."""

    CLUSTER_DOMAIN = "cluster.local"

    def __init__(self) -> None:
        self._bindings: dict[tuple[str, str], ServiceBinding] = {}
        self._service_ips: dict[tuple[str, str], str] = {}

    def reset(self) -> None:
        """Forget every programmed record."""
        self._bindings.clear()
        self._service_ips.clear()

    # Programming the resolver ------------------------------------------------
    def program(self, bindings: list[ServiceBinding], service_ips: dict[tuple[str, str], str]) -> None:
        """Load the current service bindings and allocated ClusterIPs."""
        self._bindings = {
            (binding.service.namespace, binding.service.name): binding for binding in bindings
        }
        self._service_ips = dict(service_ips)

    # Lookup -------------------------------------------------------------------
    def fqdn(self, service_name: str, namespace: str = "default") -> str:
        return f"{service_name}.{namespace}.svc.{self.CLUSTER_DOMAIN}"

    def resolve(self, name: str, default_namespace: str = "default") -> DNSRecord:
        """Resolve a service name (short, namespaced, or fully qualified)."""
        service_name, namespace = self._parse_name(name, default_namespace)
        binding = self._bindings.get((namespace, service_name))
        fqdn = self.fqdn(service_name, namespace)
        if binding is None:
            return DNSRecord(fqdn=fqdn, addresses=())
        if binding.service.is_headless:
            addresses = tuple(backend.ip for backend in binding.backends)
            return DNSRecord(fqdn=fqdn, addresses=addresses, headless=True)
        cluster_ip = self._service_ips.get((namespace, service_name), "")
        return DNSRecord(fqdn=fqdn, addresses=(cluster_ip,) if cluster_ip else ())

    def _parse_name(self, name: str, default_namespace: str) -> tuple[str, str]:
        parts = name.split(".")
        if len(parts) == 1:
            return parts[0], default_namespace
        # "<svc>.<ns>" or "<svc>.<ns>.svc.cluster.local"
        return parts[0], parts[1]

    def known_services(self) -> list[str]:
        return sorted(self.fqdn(name, namespace) for (namespace, name) in self._bindings)
