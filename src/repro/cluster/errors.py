"""Exceptions raised by the cluster simulator."""

from __future__ import annotations


class ClusterError(Exception):
    """Base class for all errors raised by :mod:`repro.cluster`."""


class AdmissionError(ClusterError):
    """An admission controller rejected an object."""

    def __init__(self, message: str, reason: str = "Forbidden") -> None:
        self.reason = reason
        super().__init__(message)


class AlreadyExistsError(ClusterError):
    """An object with the same kind/namespace/name already exists."""


class NotFoundError(ClusterError):
    """The requested object does not exist in the API server store."""


class PodNotFound(ClusterError):
    """No running pod with the requested namespace/name exists."""

    def __init__(self, name: str, namespace: str = "default") -> None:
        self.name = name
        self.namespace = namespace
        super().__init__(f"pod {namespace}/{name} is not running")


class SchedulingError(ClusterError):
    """A pod could not be placed on any node."""


class IPAMError(ClusterError):
    """The address allocator ran out of addresses or got a bad request."""
