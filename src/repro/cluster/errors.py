"""Exceptions raised by the cluster simulator.

The whole hierarchy pickles faithfully: subclasses carry extra attributes
(``AdmissionError.reason``, ``PodNotFound.name``) and entry points may
annotate an in-flight error with chart context (:meth:`ClusterError.
with_context`), so the default ``Exception`` reduction -- re-invoking
``__init__`` with ``args`` -- would either mangle messages or drop state
when an error crosses a process-pool boundary.  :meth:`ClusterError.
__reduce__` instead rebuilds the instance verbatim (class, ``args``,
``__dict__``).

:func:`actionable_message` turns any of these errors into the operator-facing
text the CLI and the Figure 4b sweep print instead of a raw traceback.
"""

from __future__ import annotations


def _rebuild_error(cls: type, args: tuple, attrs: dict) -> "ClusterError":
    error = cls.__new__(cls)
    Exception.__init__(error)
    error.args = args
    error.__dict__.update(attrs)
    return error


class ClusterError(Exception):
    """Base class for all errors raised by :mod:`repro.cluster`."""

    def __reduce__(self):
        """Pickle verbatim: class + ``args`` + attributes, no re-``__init__``."""
        return (_rebuild_error, (type(self), self.args, dict(self.__dict__)))

    def with_context(self, context: str) -> "ClusterError":
        """Prefix the message with ``[context]`` in place; returns ``self``.

        Sweeps over many charts use this to attribute an error to the chart
        that triggered it before letting it propagate (or recording it).
        """
        message = self.args[0] if self.args else str(self)
        self.args = (f"[{context}] {message}",) + tuple(self.args[1:])
        return self


class AdmissionError(ClusterError):
    """An admission controller rejected an object."""

    def __init__(self, message: str, reason: str = "Forbidden") -> None:
        self.reason = reason
        super().__init__(message)


class AlreadyExistsError(ClusterError):
    """An object with the same kind/namespace/name already exists."""


class NotFoundError(ClusterError):
    """The requested object does not exist in the API server store."""


class PodNotFound(ClusterError):
    """No running pod with the requested namespace/name exists."""

    def __init__(self, name: str, namespace: str = "default") -> None:
        self.name = name
        self.namespace = namespace
        super().__init__(f"pod {namespace}/{name} is not running")


class DuplicatePodError(ClusterError):
    """Two running pods share one ``(namespace, name)`` identity.

    All-pairs reachability keys every per-source surface on that identity;
    letting a duplicate through would silently overwrite one pod's surface
    with the other's (seen when a pooled-cluster restart races a
    re-install), so the matrix refuses the snapshot instead.
    """

    def __init__(self, name: str, namespace: str = "default") -> None:
        self.name = name
        self.namespace = namespace
        super().__init__(
            f"duplicate running pod identity {namespace}/{name}: "
            "all-pairs surfaces are keyed by (namespace, name)"
        )


class SchedulingError(ClusterError):
    """A pod could not be placed on any node."""


class IPAMError(ClusterError):
    """The address allocator ran out of addresses or got a bad request."""


#: Per-class operator guidance appended to the error message.
_GUIDANCE: tuple[tuple[type, str], ...] = (
    (
        SchedulingError,
        "check that the analysis cluster has schedulable worker nodes "
        "(AnalyzerSettings.worker_count) and that pod nodeName/nodeSelector "
        "constraints match an existing node",
    ),
    (
        IPAMError,
        "the simulated address pool is exhausted; lower the chart's replica "
        "counts or build the cluster with a larger pod CIDR",
    ),
    (
        PodNotFound,
        "the pod never started or was torn down; verify the workload "
        "rendered a pod template and that its behaviors are registered",
    ),
    (
        AdmissionError,
        "an admission controller rejected the object; fix the manifest or "
        "relax the admission mode",
    ),
    (
        AlreadyExistsError,
        "an object with the same kind/namespace/name is already installed; "
        "uninstall the previous release or use a distinct release name",
    ),
    (
        DuplicatePodError,
        "two running pods share a namespace/name; tear down the stale "
        "instance (or reset the pooled cluster) before asking for "
        "all-pairs reachability",
    ),
    (
        NotFoundError,
        "the referenced object does not exist in the cluster; check the "
        "install order and object names",
    ),
)


def actionable_message(error: ClusterError) -> str:
    """An operator-facing message for ``error``: what failed, what to do.

    Used by the CLI entry points and the netpol-impact sweep to surface
    :class:`ClusterError` subclasses as guidance instead of raw tracebacks.
    """
    for cls, guidance in _GUIDANCE:
        if isinstance(error, cls):
            return f"{type(error).__name__}: {error}\n  hint: {guidance}"
    return f"{type(error).__name__}: {error}"
