"""CNI plugin simulation: NetworkPolicy enforcement.

Kubernetes delegates policy enforcement to the CNI plugin; this module plays
that role for the simulated cluster.  The semantics follow the NetworkPolicy
specification:

* a pod not selected by any policy accepts every connection (default allow);
* a pod selected by one or more policies with the ``Ingress`` policy type
  only accepts connections allowed by at least one rule of one of those
  policies (union semantics);
* pods running with ``hostNetwork: true`` are *not* isolated by policies --
  the crucial caveat behind misconfiguration M7 and the Figure 4b analysis.

Evaluation runs through the compiled engine of
:mod:`repro.cluster.policy_index` by default: policy lists are compiled once
into a :class:`~repro.cluster.policy_index.PolicyIndex` (memoized by list
identity, or passed in pre-compiled by the cluster facade) so the
default-allow fast path and repeated decisions do zero selector work.  The
naive scan is preserved behind ``use_index=False`` as the reference
implementation for differential tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..k8s import NetworkPolicy
from .policy_index import PolicyIndex
from .runtime import RunningPod

#: Reasons attached to the two default-allow fast-path decisions.
HOST_NETWORK_ALLOW_REASON = "destination uses the host network; policies do not apply"
DEFAULT_ALLOW_REASON = "no network policy selects the destination (default allow)"


@dataclass(frozen=True)
class PolicyDecision:
    """The outcome of a policy evaluation, with an explanation."""

    allowed: bool
    reason: str
    isolating_policies: tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return self.allowed


#: Shared fast-path decisions (PolicyDecision is frozen, so sharing is safe).
_HOST_NETWORK_ALLOW = PolicyDecision(allowed=True, reason=HOST_NETWORK_ALLOW_REASON)
_DEFAULT_ALLOW = PolicyDecision(allowed=True, reason=DEFAULT_ALLOW_REASON)

#: How many compiled indexes the enforcer keeps before dropping the memo.
_INDEX_MEMO_LIMIT = 8


class NetworkPolicyEnforcer:
    """Evaluates NetworkPolicies against concrete pod-to-pod connections."""

    def __init__(
        self,
        namespace_labels: dict[str, dict[str, str]] | None = None,
        use_index: bool = True,
    ) -> None:
        #: Labels of each namespace, needed to evaluate ``namespaceSelector``.
        self._namespace_labels = dict(namespace_labels or {})
        #: When ``False`` every evaluation takes the original uncompiled scan
        #: -- the reference semantics the compiled engine is verified against.
        self.use_index = use_index
        #: Compiled indexes memoized by the identity of the policy list
        #: contents; the tuple of policies is retained so the ids stay valid.
        self._index_memo: dict[
            tuple[int, ...], tuple[tuple[NetworkPolicy, ...], PolicyIndex]
        ] = {}

    def reset(self) -> None:
        """Drop namespace labels and compiled-index memos (session recycle)."""
        self._namespace_labels.clear()
        self._index_memo.clear()

    def set_namespace_labels(self, namespace: str, labels: dict[str, str]) -> None:
        self._namespace_labels[namespace] = dict(labels)

    def namespace_labels(self, namespace: str) -> dict[str, str]:
        """The labels of ``namespace`` as seen by ``namespaceSelector`` rules."""
        return self._namespace_labels.get(namespace, {})

    # Compilation ------------------------------------------------------------
    def index_for(self, policies: list[NetworkPolicy] | PolicyIndex) -> PolicyIndex:
        """Return a compiled index for ``policies``, memoized by identity.

        Passing the same list (or a fresh list holding the same policy
        objects, as ``Cluster.network_policies()`` produces) reuses the
        compiled form; any change in membership or order compiles a new one.
        """
        if isinstance(policies, PolicyIndex):
            return policies
        key = tuple(map(id, policies))
        entry = self._index_memo.get(key)
        if entry is None:
            if len(self._index_memo) >= _INDEX_MEMO_LIMIT:
                self._index_memo.clear()
            entry = (tuple(policies), PolicyIndex(policies))
            self._index_memo[key] = entry
        return entry[1]

    def _resolve_index(
        self, policies: list[NetworkPolicy] | PolicyIndex
    ) -> PolicyIndex | None:
        """The index to evaluate through, or ``None`` for the naive scan."""
        if isinstance(policies, PolicyIndex):
            return policies
        if not self.use_index:
            return None
        return self.index_for(policies)

    # Evaluation -------------------------------------------------------------
    def policies_isolating(
        self, policies: list[NetworkPolicy] | PolicyIndex, destination: RunningPod
    ) -> list[NetworkPolicy]:
        """Policies that select the destination pod and restrict ingress."""
        index = self._resolve_index(policies)
        if index is not None:
            return list(index.isolating(destination))
        if destination.host_network:
            # Host-network pods escape the pod network namespace entirely;
            # NetworkPolicies attached to them have no effect.
            return []
        return [
            policy
            for policy in policies
            if policy.restricts_ingress()
            and policy.selects(destination.labels, destination.namespace)
        ]

    def check_ingress(
        self,
        policies: list[NetworkPolicy] | PolicyIndex,
        source: RunningPod,
        destination: RunningPod,
        port: int,
        protocol: str = "TCP",
    ) -> PolicyDecision:
        """Decide whether ``source`` may connect to ``destination`` on ``port``.

        The default-allow fast path (no policy isolates the destination) does
        no selector, named-port or namespace-label work beyond the memoized
        isolating-set lookup.
        """
        index = self._resolve_index(policies)
        if index is not None:
            isolating: list[NetworkPolicy] | tuple[NetworkPolicy, ...] = index.isolating(
                destination
            )
        else:
            isolating = self.policies_isolating(policies, destination)
        return self.decide_ingress(isolating, source, destination, port, protocol)

    def decide_ingress(
        self,
        isolating: list[NetworkPolicy] | tuple[NetworkPolicy, ...],
        source: RunningPod,
        destination: RunningPod,
        port: int,
        protocol: str = "TCP",
    ) -> PolicyDecision:
        """Rule evaluation against a precomputed isolating set.

        Callers that already hold the destination's isolating set (the
        reachability matrix caches it per destination) skip the repeated
        index lookup -- and the labels frozenset it rebuilds -- that
        :meth:`check_ingress` would otherwise pay per decision.
        """
        if not isolating:
            return _HOST_NETWORK_ALLOW if destination.host_network else _DEFAULT_ALLOW
        named_ports = destination.named_ports()
        source_namespace_labels = self._namespace_labels.get(source.namespace, {})
        for policy in isolating:
            if policy.allows_ingress(
                peer_labels=source.labels,
                peer_namespace=source.namespace,
                port=port,
                protocol=protocol,
                named_ports=named_ports,
                namespace_labels=source_namespace_labels,
            ):
                return PolicyDecision(
                    allowed=True,
                    reason=f"allowed by policy {policy.name!r}",
                    isolating_policies=tuple(p.name for p in isolating),
                )
        return PolicyDecision(
            allowed=False,
            reason="denied: no ingress rule of any selecting policy matches",
            isolating_policies=tuple(p.name for p in isolating),
        )

    def partition_pods(
        self, policies: list[NetworkPolicy] | PolicyIndex, pods: list[RunningPod]
    ) -> tuple[list[RunningPod], list[RunningPod]]:
        """Split ``pods`` into (isolated, unprotected) in a single pass."""
        isolated: list[RunningPod] = []
        unprotected: list[RunningPod] = []
        index = self._resolve_index(policies)
        for pod in pods:
            selecting = (
                index.isolating(pod)
                if index is not None
                else self.policies_isolating(policies, pod)
            )
            (isolated if selecting else unprotected).append(pod)
        return isolated, unprotected

    def isolated_pods(
        self, policies: list[NetworkPolicy] | PolicyIndex, pods: list[RunningPod]
    ) -> list[RunningPod]:
        """Pods that have at least one ingress-restricting policy applied."""
        return self.partition_pods(policies, pods)[0]

    def unprotected_pods(
        self, policies: list[NetworkPolicy] | PolicyIndex, pods: list[RunningPod]
    ) -> list[RunningPod]:
        """Pods left wide open: either unselected or escaping via hostNetwork."""
        return self.partition_pods(policies, pods)[1]
