"""CNI plugin simulation: NetworkPolicy enforcement.

Kubernetes delegates policy enforcement to the CNI plugin; this module plays
that role for the simulated cluster.  The semantics follow the NetworkPolicy
specification:

* a pod not selected by any policy accepts every connection (default allow);
* a pod selected by one or more policies with the ``Ingress`` policy type
  only accepts connections allowed by at least one rule of one of those
  policies (union semantics);
* pods running with ``hostNetwork: true`` are *not* isolated by policies --
  the crucial caveat behind misconfiguration M7 and the Figure 4b analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..k8s import NetworkPolicy
from .runtime import RunningPod


@dataclass(frozen=True)
class PolicyDecision:
    """The outcome of a policy evaluation, with an explanation."""

    allowed: bool
    reason: str
    isolating_policies: tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return self.allowed


class NetworkPolicyEnforcer:
    """Evaluates NetworkPolicies against concrete pod-to-pod connections."""

    def __init__(self, namespace_labels: dict[str, dict[str, str]] | None = None) -> None:
        #: Labels of each namespace, needed to evaluate ``namespaceSelector``.
        self._namespace_labels = dict(namespace_labels or {})

    def set_namespace_labels(self, namespace: str, labels: dict[str, str]) -> None:
        self._namespace_labels[namespace] = dict(labels)

    # Evaluation -------------------------------------------------------------
    def policies_isolating(
        self, policies: list[NetworkPolicy], destination: RunningPod
    ) -> list[NetworkPolicy]:
        """Policies that select the destination pod and restrict ingress."""
        if destination.host_network:
            # Host-network pods escape the pod network namespace entirely;
            # NetworkPolicies attached to them have no effect.
            return []
        return [
            policy
            for policy in policies
            if policy.restricts_ingress()
            and policy.selects(destination.labels, destination.namespace)
        ]

    def check_ingress(
        self,
        policies: list[NetworkPolicy],
        source: RunningPod,
        destination: RunningPod,
        port: int,
        protocol: str = "TCP",
    ) -> PolicyDecision:
        """Decide whether ``source`` may connect to ``destination`` on ``port``."""
        isolating = self.policies_isolating(policies, destination)
        if not isolating:
            reason = (
                "destination uses the host network; policies do not apply"
                if destination.host_network
                else "no network policy selects the destination (default allow)"
            )
            return PolicyDecision(allowed=True, reason=reason)
        named_ports = destination.named_ports()
        source_namespace_labels = self._namespace_labels.get(source.namespace, {})
        for policy in isolating:
            if policy.allows_ingress(
                peer_labels=source.labels,
                peer_namespace=source.namespace,
                port=port,
                protocol=protocol,
                named_ports=named_ports,
                namespace_labels=source_namespace_labels,
            ):
                return PolicyDecision(
                    allowed=True,
                    reason=f"allowed by policy {policy.name!r}",
                    isolating_policies=tuple(p.name for p in isolating),
                )
        return PolicyDecision(
            allowed=False,
            reason="denied: no ingress rule of any selecting policy matches",
            isolating_policies=tuple(p.name for p in isolating),
        )

    def isolated_pods(
        self, policies: list[NetworkPolicy], pods: list[RunningPod]
    ) -> list[RunningPod]:
        """Pods that have at least one ingress-restricting policy applied."""
        return [pod for pod in pods if self.policies_isolating(policies, pod)]

    def unprotected_pods(
        self, policies: list[NetworkPolicy], pods: list[RunningPod]
    ) -> list[RunningPod]:
        """Pods left wide open: either unselected or escaping via hostNetwork."""
        return [pod for pod in pods if not self.policies_isolating(policies, pod)]
