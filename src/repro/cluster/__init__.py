"""Cluster simulator substrate.

An in-process stand-in for the Minikube cluster used in the paper's
evaluation: API server with admission chain, scheduler, container runtime
with socket behaviours (including ephemeral ports and hostNetwork), endpoint
controller, cluster DNS, and NetworkPolicy enforcement.
"""

from .apiserver import AdmissionController, APIServer, ObjectStore
from .behavior import (
    ALL_INTERFACES,
    LOOPBACK,
    BehaviorRegistry,
    ContainerBehavior,
    ListenSpec,
    behavior_with_closed_ports,
    behavior_with_dynamic_ports,
    behavior_with_undeclared_ports,
    faithful_behavior,
)
from .cluster import Cluster, InstalledApplication, build_node_set, expand_workload_pods
from .cni import NetworkPolicyEnforcer, PolicyDecision
from .dns import ClusterDNS, DNSRecord
from .endpoints import EndpointController, ServiceBinding
from .errors import (
    AdmissionError,
    AlreadyExistsError,
    ClusterError,
    DuplicatePodError,
    IPAMError,
    NotFoundError,
    PodNotFound,
    SchedulingError,
    actionable_message,
)
from .ipam import AddressPool, ClusterIPAM
from .network import ClusterNetwork, ConnectionAttempt, ReachabilityMatrix, ReachableEndpoint
from .node import CONTROL_PLANE_PROCESSES, DEFAULT_HOST_PROCESSES, HostProcess, Node
from .policy_index import PolicyIndex
from .runtime import ContainerRuntime, RunningPod, Socket
from .scheduler import Scheduler

# Imported last: session pulls in repro.probe, which imports back into this
# package and needs the names above to be bound already.
from .session import (  # noqa: E402
    OBSERVE_FAST,
    OBSERVE_FULL,
    OBSERVE_MODES,
    AnalysisSession,
    ObservationSubstrate,
    SessionStats,
)

__all__ = [
    "ALL_INTERFACES",
    "APIServer",
    "AddressPool",
    "AdmissionController",
    "AdmissionError",
    "AlreadyExistsError",
    "AnalysisSession",
    "BehaviorRegistry",
    "CONTROL_PLANE_PROCESSES",
    "Cluster",
    "ClusterDNS",
    "ClusterError",
    "DuplicatePodError",
    "ClusterIPAM",
    "ClusterNetwork",
    "ConnectionAttempt",
    "ContainerBehavior",
    "ContainerRuntime",
    "DEFAULT_HOST_PROCESSES",
    "DNSRecord",
    "EndpointController",
    "HostProcess",
    "IPAMError",
    "InstalledApplication",
    "LOOPBACK",
    "ListenSpec",
    "NetworkPolicyEnforcer",
    "Node",
    "NotFoundError",
    "OBSERVE_FAST",
    "OBSERVE_FULL",
    "OBSERVE_MODES",
    "ObjectStore",
    "ObservationSubstrate",
    "PodNotFound",
    "PolicyDecision",
    "PolicyIndex",
    "ReachabilityMatrix",
    "ReachableEndpoint",
    "RunningPod",
    "SchedulingError",
    "Scheduler",
    "ServiceBinding",
    "SessionStats",
    "Socket",
    "actionable_message",
    "behavior_with_closed_ports",
    "behavior_with_dynamic_ports",
    "behavior_with_undeclared_ports",
    "build_node_set",
    "expand_workload_pods",
    "faithful_behavior",
]
