"""The cluster facade: a single-process stand-in for Minikube.

:class:`Cluster` wires the API server, scheduler, container runtime,
endpoint controller, DNS and CNI together and exposes the operations the
evaluation pipeline needs:

* ``install`` a rendered Helm chart (or a list of objects) as an *application*;
* ``uninstall`` it again (the paper recreates a clean cluster per chart);
* ``restart_application`` to force new ephemeral ports (double snapshot, M2);
* query running pods, services, bindings and policies;
* simulate connections and compute lateral-movement reachability.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..helm import RenderedChart
from ..k8s import (
    CronJob,
    DaemonSet,
    KubernetesObject,
    NetworkPolicy,
    Pod,
    Service,
    Workload,
    make_namespace,
)
from .apiserver import APIServer, AdmissionController
from .behavior import BehaviorRegistry
from .cni import NetworkPolicyEnforcer
from .dns import ClusterDNS
from .endpoints import EndpointController, ServiceBinding
from .errors import ClusterError, PodNotFound
from .ipam import ClusterIPAM
from .network import ClusterNetwork, ConnectionAttempt, ReachabilityMatrix, ReachableEndpoint
from .node import Node
from .policy_index import PolicyIndex
from .runtime import ContainerRuntime, RunningPod
from .scheduler import Scheduler

_NAME_CLEANUP_RE = re.compile(r"[^a-z0-9-]")


def _sanitize(name: str) -> str:
    cleaned = _NAME_CLEANUP_RE.sub("-", name.lower()).strip("-")
    return cleaned or "pod"


def build_node_set(name: str, worker_count: int) -> list[Node]:
    """The node set of a cluster: one control-plane plus ``worker_count`` workers.

    Shared by :class:`Cluster` and the install-free observation substrate
    (:mod:`repro.cluster.session`) -- fast==full equivalence depends on both
    building exactly the same nodes (names, roles, host-process tables).
    """
    nodes = [Node(name=f"{name}-control-plane", control_plane=True)]
    for index in range(worker_count):
        nodes.append(Node(name=f"{name}-worker-{index + 1}"))
    return nodes


def expand_workload_pods(workload: Workload, worker_count: int) -> list[Pod]:
    """Expand a workload into the pods the cluster would start for it.

    ``worker_count`` is the number of schedulable nodes (DaemonSets run one
    replica per worker).  Shared by :class:`Cluster` and the install-free
    fast observation path (:mod:`repro.cluster.session`), so both expand
    workloads identically by construction.
    """
    if isinstance(workload, DaemonSet):
        replicas = worker_count
    else:
        replicas = workload.replica_count()
    pods: list[Pod] = []
    for index in range(replicas):
        pod_name = _sanitize(f"{workload.name}-{index}")
        pods.append(
            Pod.from_template(
                workload.pod_template(),
                name=pod_name,
                namespace=workload.namespace,
            )
        )
    return pods


@dataclass
class InstalledApplication:
    """Book-keeping for one installed application (Helm release)."""

    name: str
    namespace: str
    objects: list[KubernetesObject] = field(default_factory=list)
    pod_names: list[str] = field(default_factory=list)


class Cluster:
    """An in-process simulated Kubernetes cluster."""

    def __init__(
        self,
        name: str = "minikube",
        worker_count: int = 3,
        behaviors: BehaviorRegistry | None = None,
        seed: int = 2025,
        compiled_policies: bool = True,
    ) -> None:
        self.name = name
        self._seed = seed
        self.ipam = ClusterIPAM()
        self.api = APIServer()
        self.behaviors = behaviors or BehaviorRegistry()
        self.runtime = ContainerRuntime(self.behaviors, seed=seed)
        self.dns = ClusterDNS()
        #: ``compiled_policies=False`` pins every evaluation to the naive
        #: uncompiled scan -- the reference semantics used by differential
        #: tests and the before/after benchmarks.
        self.compiled_policies = compiled_policies
        self.enforcer = NetworkPolicyEnforcer(use_index=compiled_policies)
        self.network = ClusterNetwork(enforcer=self.enforcer)
        self.endpoint_controller = EndpointController()
        self.nodes: list[Node] = []
        for node in build_node_set(name, worker_count):
            self._add_node(node)
        self.scheduler = Scheduler(self.nodes)
        self._running: dict[tuple[str, str], RunningPod] = {}
        self._applications: dict[str, InstalledApplication] = {}
        #: Restart generation, folded into :attr:`policy_epoch` so caches
        #: derived from runtime state invalidate on pod restarts too.
        self._restart_generation = 0
        self._policy_index: PolicyIndex | None = None
        #: Service bindings computed by the last reconcile, plus the epoch
        #: they were computed at (``None`` = never reconciled).
        self._bindings: list[ServiceBinding] = []
        self._bindings_epoch: int | None = None
        #: Compiled endpoint universes for the vectorized reachability
        #: engine, keyed ``(policy_epoch, include_loopback)``; shared across
        #: every matrix built at one epoch, dropped when it grows stale.
        self._universe_cache: dict[tuple[int, bool], object] = {}
        #: Number of :meth:`reset` cycles this skeleton has been through.
        self.session_epoch = 0
        self._ensure_namespace("default")
        self._ensure_namespace("kube-system")

    # Session recycling ------------------------------------------------------
    def reset(self, behaviors: BehaviorRegistry | None = None, seed: int | None = None) -> None:
        """Recycle the cluster skeleton: back to as-constructed state.

        The *reset-epoch contract*: after ``reset(behaviors, seed)`` the
        cluster behaves exactly like ``Cluster(name, worker_count, behaviors,
        seed, compiled_policies)`` freshly constructed -- same node names and
        IPs, same deterministic IPAM and ephemeral-port sequences, empty API
        store, no applications, no admission controllers -- *except* that
        :attr:`policy_epoch` keeps moving strictly forward (the store
        generation is carried over and bumped, never rewound), so any cache
        keyed on the epoch (the compiled policy index, the service-binding
        reconcile, external consumers) invalidates without manual plumbing.

        What is recycled rather than rebuilt: the :class:`Node` objects (with
        their host-process tables), the scheduler wired to them, and the
        namespace defaults.  Everything derived from installed state is
        dropped.  :class:`AnalysisSession` calls this between charts instead
        of constructing a throw-away cluster per chart.
        """
        if behaviors is not None:
            self.behaviors = behaviors
        if seed is not None:
            self._seed = seed
        self.session_epoch += 1
        # Every component clears in place (identities survive, so external
        # references like ``network.enforcer`` stay wired); the store
        # generation moves forward by at least one even on a mutation-free
        # cycle, so the epoch never stands still across a reset.
        self.api.reset()
        self.ipam.reset()
        self.runtime.reset(self.behaviors, seed=self._seed)
        self.dns.reset()
        self.enforcer.reset()
        for node in self.nodes:
            node.pod_names.clear()
            node.ip = self.ipam.nodes.allocate(node.name)
        self._running.clear()
        self._applications.clear()
        self._policy_index = None
        self._bindings = []
        self._bindings_epoch = None
        self._universe_cache.clear()
        self._ensure_namespace("default")
        self._ensure_namespace("kube-system")

    # Node management --------------------------------------------------------
    def _add_node(self, node: Node) -> None:
        node.ip = self.ipam.nodes.allocate(node.name)
        self.nodes.append(node)

    def worker_nodes(self) -> list[Node]:
        return [node for node in self.nodes if node.schedulable]

    # Namespace helpers --------------------------------------------------------
    def _ensure_namespace(self, namespace: str, labels: Mapping[str, str] | None = None) -> None:
        effective = dict(labels or {"kubernetes.io/metadata.name": namespace})
        if not self.api.store.exists("Namespace", namespace, ""):
            self.api.apply(make_namespace(namespace, labels))
        elif labels is None:
            # Ensuring an existing namespace without explicit labels (e.g.
            # installing a release into it) must not clobber labels a
            # Namespace object set earlier -- but a namespace created behind
            # the enforcer's back (direct ``api.apply``) still needs its
            # default registration, or namespaceSelector rules never match.
            if self.enforcer.namespace_labels(namespace):
                return
        elif self.enforcer.namespace_labels(namespace) != effective:
            # Label update on an existing namespace: namespaceSelector
            # semantics just changed, so the store must reflect the new
            # labels and the mutation must move :attr:`policy_epoch` like
            # every other policy-relevant write.
            self.api.apply(make_namespace(namespace, labels))
        self.enforcer.set_namespace_labels(namespace, effective)

    # Admission ------------------------------------------------------------------
    def register_admission_controller(self, controller: AdmissionController) -> None:
        self.api.register_admission_controller(controller)

    # Application lifecycle ---------------------------------------------------------
    def install(
        self,
        source: RenderedChart | Iterable[KubernetesObject],
        app_name: str = "",
        namespace: str = "default",
    ) -> InstalledApplication:
        """Install a rendered chart (or plain objects) as one application."""
        if isinstance(source, RenderedChart):
            objects = list(source.objects)
            app_name = app_name or source.release.name
            namespace = source.release.namespace or namespace
        else:
            objects = list(source)
            if not app_name:
                raise ClusterError("app_name is required when installing plain objects")
        if app_name in self._applications:
            raise ClusterError(f"application {app_name!r} is already installed")
        self._ensure_namespace(namespace)
        application = InstalledApplication(name=app_name, namespace=namespace)
        for obj in objects:
            if obj.kind == "Namespace":
                self._ensure_namespace(obj.name, obj.labels.to_dict())
                continue
            if obj.NAMESPACED and not obj.metadata.namespace:
                obj.metadata.namespace = namespace
            self.api.apply(obj)
            application.objects.append(obj)
        self._applications[app_name] = application
        self._start_application_pods(application)
        self.reconcile()
        return application

    def uninstall(self, app_name: str) -> None:
        application = self._applications.pop(app_name, None)
        if application is None:
            raise ClusterError(f"application {app_name!r} is not installed")
        for pod_name in application.pod_names:
            running = self._running.pop((application.namespace, pod_name), None)
            if running is not None:
                self.scheduler.unschedule(pod_name)
                self.ipam.pods.release(f"{application.namespace}/{pod_name}")
        for obj in application.objects:
            try:
                self.api.delete(obj.kind, obj.name, obj.namespace)
            except ClusterError:
                continue
        self.reconcile()

    def applications(self) -> list[InstalledApplication]:
        return list(self._applications.values())

    # Pod lifecycle -------------------------------------------------------------------
    def _start_application_pods(self, application: InstalledApplication) -> None:
        for obj in application.objects:
            if isinstance(obj, Workload) and not isinstance(obj, CronJob):
                for pod in self._expand_workload(obj):
                    self._start_pod(pod, application, owner=obj.qualified_name())
            elif isinstance(obj, Pod):
                self._start_pod(obj, application, owner=obj.qualified_name())

    def _expand_workload(self, workload: Workload) -> list[Pod]:
        return expand_workload_pods(workload, len(self.worker_nodes()))

    def _start_pod(self, pod: Pod, application: InstalledApplication, owner: str = "") -> RunningPod:
        node = self.scheduler.schedule(pod)
        if pod.spec.host_network:
            ip = node.ip
        else:
            ip = self.ipam.pods.allocate(f"{pod.namespace}/{pod.name}")
        running = self.runtime.start_pod(pod, ip, node, app=application.name, owner=owner)
        self._running[(pod.namespace, pod.name)] = running
        application.pod_names.append(pod.name)
        return running

    def restart_application(self, app_name: str) -> None:
        """Restart every pod of an application (ephemeral ports change)."""
        application = self._applications.get(app_name)
        if application is None:
            raise ClusterError(f"application {app_name!r} is not installed")
        for pod_name in application.pod_names:
            running = self._running.get((application.namespace, pod_name))
            if running is not None:
                self.runtime.restart_pod(running)
        self._restart_generation += 1
        self.reconcile()

    def restart_all(self) -> None:
        for running in self._running.values():
            self.runtime.restart_pod(running)
        self._restart_generation += 1
        self.reconcile()

    # Controllers -----------------------------------------------------------------------
    def reconcile(self) -> None:
        """Recompute service bindings and DNS records (unconditionally)."""
        bindings = self.endpoint_controller.bind(self.services(), self.running_pods())
        service_ips = {}
        for binding in bindings:
            service = binding.service
            if not service.is_headless:
                owner = f"{service.namespace}/{service.name}"
                service_ips[(service.namespace, service.name)] = self.ipam.services.allocate(owner)
        self.dns.program(bindings, service_ips)
        self._bindings = bindings
        self._bindings_epoch = self.policy_epoch

    # Queries ------------------------------------------------------------------------------
    def running_pods(self, app_name: str | None = None, namespace: str | None = None) -> list[RunningPod]:
        return [
            running
            for running in self._running.values()
            if (app_name is None or running.app == app_name)
            and (namespace is None or running.namespace == namespace)
        ]

    def running_pod(self, name: str, namespace: str = "default") -> RunningPod:
        running = self._running.get((namespace, name))
        if running is None:
            raise PodNotFound(name, namespace)
        return running

    def services(self, namespace: str | None = None) -> list[Service]:
        return [
            obj
            for obj in self.api.store.list("Service", namespace)
            if isinstance(obj, Service)
        ]

    def network_policies(self, namespace: str | None = None) -> list[NetworkPolicy]:
        return [
            obj
            for obj in self.api.store.list("NetworkPolicy", namespace)
            if isinstance(obj, NetworkPolicy)
        ]

    def service_bindings(self) -> list[ServiceBinding]:
        """The current service-to-pod bindings (epoch-cached).

        Bindings derive from the API store (services, selectors) and the set
        of running pods, both of which move :attr:`policy_epoch` on every
        mutation (install, uninstall, restart, direct ``api.apply``/
        ``api.delete``).  The endpoint controller therefore only re-reconciles
        when the epoch moved since the last reconcile -- the same
        store-generation pattern as :meth:`policy_index`.
        """
        if self._bindings_epoch != self.policy_epoch:
            self.reconcile()
        return list(self._bindings)

    def binding_for(self, service_name: str, namespace: str = "default") -> ServiceBinding:
        for binding in self.service_bindings():
            if binding.service.name == service_name and binding.service.namespace == namespace:
                return binding
        raise ClusterError(f"service {namespace}/{service_name} not found")

    def host_port_baseline(self) -> set[int]:
        """Ports open on the nodes before any application is installed."""
        ports: set[int] = set()
        for node in self.nodes:
            ports.update(node.host_port_numbers())
        return ports

    # Connectivity ------------------------------------------------------------------------
    @property
    def policy_epoch(self) -> int:
        """Monotonic epoch of the policy-relevant cluster state.

        Moves on every API-server mutation (install, uninstall, direct
        ``api.apply``/``api.delete``) and on pod restarts, so any cache keyed
        on it -- most importantly the compiled :class:`PolicyIndex` -- is
        invalidated without manual plumbing.
        """
        return self.api.store.generation + self._restart_generation

    def policy_index(self) -> PolicyIndex:
        """The compiled policy index for the current epoch (cached)."""
        epoch = self.policy_epoch
        index = self._policy_index
        if index is None or index.epoch != epoch:
            index = PolicyIndex(self.network_policies(), epoch=epoch)
            self._policy_index = index
        return index

    def policies_view(self) -> PolicyIndex | list[NetworkPolicy]:
        """The policy set in the shape the connectivity engine should use.

        The compiled, epoch-cached index normally; the raw list when the
        cluster was built with ``compiled_policies=False`` (which pins every
        downstream evaluation to the naive reference path).
        """
        if self.compiled_policies:
            return self.policy_index()
        return self.network_policies()

    def reachability_matrix(
        self, include_loopback: bool = False, vectorized: bool = True
    ) -> ReachabilityMatrix:
        """A batched all-pairs reachability engine over the current state.

        Surfaces run on the vectorized bitmask engine by default, sharing
        one compiled :class:`~repro.cluster.network.EndpointUniverse` per
        ``(policy_epoch, include_loopback)`` across every matrix of the
        epoch; ``vectorized=False`` pins the per-object grouped reference.
        """
        if len(self._universe_cache) > 8:
            self._universe_cache.clear()
        stale = [key for key in self._universe_cache if key[0] != self.policy_epoch]
        for key in stale:
            del self._universe_cache[key]
        return self.network.reachability_matrix(
            self.policies_view(),
            self.running_pods(),
            self.service_bindings(),
            include_loopback=include_loopback,
            vectorized=vectorized,
            universe_cache=self._universe_cache if self.compiled_policies else None,
        )

    def connect(
        self,
        source: RunningPod,
        destination: RunningPod | str,
        port: int,
        protocol: str = "TCP",
    ) -> ConnectionAttempt:
        """Simulate a connection from a pod to another pod or a service name."""
        policies = self.policies_view()
        if isinstance(destination, RunningPod):
            return self.network.connect_pod_to_pod(policies, source, destination, port, protocol)
        binding = self.binding_for(destination.split(".")[0], source.namespace
                                   if "." not in destination else destination.split(".")[1])
        return self.network.connect_pod_to_service(policies, source, binding, port, protocol)

    def reachable_from(self, source: RunningPod, include_loopback: bool = False) -> list[ReachableEndpoint]:
        """The lateral-movement surface visible from ``source``."""
        return self.network.reachable_endpoints(
            self.policies_view(),
            source,
            self.running_pods(),
            self.service_bindings(),
            include_loopback=include_loopback,
        )
