"""Runtime behaviour models for simulated containers.

The misconfigurations the paper studies arise from the *difference* between
what a chart declares and what the application actually does at runtime.
The cluster simulator therefore needs a description of each container
image's real behaviour: which ports it listens on, whether it also opens
ephemeral (dynamic) ports, and on which interface.

Behaviours are registered per image name in a :class:`BehaviorRegistry`.
Unregistered images fall back to the *faithful* behaviour -- listening on
exactly the ports declared in the pod spec -- which is the behaviour a
correctly packaged application would exhibit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..k8s import Container

#: Sentinel interface values for listening sockets.
ALL_INTERFACES = "0.0.0.0"
LOOPBACK = "127.0.0.1"


@dataclass(frozen=True)
class ListenSpec:
    """One socket the application opens when it starts.

    ``port`` of ``None`` requests a dynamic (ephemeral) port: the container
    runtime allocates a fresh number from the OS range on every start, which
    is exactly the behaviour behind misconfiguration M2.
    """

    port: int | None
    protocol: str = "TCP"
    interface: str = ALL_INTERFACES
    process: str = ""

    @property
    def is_dynamic(self) -> bool:
        return self.port is None

    @property
    def is_loopback_only(self) -> bool:
        return self.interface == LOOPBACK


@dataclass
class ContainerBehavior:
    """The complete runtime behaviour of one container image.

    ``listen_on_declared`` makes the container open every declared
    ``containerPort`` (the faithful default); ``extra_listens`` adds sockets
    beyond the declaration (undeclared ports, dynamic ports, loopback-only
    control sockets); ``ignore_declared_ports`` lists declared ports the
    application does *not* actually open (the M3 scenario, e.g. optional
    features that are disabled at runtime).
    """

    image: str = ""
    listen_on_declared: bool = True
    extra_listens: list[ListenSpec] = field(default_factory=list)
    ignore_declared_ports: set[int] = field(default_factory=set)
    #: Environment variable that, when set on the container, pins otherwise
    #: dynamic ports to its integer value (the paper's M2 mitigation).
    static_port_env: str = ""

    def effective_listens(self, container: Container) -> list[ListenSpec]:
        """Compute the sockets this container opens given its declaration."""
        listens: list[ListenSpec] = []
        if self.listen_on_declared:
            for declared in container.ports:
                if declared.container_port in self.ignore_declared_ports:
                    continue
                listens.append(
                    ListenSpec(
                        port=declared.container_port,
                        protocol=declared.protocol,
                        process=container.name,
                    )
                )
        pinned = container.env_value(self.static_port_env) if self.static_port_env else ""
        for extra in self.extra_listens:
            if extra.is_dynamic and pinned.isdigit():
                listens.append(
                    ListenSpec(
                        port=int(pinned),
                        protocol=extra.protocol,
                        interface=extra.interface,
                        process=extra.process or container.name,
                    )
                )
            else:
                listens.append(extra)
        return listens

    def dynamic_listen_count(self) -> int:
        return sum(1 for listen in self.extra_listens if listen.is_dynamic)


class BehaviorRegistry:
    """Maps container image names to their runtime behaviour."""

    def __init__(self) -> None:
        self._behaviors: dict[str, ContainerBehavior] = {}
        self._fingerprint: str | None = None

    def register(self, image: str, behavior: ContainerBehavior) -> None:
        behavior.image = image
        self._behaviors[image] = behavior
        self._fingerprint = None

    def register_all(self, behaviors: Mapping[str, ContainerBehavior]) -> None:
        for image, behavior in behaviors.items():
            self.register(image, behavior)

    def lookup(self, image: str) -> ContainerBehavior:
        """Behaviour for ``image``; unregistered images behave faithfully."""
        behavior = self._behaviors.get(image)
        if behavior is not None:
            return behavior
        return ContainerBehavior(image=image, listen_on_declared=True)

    def images(self) -> list[str]:
        return sorted(self._behaviors)

    def merged_with(self, other: "BehaviorRegistry") -> "BehaviorRegistry":
        merged = BehaviorRegistry()
        merged._behaviors.update(self._behaviors)
        merged._behaviors.update(other._behaviors)
        return merged

    def fingerprint(self) -> str:
        """Content fingerprint (sha256 hex) over every registered behaviour.

        Observations are deterministic in the registry content, so this is
        one of the inputs to the content-keyed observation memo
        (:class:`repro.cluster.session.ObservationMemo`).  Images are
        sorted; ``extra_listens`` keeps registration order because the
        simulator draws dynamic ports in that order.  Cached until the next
        ``register`` -- the delta classifier re-reads it every watch round
        (behaviours must be registered, never mutated in place, for the
        cache and the observation memo alike to stay sound).
        """
        if self._fingerprint is not None:
            return self._fingerprint
        parts = []
        for image in sorted(self._behaviors):
            behavior = self._behaviors[image]
            parts.append(
                (
                    image,
                    behavior.listen_on_declared,
                    tuple(
                        (listen.port, listen.protocol, listen.interface, listen.process)
                        for listen in behavior.extra_listens
                    ),
                    tuple(sorted(behavior.ignore_declared_ports)),
                    behavior.static_port_env,
                )
            )
        self._fingerprint = hashlib.sha256(
            repr(tuple(parts)).encode("utf-8")
        ).hexdigest()
        return self._fingerprint

    def __contains__(self, image: str) -> bool:
        return image in self._behaviors

    def __len__(self) -> int:
        return len(self._behaviors)


def faithful_behavior() -> ContainerBehavior:
    """Behaviour of a correctly packaged application (declares == listens)."""
    return ContainerBehavior(listen_on_declared=True)


def behavior_with_undeclared_ports(ports: Iterable[int], protocol: str = "TCP") -> ContainerBehavior:
    """Behaviour that opens extra, undeclared ports (produces M1)."""
    return ContainerBehavior(
        listen_on_declared=True,
        extra_listens=[ListenSpec(port=port, protocol=protocol) for port in ports],
    )


def behavior_with_dynamic_ports(count: int = 1, protocol: str = "TCP") -> ContainerBehavior:
    """Behaviour that opens ``count`` ephemeral ports (produces M2)."""
    return ContainerBehavior(
        listen_on_declared=True,
        extra_listens=[ListenSpec(port=None, protocol=protocol) for _ in range(count)],
    )


def behavior_with_closed_ports(ports: Iterable[int]) -> ContainerBehavior:
    """Behaviour that skips some declared ports (produces M3)."""
    return ContainerBehavior(listen_on_declared=True, ignore_declared_ports=set(ports))
