"""Container runtime simulation: running pods and their sockets.

The runtime turns a pod specification plus the registered behaviour of its
container images into a set of *listening sockets*.  Dynamic ports are drawn
from the OS ephemeral range with a deterministic RNG seeded per cluster, and
change on every container (re)start -- reproducing the double-snapshot
detection strategy of Section 4.2.2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..k8s import EPHEMERAL_PORT_RANGE, Pod
from .behavior import ALL_INTERFACES, BehaviorRegistry, ListenSpec
from .node import Node


@dataclass(frozen=True)
class Socket:
    """A listening socket inside a pod (or on the host for hostNetwork pods)."""

    port: int
    protocol: str = "TCP"
    interface: str = ALL_INTERFACES
    container: str = ""
    process: str = ""
    dynamic: bool = False

    @property
    def reachable_from_network(self) -> bool:
        """Loopback-only sockets are unreachable from other pods."""
        return self.interface != "127.0.0.1"

    def describe(self) -> str:
        return f"{self.protocol.lower()} {self.interface}:{self.port} ({self.process or self.container})"


@dataclass
class RunningPod:
    """A pod that has been scheduled and started."""

    pod: Pod
    ip: str
    node: Node
    sockets: list[Socket] = field(default_factory=list)
    restart_count: int = 0
    #: Release / application this pod belongs to (set by the cluster facade).
    app: str = ""
    #: Qualified name of the owning compute unit (e.g. ``Deployment/default/web``).
    owner: str = ""
    #: Lazily built named-port map (the pod spec never changes after start).
    _named_ports_cache: dict[str, int] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    #: Socket lookup table, keyed by the identity of the socket list so a
    #: restart (which installs a fresh list) invalidates it automatically.
    _socket_cache: tuple[list[Socket], dict[tuple[int, str], Socket]] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    #: Lazily built ``(namespace, name)`` identity tuple and frozen label
    #: items; both are fixed once the pod is running, like the spec, and are
    #: the memo keys of every connectivity-engine cache.
    _ident_cache: tuple[str, str] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _label_items_cache: frozenset | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def name(self) -> str:
        return self.pod.name

    @property
    def namespace(self) -> str:
        return self.pod.namespace

    @property
    def ident(self) -> tuple[str, str]:
        """The pod's ``(namespace, name)`` identity (memoized)."""
        ident = self._ident_cache
        if ident is None:
            ident = (self.pod.namespace, self.pod.name)
            self._ident_cache = ident
        return ident

    def label_items(self) -> frozenset:
        """The pod's labels as a frozen item set (memoized).

        Shared by the policy index and reachability matrix as the
        equivalence-class component of their memo keys; treat as read-only.
        """
        items = self._label_items_cache
        if items is None:
            items = frozenset(self.pod.labels.items())
            self._label_items_cache = items
        return items

    @property
    def labels(self):
        return self.pod.labels

    @property
    def host_network(self) -> bool:
        return self.pod.spec.host_network

    def listening_ports(self, protocol: str | None = None, include_loopback: bool = True) -> set[int]:
        return {
            socket.port
            for socket in self.sockets
            if (protocol is None or socket.protocol == protocol)
            and (include_loopback or socket.reachable_from_network)
        }

    def declared_ports(self, protocol: str | None = None) -> set[int]:
        return self.pod.spec.declared_port_numbers(protocol)

    def named_ports(self) -> dict[str, int]:
        """Named container ports, used to resolve named targets in policies.

        The result is memoized (the spec is fixed once the pod is running) and
        shared between callers; treat it as read-only.
        """
        named = self._named_ports_cache
        if named is None:
            named = {}
            for container in self.pod.spec.containers:
                for port in container.ports:
                    if port.name:
                        named[port.name] = port.container_port
            self._named_ports_cache = named
        return named

    def socket_on(self, port: int, protocol: str = "TCP") -> Socket | None:
        cache = self._socket_cache
        if cache is None or cache[0] is not self.sockets:
            table: dict[tuple[int, str], Socket] = {}
            for socket in self.sockets:
                table.setdefault((socket.port, socket.protocol), socket)
            cache = (self.sockets, table)
            self._socket_cache = cache
        return cache[1].get((port, protocol))


class ContainerRuntime:
    """Creates and restarts the sockets of running pods."""

    def __init__(self, behaviors: BehaviorRegistry | None = None, seed: int = 2025) -> None:
        self.behaviors = behaviors or BehaviorRegistry()
        self._rng = random.Random(seed)
        self._used_ephemeral: dict[str, set[int]] = {}

    def reset(self, behaviors: BehaviorRegistry | None = None, seed: int = 2025) -> None:
        """Re-seed the runtime: the ephemeral-port sequence replays exactly
        as a freshly constructed runtime's would."""
        if behaviors is not None:
            self.behaviors = behaviors
        self._rng.seed(seed)
        self._used_ephemeral.clear()

    # Pod lifecycle -----------------------------------------------------------
    def start_pod(self, pod: Pod, ip: str, node: Node, app: str = "", owner: str = "") -> RunningPod:
        """Start every container of ``pod`` and return the running instance."""
        running = RunningPod(pod=pod, ip=ip, node=node, app=app, owner=owner)
        running.sockets = self._open_sockets(running)
        return running

    def restart_pod(self, running: RunningPod) -> RunningPod:
        """Restart a pod: static sockets stay, dynamic ports are re-allocated."""
        running.restart_count += 1
        self._used_ephemeral.pop(self._pod_key(running), None)
        running.sockets = self._open_sockets(running)
        return running

    def drew_ephemeral(self, running: RunningPod) -> bool:
        """Whether this pod's last (re)start drew any ephemeral port.

        Exact even when the drawn socket was later deduplicated away by a
        same-port static socket: the draw itself (which advances the shared
        RNG) is what is recorded.  The fast observation path keys its
        skip-restart decision on this, keeping RNG parity with a real
        restart of every pod.
        """
        return bool(self._used_ephemeral.get(self._pod_key(running)))

    # Socket derivation ----------------------------------------------------------
    def _open_sockets(self, running: RunningPod) -> list[Socket]:
        sockets: list[Socket] = []
        if running.host_network:
            # The pod shares the node's network namespace: every host socket
            # is visible inside the pod and vice versa.
            sockets.extend(
                self._socket_from_listen(listen, container="", running=running)
                for listen in running.node.host_listen_specs()
            )
        for container in running.pod.spec.containers:
            behavior = self.behaviors.lookup(container.image)
            for listen in behavior.effective_listens(container):
                sockets.append(self._socket_from_listen(listen, container.name, running))
        return self._deduplicate(sockets)

    def _socket_from_listen(self, listen: ListenSpec, container: str, running: RunningPod) -> Socket:
        if listen.is_dynamic:
            port = self._allocate_ephemeral(self._pod_key(running))
            dynamic = True
        else:
            port = int(listen.port)  # type: ignore[arg-type]
            dynamic = False
        return Socket(
            port=port,
            protocol=listen.protocol,
            interface=listen.interface,
            container=container,
            process=listen.process or container,
            dynamic=dynamic,
        )

    def _allocate_ephemeral(self, pod_key: str) -> int:
        low, high = EPHEMERAL_PORT_RANGE
        used = self._used_ephemeral.setdefault(pod_key, set())
        while True:
            port = self._rng.randint(low, high)
            if port not in used:
                used.add(port)
                return port

    @staticmethod
    def _deduplicate(sockets: list[Socket]) -> list[Socket]:
        seen: set[tuple[int, str, str]] = set()
        unique: list[Socket] = []
        for socket in sockets:
            key = (socket.port, socket.protocol, socket.interface)
            if key in seen:
                continue
            seen.add(key)
            unique.append(socket)
        return unique

    @staticmethod
    def _pod_key(running: RunningPod) -> str:
        return f"{running.namespace}/{running.name}"
