"""The cluster network: who can talk to whom, and through what.

This module combines the flat pod network, service virtual IPs, and
NetworkPolicy enforcement into a single connectivity engine.  It answers the
questions the runtime probe and the attack scenarios ask:

* can pod A open a TCP connection to pod B on port P?
* can pod A reach service S, and which backends would receive the traffic?
* which endpoints in the whole cluster remain reachable from a compromised
  pod (the lateral-movement surface)?

Cluster-wide questions run through :class:`ReachabilityMatrix`, the batched
engine built on the compiled policy index: it precomputes per-destination
isolating sets and named ports once, memoizes whole policy decisions by
source/destination equivalence class, and answers all-pairs reachability
without re-scanning the policy list per connection attempt.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..k8s import NetworkPolicy
from .cni import NetworkPolicyEnforcer, PolicyDecision
from .endpoints import ServiceBinding
from .policy_index import PolicyIndex
from .runtime import RunningPod


@dataclass(frozen=True)
class ConnectionAttempt:
    """The result of a simulated connection attempt."""

    source: str
    destination: str
    port: int
    protocol: str = "TCP"
    success: bool = False
    reason: str = ""
    via_service: str = ""
    backend_pod: str = ""

    def __bool__(self) -> bool:
        return self.success


@dataclass(frozen=True)
class ReachableEndpoint:
    """An endpoint (pod socket or service port) reachable from a source pod.

    Frozen: surfaces answered from the matrix share endpoint instances
    between every pod of a policy-equivalence class, so mutation would
    corrupt the memoized class surfaces.
    """

    kind: str  # "pod" or "service"
    namespace: str
    name: str
    port: int
    protocol: str = "TCP"
    dynamic: bool = False
    app: str = ""


def _attempt_pod_connection(
    decide,
    source: RunningPod,
    destination: RunningPod,
    port: int,
    protocol: str,
) -> ConnectionAttempt:
    """Socket/loopback gating + policy decision for one pod-to-pod attempt.

    The single implementation behind both the per-attempt path
    (``ClusterNetwork.connect_pod_to_pod``) and the cached matrix path;
    ``decide(source, destination, port, protocol)`` supplies the
    :class:`PolicyDecision` (uncached enforcer call or matrix memo).
    """
    same_pod = source.name == destination.name and source.namespace == destination.namespace
    socket = destination.socket_on(port, protocol)
    if socket is None:
        return ConnectionAttempt(
            source=source.name,
            destination=destination.name,
            port=port,
            protocol=protocol,
            success=False,
            reason="connection refused: nothing is listening on that port",
        )
    if socket.interface == "127.0.0.1" and not same_pod:
        return ConnectionAttempt(
            source=source.name,
            destination=destination.name,
            port=port,
            protocol=protocol,
            success=False,
            reason="connection refused: socket is bound to the loopback interface",
        )
    decision: PolicyDecision = decide(source, destination, port, protocol)
    return ConnectionAttempt(
        source=source.name,
        destination=destination.name,
        port=port,
        protocol=protocol,
        success=decision.allowed,
        reason=decision.reason,
    )


def _attempt_service_connection(
    connect,
    source: RunningPod,
    binding: ServiceBinding,
    port: int,
    protocol: str,
) -> ConnectionAttempt:
    """Service-port resolution + backend loop for one pod-to-service attempt.

    ``connect(source, backend, target_port, protocol)`` performs the
    underlying pod-to-pod attempt (uncached or matrix-cached); everything
    else -- port lookup, empty-endpoint handling, named-target resolution,
    backend order and reason strings -- lives here exactly once.
    """
    service = binding.service
    service_port = next((p for p in service.ports if p.port == port), None)
    if service_port is None:
        return ConnectionAttempt(
            source=source.name,
            destination=service.name,
            port=port,
            protocol=protocol,
            success=False,
            via_service=service.name,
            reason=f"service {service.name!r} does not expose port {port}",
        )
    if not binding.backends:
        return ConnectionAttempt(
            source=source.name,
            destination=service.name,
            port=port,
            protocol=protocol,
            success=False,
            via_service=service.name,
            reason="no endpoints: the service selector matches no running pod",
        )
    raw_target = service_port.resolved_target()
    last_reason = ""
    for backend in binding.backends:
        target_port = (
            raw_target
            if isinstance(raw_target, int)
            else backend.named_ports().get(str(raw_target))
        )
        if target_port is None:
            last_reason = f"named target port {raw_target!r} is not declared by pod {backend.name!r}"
            continue
        attempt = connect(source, backend, target_port, protocol)
        if attempt.success:
            return ConnectionAttempt(
                source=source.name,
                destination=service.name,
                port=port,
                protocol=protocol,
                success=True,
                via_service=service.name,
                backend_pod=backend.name,
                reason=attempt.reason,
            )
        last_reason = attempt.reason
    return ConnectionAttempt(
        source=source.name,
        destination=service.name,
        port=port,
        protocol=protocol,
        success=False,
        via_service=service.name,
        reason=last_reason or "no backend accepted the connection",
    )


class ReachabilityMatrix:
    """Batched connectivity over a fixed snapshot of pods, bindings, policies.

    Build one per cluster state (the cluster facade does this for you via
    ``Cluster.reachability_matrix()``) and ask it for any number of
    connection attempts or per-source endpoint surfaces.  Internally it
    shares, across every query:

    * the compiled :class:`PolicyIndex` (isolating sets memoized per label
      set -- replicas resolve in O(1));
    * per-destination named-port keys;
    * whole :class:`PolicyDecision` objects memoized by the equivalence
      class of the attempt -- ``(source namespace+labels, destination
      isolating set, destination named ports, port, protocol)`` -- so a
      thousand pods probing the same destination port cost one evaluation.

    Results are bit-identical to the per-attempt path: decisions come from
    ``NetworkPolicyEnforcer.check_ingress`` on cache miss, and the
    socket/loopback gating mirrors ``connect_pod_to_pod`` exactly.
    """

    def __init__(
        self,
        network: "ClusterNetwork",
        index: PolicyIndex | None,
        pods: list[RunningPod],
        bindings: list[ServiceBinding],
        include_loopback: bool = False,
        naive_policies: list[NetworkPolicy] | None = None,
    ) -> None:
        self._network = network
        self._enforcer = network.enforcer
        self.index = index
        self.pods = list(pods)
        self.bindings = list(bindings)
        self.include_loopback = include_loopback
        #: When set (and ``index`` is ``None``) the matrix runs in naive mode:
        #: every query delegates to the uncached per-attempt path with this
        #: policy list.  This is the pre-compilation reference used by the
        #: differential tests and the before/after benchmarks.
        self._naive_policies = naive_policies
        #: (namespace, name) -> (isolating tuple, named-port key, hostNetwork)
        self._dest_info: dict[tuple[str, str], tuple[tuple, tuple, bool]] = {}
        #: (namespace, name) -> hashable source equivalence key
        self._source_keys: dict[tuple[str, str], tuple] = {}
        #: decision memo, keyed by attempt equivalence class
        self._decisions: dict[tuple, PolicyDecision] = {}
        #: source class key -> (pod entries, service entries); the whole
        #: reachable surface of an equivalence class, computed once and
        #: filtered per member (see :meth:`endpoints_from`).
        self._class_surfaces: dict[tuple, tuple[list, list]] = {}

    # Equivalence keys --------------------------------------------------------
    def _destination_info(self, destination: RunningPod) -> tuple[tuple, tuple, bool]:
        key = (destination.namespace, destination.name)
        info = self._dest_info.get(key)
        if info is None:
            isolating = self.index.isolating(destination)
            named_key = (
                tuple(sorted(destination.named_ports().items())) if isolating else ()
            )
            info = (isolating, named_key, destination.host_network)
            self._dest_info[key] = info
        return info

    def _source_key(self, source: RunningPod) -> tuple:
        key = (source.namespace, source.name)
        cached = self._source_keys.get(key)
        if cached is None:
            cached = (source.namespace, frozenset(source.labels.items()))
            self._source_keys[key] = cached
        return cached

    # Decisions ---------------------------------------------------------------
    def decision(
        self,
        source: RunningPod,
        destination: RunningPod,
        port: int,
        protocol: str = "TCP",
    ) -> PolicyDecision:
        """The (memoized) policy decision for one connection attempt."""
        if self.index is None:
            return self._enforcer.check_ingress(
                self._naive_policies or [], source, destination, port, protocol
            )
        isolating, named_key, host_network = self._destination_info(destination)
        if not isolating:
            memo_key: tuple = ("free", host_network)
        else:
            memo_key = (self._source_key(source), id(isolating), named_key, port, protocol)
        decision = self._decisions.get(memo_key)
        if decision is None:
            decision = self._enforcer.check_ingress(
                self.index, source, destination, port, protocol
            )
            self._decisions[memo_key] = decision
        return decision

    # Connection attempts -----------------------------------------------------
    def connect(
        self,
        source: RunningPod,
        destination: RunningPod,
        port: int,
        protocol: str = "TCP",
    ) -> ConnectionAttempt:
        """Cached equivalent of ``ClusterNetwork.connect_pod_to_pod``."""
        if self.index is None:
            return self._network.connect_pod_to_pod(
                self._naive_policies or [], source, destination, port, protocol
            )
        return _attempt_pod_connection(self.decision, source, destination, port, protocol)

    def connect_via_service(
        self,
        source: RunningPod,
        binding: ServiceBinding,
        port: int,
        protocol: str = "TCP",
    ) -> ConnectionAttempt:
        """Cached equivalent of ``ClusterNetwork.connect_pod_to_service``."""
        if self.index is None:
            return self._network.connect_pod_to_service(
                self._naive_policies or [], source, binding, port, protocol
            )
        return _attempt_service_connection(self.connect, source, binding, port, protocol)

    # Surfaces ----------------------------------------------------------------
    def endpoints_from(self, source: RunningPod) -> list[ReachableEndpoint]:
        """Every pod socket and service port reachable from ``source``.

        Answered from the source's *class surface*: the full reachable
        surface of the source's policy-equivalence class -- the
        ``(namespace, labels)`` key every decision is memoized under --
        computed once per class against every destination and service, then
        filtered per member with two exact corrections:

        * the member's own sockets are excluded (a pod is not part of its
          own lateral-movement surface);
        * a service whose only accepting backend path is loopback-bound is
          reachable solely by that backend pod itself (``same_pod``
          semantics), so such endpoints are attached per-member.

        Results are identical, entry for entry and in the same order, to the
        per-attempt reference scan; endpoint objects are shared between
        members of a class, so treat them as read-only.
        """
        if self.index is None:
            return self._endpoints_from_uncached(source)
        class_key = self._source_key(source)
        surface = self._class_surfaces.get(class_key)
        if surface is None:
            surface = (
                self._class_pod_endpoints(source),
                self._class_service_endpoints(source),
            )
            self._class_surfaces[class_key] = surface
        pod_entries, service_entries = surface
        source_key = (source.namespace, source.name)
        reachable = [
            endpoint
            for destination_key, endpoint in pod_entries
            if destination_key != source_key
        ]
        reachable.extend(
            endpoint
            for only_members, endpoint in service_entries
            if only_members is None or source_key in only_members
        )
        return reachable

    def _endpoints_from_uncached(self, source: RunningPod) -> list[ReachableEndpoint]:
        """The per-attempt reference scan (naive mode keeps this path)."""
        reachable: list[ReachableEndpoint] = []
        for destination in self.pods:
            if destination is source:
                continue
            for socket in destination.sockets:
                if not self.include_loopback and not socket.reachable_from_network:
                    continue
                attempt = self.connect(source, destination, socket.port, socket.protocol)
                if attempt.success:
                    reachable.append(
                        ReachableEndpoint(
                            kind="pod",
                            namespace=destination.namespace,
                            name=destination.name,
                            port=socket.port,
                            protocol=socket.protocol,
                            dynamic=socket.dynamic,
                            app=destination.app,
                        )
                    )
        for binding in self.bindings:
            for service_port in binding.service.ports:
                attempt = self.connect_via_service(
                    source, binding, service_port.port, service_port.protocol
                )
                if attempt.success:
                    reachable.append(
                        ReachableEndpoint(
                            kind="service",
                            namespace=binding.service.namespace,
                            name=binding.service.name,
                            port=service_port.port,
                            protocol=service_port.protocol,
                            app=binding.service.labels.get("app.kubernetes.io/part-of", ""),
                        )
                    )
        return reachable

    def all_pairs(self) -> dict[tuple[str, str], list[ReachableEndpoint]]:
        """The reachable surface of every pod, keyed by ``(namespace, name)``.

        One class-surface computation per source equivalence class -- O(
        classes x destinations) instead of O(sources x destinations) -- with
        every member sharing its class's memoized surface through
        :meth:`endpoints_from`.
        """
        return {
            (source.namespace, source.name): self.endpoints_from(source)
            for source in self.pods
        }

    def _class_pod_endpoints(
        self, representative: RunningPod
    ) -> list[tuple[tuple[str, str], ReachableEndpoint]]:
        """Pod endpoints reachable by every member of one source class.

        Computed with non-``same_pod`` semantics (gating on the socket the
        connection would actually resolve to, exactly as the per-attempt
        path does), which is correct for every class member except the
        destination pod itself -- and that pair is excluded by the caller.
        """
        entries: list[tuple[tuple[str, str], ReachableEndpoint]] = []
        include_loopback = self.include_loopback
        for destination in self.pods:
            for socket in destination.sockets:
                if not include_loopback and not socket.reachable_from_network:
                    continue
                resolved = destination.socket_on(socket.port, socket.protocol)
                if resolved is None or resolved.interface == "127.0.0.1":
                    continue
                if self.decision(
                    representative, destination, socket.port, socket.protocol
                ).allowed:
                    entries.append(
                        (
                            (destination.namespace, destination.name),
                            ReachableEndpoint(
                                kind="pod",
                                namespace=destination.namespace,
                                name=destination.name,
                                port=socket.port,
                                protocol=socket.protocol,
                                dynamic=socket.dynamic,
                                app=destination.app,
                            ),
                        )
                    )
        return entries

    def _class_service_endpoints(
        self, representative: RunningPod
    ) -> list[tuple[frozenset[tuple[str, str]] | None, ReachableEndpoint]]:
        """Service endpoints reachable by one source class.

        Each entry carries ``None`` when every class member reaches it, or
        the set of ``(namespace, name)`` keys of the only pods that do --
        backends whose sole accepting socket is loopback-bound, reachable
        through the service only by themselves (``same_pod`` semantics).
        """
        entries: list[tuple[frozenset[tuple[str, str]] | None, ReachableEndpoint]] = []
        for binding in self.bindings:
            service = binding.service
            for service_port in binding.service.ports:
                reachable_by_all, self_only = self._class_service_success(
                    representative, binding, service_port.port, service_port.protocol
                )
                if not reachable_by_all and not self_only:
                    continue
                entries.append(
                    (
                        None if reachable_by_all else frozenset(self_only),
                        ReachableEndpoint(
                            kind="service",
                            namespace=service.namespace,
                            name=service.name,
                            port=service_port.port,
                            protocol=service_port.protocol,
                            app=service.labels.get("app.kubernetes.io/part-of", ""),
                        ),
                    )
                )
        return entries

    def _class_service_success(
        self,
        representative: RunningPod,
        binding: ServiceBinding,
        port: int,
        protocol: str,
    ) -> tuple[bool, list[tuple[str, str]]]:
        """Whether one source class reaches a service port, per member.

        Returns ``(reachable_by_all, self_only_backends)``.  Mirrors
        ``_attempt_service_connection`` exactly: the service port is looked
        up by number (the first match wins, as in the per-attempt path),
        named targets resolve per backend, and a backend accepts when its
        socket exists, is not loopback-bound, and the policy decision -- a
        function of the source *class* only -- allows the connection.  A
        loopback-bound accepting socket counts only for the backend pod
        itself, which is the single ``same_pod`` case a service hop allows.
        """
        service = binding.service
        service_port = next((p for p in service.ports if p.port == port), None)
        if service_port is None or not binding.backends:
            return False, []
        raw_target = service_port.resolved_target()
        self_only: list[tuple[str, str]] = []
        for backend in binding.backends:
            target_port = (
                raw_target
                if isinstance(raw_target, int)
                else backend.named_ports().get(str(raw_target))
            )
            if target_port is None:
                continue
            socket = backend.socket_on(target_port, protocol)
            if socket is None:
                continue
            if not self.decision(representative, backend, target_port, protocol).allowed:
                continue
            if socket.interface == "127.0.0.1":
                self_only.append((backend.namespace, backend.name))
            else:
                return True, []
        return False, self_only


@dataclass
class ClusterNetwork:
    """Connectivity engine over running pods, bindings and policies."""

    enforcer: NetworkPolicyEnforcer = field(default_factory=NetworkPolicyEnforcer)

    # Pod-to-pod ----------------------------------------------------------------
    def connect_pod_to_pod(
        self,
        policies: list[NetworkPolicy] | PolicyIndex,
        source: RunningPod,
        destination: RunningPod,
        port: int,
        protocol: str = "TCP",
    ) -> ConnectionAttempt:
        """Attempt a direct connection to a destination pod IP and port."""

        def decide(src: RunningPod, dst: RunningPod, p: int, proto: str) -> PolicyDecision:
            return self.enforcer.check_ingress(policies, src, dst, p, proto)

        return _attempt_pod_connection(decide, source, destination, port, protocol)

    # Pod-to-service ----------------------------------------------------------------
    def connect_pod_to_service(
        self,
        policies: list[NetworkPolicy] | PolicyIndex,
        source: RunningPod,
        binding: ServiceBinding,
        port: int,
        protocol: str = "TCP",
    ) -> ConnectionAttempt:
        """Attempt a connection through a service virtual IP (or headless DNS).

        The service proxy picks backends in turn; the attempt succeeds when at
        least one selected backend accepts the forwarded connection.
        """

        def connect(src: RunningPod, backend: RunningPod, p: int, proto: str) -> ConnectionAttempt:
            return self.connect_pod_to_pod(policies, src, backend, p, proto)

        return _attempt_service_connection(connect, source, binding, port, protocol)

    def service_backends_receiving(
        self,
        policies: list[NetworkPolicy] | PolicyIndex,
        source: RunningPod,
        binding: ServiceBinding,
        port: int,
        protocol: str = "TCP",
    ) -> list[RunningPod]:
        """Backends that would receive traffic sent by ``source`` to a service port.

        Used by the Thanos-style impersonation scenario: when an attacker pod
        carries the same labels as the legitimate backends, it appears in this
        list and receives a share of the traffic.
        """
        service_port = next((p for p in binding.service.ports if p.port == port), None)
        if service_port is None:
            return []
        raw_target = service_port.resolved_target()
        receiving: list[RunningPod] = []
        for backend in binding.backends:
            target_port = (
                raw_target
                if isinstance(raw_target, int)
                else backend.named_ports().get(str(raw_target))
            )
            if target_port is None:
                continue
            if self.connect_pod_to_pod(policies, source, backend, target_port, protocol).success:
                receiving.append(backend)
        return receiving

    # Cluster-wide reachability ------------------------------------------------------
    def reachability_matrix(
        self,
        policies: list[NetworkPolicy] | PolicyIndex,
        pods: list[RunningPod],
        bindings: list[ServiceBinding],
        include_loopback: bool = False,
    ) -> ReachabilityMatrix:
        """Compile ``policies`` (if needed) and build a batched matrix.

        When the enforcer has the compiled engine disabled and ``policies``
        is a raw list, the matrix is built in naive mode: same API, but every
        query takes the uncached reference path (the pre-compilation code).
        """
        if isinstance(policies, PolicyIndex):
            return ReachabilityMatrix(self, policies, pods, bindings, include_loopback)
        if not self.enforcer.use_index:
            return ReachabilityMatrix(
                self, None, pods, bindings, include_loopback, naive_policies=list(policies)
            )
        index = self.enforcer.index_for(policies)
        return ReachabilityMatrix(self, index, pods, bindings, include_loopback)

    def reachable_endpoints(
        self,
        policies: list[NetworkPolicy] | PolicyIndex,
        source: RunningPod,
        pods: list[RunningPod],
        bindings: list[ServiceBinding],
        include_loopback: bool = False,
    ) -> list[ReachableEndpoint]:
        """Every pod socket and service port reachable from ``source``.

        This is the lateral-movement surface of a compromised container: the
        paper's Figure 4b counts exactly these endpoints for misconfigured
        applications after enabling network policies.  Runs through a
        :class:`ReachabilityMatrix` unless the enforcer has the compiled
        engine disabled, in which case the original per-attempt scan is kept
        as the reference path.
        """
        if isinstance(policies, PolicyIndex) or self.enforcer.use_index:
            matrix = self.reachability_matrix(policies, pods, bindings, include_loopback)
            return matrix.endpoints_from(source)
        reachable: list[ReachableEndpoint] = []
        for destination in pods:
            if destination is source:
                continue
            for socket in destination.sockets:
                if not include_loopback and not socket.reachable_from_network:
                    continue
                attempt = self.connect_pod_to_pod(
                    policies, source, destination, socket.port, socket.protocol
                )
                if attempt.success:
                    reachable.append(
                        ReachableEndpoint(
                            kind="pod",
                            namespace=destination.namespace,
                            name=destination.name,
                            port=socket.port,
                            protocol=socket.protocol,
                            dynamic=socket.dynamic,
                            app=destination.app,
                        )
                    )
        for binding in bindings:
            for service_port in binding.service.ports:
                attempt = self.connect_pod_to_service(
                    policies, source, binding, service_port.port, service_port.protocol
                )
                if attempt.success:
                    reachable.append(
                        ReachableEndpoint(
                            kind="service",
                            namespace=binding.service.namespace,
                            name=binding.service.name,
                            port=service_port.port,
                            protocol=service_port.protocol,
                            app=binding.service.labels.get("app.kubernetes.io/part-of", ""),
                        )
                    )
        return reachable
