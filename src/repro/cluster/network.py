"""The cluster network: who can talk to whom, and through what.

This module combines the flat pod network, service virtual IPs, and
NetworkPolicy enforcement into a single connectivity engine.  It answers the
questions the runtime probe and the attack scenarios ask:

* can pod A open a TCP connection to pod B on port P?
* can pod A reach service S, and which backends would receive the traffic?
* which endpoints in the whole cluster remain reachable from a compromised
  pod (the lateral-movement surface)?

Cluster-wide questions run through :class:`ReachabilityMatrix`, the batched
engine built on the compiled policy index: it precomputes per-destination
isolating sets and named ports once, memoizes whole policy decisions by
source/destination equivalence class, and answers all-pairs reachability
without re-scanning the policy list per connection attempt.

Surfaces are computed by the *vectorized* engine by default: destination
endpoints are assigned stable integer ids in an :class:`EndpointUniverse`
(one per policy epoch), endpoints sharing a policy-decision class are packed
into int bitmasks, and a source class's reachable surface becomes a handful
of memoized decisions OR-ed over class masks instead of a per-destination
Python walk.  The per-object grouped walk stays in-tree behind
``vectorized=False`` as the differential reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..k8s import NetworkPolicy
from .cni import NetworkPolicyEnforcer, PolicyDecision
from .endpoints import ServiceBinding
from .errors import DuplicatePodError
from .policy_index import PolicyIndex
from .runtime import RunningPod, Socket

try:  # The bool-matrix materialization backend is optional.
    import numpy as _np
except Exception:  # pragma: no cover - numpy is present in the dev image
    _np = None


@dataclass(frozen=True)
class ConnectionAttempt:
    """The result of a simulated connection attempt."""

    source: str
    destination: str
    port: int
    protocol: str = "TCP"
    success: bool = False
    reason: str = ""
    via_service: str = ""
    backend_pod: str = ""

    def __bool__(self) -> bool:
        return self.success


@dataclass(frozen=True)
class ReachableEndpoint:
    """An endpoint (pod socket or service port) reachable from a source pod.

    Frozen: surfaces answered from the matrix share endpoint instances
    between every pod of a policy-equivalence class, so mutation would
    corrupt the memoized class surfaces.
    """

    kind: str  # "pod" or "service"
    namespace: str
    name: str
    port: int
    protocol: str = "TCP"
    dynamic: bool = False
    app: str = ""


def _attempt_pod_connection(
    decide,
    source: RunningPod,
    destination: RunningPod,
    port: int,
    protocol: str,
) -> ConnectionAttempt:
    """Socket/loopback gating + policy decision for one pod-to-pod attempt.

    The single implementation behind both the per-attempt path
    (``ClusterNetwork.connect_pod_to_pod``) and the cached matrix path;
    ``decide(source, destination, port, protocol)`` supplies the
    :class:`PolicyDecision` (uncached enforcer call or matrix memo).
    """
    same_pod = source.name == destination.name and source.namespace == destination.namespace
    socket = destination.socket_on(port, protocol)
    if socket is None:
        return ConnectionAttempt(
            source=source.name,
            destination=destination.name,
            port=port,
            protocol=protocol,
            success=False,
            reason="connection refused: nothing is listening on that port",
        )
    if socket.interface == "127.0.0.1" and not same_pod:
        return ConnectionAttempt(
            source=source.name,
            destination=destination.name,
            port=port,
            protocol=protocol,
            success=False,
            reason="connection refused: socket is bound to the loopback interface",
        )
    decision: PolicyDecision = decide(source, destination, port, protocol)
    return ConnectionAttempt(
        source=source.name,
        destination=destination.name,
        port=port,
        protocol=protocol,
        success=decision.allowed,
        reason=decision.reason,
    )


def _attempt_service_connection(
    connect,
    source: RunningPod,
    binding: ServiceBinding,
    port: int,
    protocol: str,
) -> ConnectionAttempt:
    """Service-port resolution + backend loop for one pod-to-service attempt.

    ``connect(source, backend, target_port, protocol)`` performs the
    underlying pod-to-pod attempt (uncached or matrix-cached); everything
    else -- port lookup, empty-endpoint handling, named-target resolution,
    backend order and reason strings -- lives here exactly once.
    """
    service = binding.service
    service_port = next((p for p in service.ports if p.port == port), None)
    if service_port is None:
        return ConnectionAttempt(
            source=source.name,
            destination=service.name,
            port=port,
            protocol=protocol,
            success=False,
            via_service=service.name,
            reason=f"service {service.name!r} does not expose port {port}",
        )
    if not binding.backends:
        return ConnectionAttempt(
            source=source.name,
            destination=service.name,
            port=port,
            protocol=protocol,
            success=False,
            via_service=service.name,
            reason="no endpoints: the service selector matches no running pod",
        )
    raw_target = service_port.resolved_target()
    last_reason = ""
    for backend in binding.backends:
        target_port = (
            raw_target
            if isinstance(raw_target, int)
            else backend.named_ports().get(str(raw_target))
        )
        if target_port is None:
            last_reason = f"named target port {raw_target!r} is not declared by pod {backend.name!r}"
            continue
        attempt = connect(source, backend, target_port, protocol)
        if attempt.success:
            return ConnectionAttempt(
                source=source.name,
                destination=service.name,
                port=port,
                protocol=protocol,
                success=True,
                via_service=service.name,
                backend_pod=backend.name,
                reason=attempt.reason,
            )
        last_reason = attempt.reason
    return ConnectionAttempt(
        source=source.name,
        destination=service.name,
        port=port,
        protocol=protocol,
        success=False,
        via_service=service.name,
        reason=last_reason or "no backend accepted the connection",
    )


#: byte value -> indices of its set bits, for the pure-python materializer.
_BYTE_BITS = tuple(
    tuple(bit for bit in range(8) if (byte >> bit) & 1) for byte in range(256)
)


def _pack_bits(bits: list[int], size: int) -> int:
    """The int bitmask with exactly ``bits`` set, out of ``size`` positions."""
    if not bits:
        return 0
    buffer = bytearray((size + 7) >> 3)
    for bit in bits:
        buffer[bit >> 3] |= 1 << (bit & 7)
    return int.from_bytes(buffer, "little")


class _DecisionClass:
    """One policy-decision equivalence class of destination endpoints.

    Every endpoint (pod socket or service backend target) whose decision
    memo-key tail -- ``(id(isolating set), named ports, port, protocol)``
    -- is identical lands in one class: a single memoized decision against
    the representative destination settles the whole pod-endpoint ``mask``
    and every service backend referencing the class, for any source class.
    """

    __slots__ = ("mask", "isolating", "representative", "port", "protocol")

    def __init__(
        self, isolating: tuple, representative: RunningPod, port: int, protocol: str
    ) -> None:
        self.mask = 0
        self.isolating = isolating
        self.representative = representative
        self.port = port
        self.protocol = protocol


class _ServicePlan:
    """One service port with its backend resolution precomputed.

    ``backends`` holds ``(decision token or None, is_loopback, ident)`` for
    every backend whose named target resolves and whose socket exists --
    the class-independent half of ``_class_service_success``, done once per
    universe instead of once per source class.  A ``None`` token marks an
    unisolated backend (its decision is a source-free allow); any other
    token keys the universe's ``decision_classes``.
    """

    __slots__ = ("endpoint", "backends")

    def __init__(self, endpoint: ReachableEndpoint, backends: tuple) -> None:
        self.endpoint = endpoint
        self.backends = backends


class EndpointUniverse:
    """Stable integer ids for every destination endpoint of one snapshot.

    Built once per policy epoch (the cluster facade caches it keyed on
    ``(policy_epoch, include_loopback)``) and shared by every matrix over
    that snapshot.  Ids follow the grouped reference walk exactly -- pods in
    list order, sockets in pod order, with the same loopback/resolution
    gating -- so a surface materialized from a bitmask is byte-identical,
    entry for entry and in the same order, to the per-object walk.
    """

    __slots__ = ("size", "pod_entries", "free_mask", "full_mask", "decision_classes", "service_plans")

    def __init__(
        self,
        index: PolicyIndex,
        pods: list[RunningPod],
        bindings: list[ServiceBinding],
        include_loopback: bool = False,
    ) -> None:
        pod_entries: list[tuple[tuple[str, str], ReachableEndpoint]] = []
        #: Bit *indices* per class, packed into int masks only once the walk
        #: is done: appending an index is O(1) where ``mask |= 1 << n`` would
        #: re-copy a size-n bigint per endpoint.
        free_bits: list[int] = []
        class_bits: dict[tuple, list[int]] = {}
        classes: dict[tuple, _DecisionClass] = {}
        #: destination -> (isolating, named_key, ports_matter), shared with
        #: the service plan pass below so backends reuse the pod walk's
        #: lookups.
        dest_info: dict[tuple[str, str], tuple[tuple, tuple, bool]] = {}
        for destination in pods:
            isolating = index.isolating(destination)
            # Same gating as ``ReachabilityMatrix._destination_info``: the
            # named-port key participates in class identity only when some
            # isolating policy names a port, and the port itself only when
            # some rule lists ports, so the two layers build identical memo
            # keys and share decision entries.
            ports_matter = bool(isolating) and index.constrains_ports(isolating)
            if ports_matter and index.uses_named_ports(isolating):
                named_key = tuple(sorted(destination.named_ports().items()))
            else:
                named_key = ()
            dest_ident = destination.ident
            dest_info[dest_ident] = (isolating, named_key, ports_matter)
            # First socket per (port, protocol) wins, as in ``socket_on``:
            # a later duplicate is shadowed by the earlier one's interface.
            first_on: dict[tuple[int, str], Socket] = {}
            for socket in destination.sockets:
                resolved = first_on.setdefault((socket.port, socket.protocol), socket)
                if not include_loopback and not socket.reachable_from_network:
                    continue
                if resolved.interface == "127.0.0.1":
                    continue
                bit = len(pod_entries)
                pod_entries.append(
                    (
                        dest_ident,
                        ReachableEndpoint(
                            kind="pod",
                            namespace=dest_ident[0],
                            name=dest_ident[1],
                            port=socket.port,
                            protocol=socket.protocol,
                            dynamic=socket.dynamic,
                            app=destination.app,
                        ),
                    )
                )
                if not isolating:
                    # Decisions for unisolated destinations are source-free
                    # allows; their endpoints join every class surface.
                    free_bits.append(bit)
                    continue
                if ports_matter:
                    key = (id(isolating), named_key, socket.port, socket.protocol)
                else:
                    key = (id(isolating), named_key, None, None)
                bits = class_bits.get(key)
                if bits is None:
                    classes[key] = _DecisionClass(
                        isolating, destination, socket.port, socket.protocol
                    )
                    class_bits[key] = [bit]
                else:
                    bits.append(bit)
        size = len(pod_entries)
        self.size = size
        self.pod_entries = pod_entries
        self.free_mask = _pack_bits(free_bits, size)
        self.full_mask = (1 << size) - 1
        for key, bits in class_bits.items():
            classes[key].mask = _pack_bits(bits, size)
        self.service_plans = tuple(
            self._service_plan(index, binding, service_port, classes, dest_info)
            for binding in bindings
            for service_port in binding.service.ports
        )
        self.decision_classes = classes

    @staticmethod
    def _service_plan(
        index: PolicyIndex,
        binding: ServiceBinding,
        service_port,
        classes: dict[tuple, _DecisionClass],
        dest_info: dict[tuple[str, str], tuple[tuple, tuple]],
    ) -> _ServicePlan:
        service = binding.service
        endpoint = ReachableEndpoint(
            kind="service",
            namespace=service.namespace,
            name=service.name,
            port=service_port.port,
            protocol=service_port.protocol,
            app=service.labels.get("app.kubernetes.io/part-of", ""),
        )
        # Port lookup is by number, first match winning, exactly as the
        # per-attempt path resolves it (duplicate port numbers included).
        effective = next((p for p in service.ports if p.port == service_port.port), None)
        if effective is None or not binding.backends:
            return _ServicePlan(endpoint, ())
        raw_target = effective.resolved_target()
        protocol = service_port.protocol
        backends = []
        for backend in binding.backends:
            target_port = (
                raw_target
                if isinstance(raw_target, int)
                else backend.named_ports().get(str(raw_target))
            )
            if target_port is None:
                continue
            socket = backend.socket_on(target_port, protocol)
            if socket is None:
                continue
            info = dest_info.get(backend.ident)
            if info is None:
                isolating = index.isolating(backend)
                ports_matter = bool(isolating) and index.constrains_ports(isolating)
                if ports_matter and index.uses_named_ports(isolating):
                    named = tuple(sorted(backend.named_ports().items()))
                else:
                    named = ()
                info = (isolating, named, ports_matter)
                dest_info[backend.ident] = info
            isolating, named_key, ports_matter = info
            if not isolating:
                token = None
            else:
                if ports_matter:
                    token = (id(isolating), named_key, target_port, protocol)
                else:
                    token = (id(isolating), named_key, None, None)
                if token not in classes:
                    # Service-only class: no pod-endpoint bits, but its
                    # verdict is still needed once per source class.
                    classes[token] = _DecisionClass(
                        isolating, backend, target_port, protocol
                    )
            backends.append(
                (token, socket.interface == "127.0.0.1", backend.ident)
            )
        return _ServicePlan(endpoint, tuple(backends))

    def materialize(self, mask: int) -> list:
        """The ``(ident, endpoint)`` entries of ``mask``, in id order."""
        entries = self.pod_entries
        if mask == self.full_mask:
            return entries[:]
        if not mask:
            return []
        data = mask.to_bytes((self.size + 7) >> 3, "little")
        if _np is not None:
            bits = _np.unpackbits(
                _np.frombuffer(data, dtype=_np.uint8), bitorder="little"
            )
            return [entries[i] for i in _np.flatnonzero(bits).tolist()]
        out = []
        base = 0
        for byte in data:
            if byte:
                for offset in _BYTE_BITS[byte]:
                    out.append(entries[base + offset])
            base += 8
        return out


class ReachabilityMatrix:
    """Batched connectivity over a fixed snapshot of pods, bindings, policies.

    Build one per cluster state (the cluster facade does this for you via
    ``Cluster.reachability_matrix()``) and ask it for any number of
    connection attempts or per-source endpoint surfaces.  Internally it
    shares, across every query:

    * the compiled :class:`PolicyIndex` (isolating sets memoized per label
      set -- replicas resolve in O(1));
    * per-destination named-port keys;
    * whole :class:`PolicyDecision` objects memoized by the equivalence
      class of the attempt -- ``(source namespace+labels, destination
      isolating set, destination named ports, port, protocol)`` -- so a
      thousand pods probing the same destination port cost one evaluation.

    Results are bit-identical to the per-attempt path: decisions come from
    ``NetworkPolicyEnforcer.check_ingress`` on cache miss, and the
    socket/loopback gating mirrors ``connect_pod_to_pod`` exactly.
    """

    def __init__(
        self,
        network: "ClusterNetwork",
        index: PolicyIndex | None,
        pods: list[RunningPod],
        bindings: list[ServiceBinding],
        include_loopback: bool = False,
        naive_policies: list[NetworkPolicy] | None = None,
        vectorized: bool = True,
        universe_cache: dict | None = None,
    ) -> None:
        self._network = network
        self._enforcer = network.enforcer
        self.index = index
        self.pods = list(pods)
        self.bindings = list(bindings)
        self.include_loopback = include_loopback
        #: ``False`` pins class surfaces to the per-object grouped walk --
        #: the reference implementation the vectorized engine is proven
        #: byte-identical against.
        self.vectorized = vectorized
        #: The compiled endpoint universe, built lazily on the first surface
        #: query (connection-attempt-only users never pay for it), optionally
        #: shared across matrices through ``universe_cache`` (the cluster
        #: facade passes its epoch-keyed cache).
        self._universe: EndpointUniverse | None = None
        self._universe_cache = universe_cache
        #: When set (and ``index`` is ``None``) the matrix runs in naive mode:
        #: every query delegates to the uncached per-attempt path with this
        #: policy list.  This is the pre-compilation reference used by the
        #: differential tests and the before/after benchmarks.
        self._naive_policies = naive_policies
        #: (namespace, name) -> (isolating, named-port key, hostNetwork,
        #: ports-matter flag)
        self._dest_info: dict[tuple[str, str], tuple[tuple, tuple, bool, bool]] = {}
        #: Adaptive tier: the first couple of decisions are answered with the
        #: naive-cost direct scan; the memoized machinery (isolating cache,
        #: destination info, decision memo) is engaged only once the attempt
        #: stream is long enough for it to pay.  Single-attempt probes -- the
        #: dominant shape of a per-chart sweep -- therefore cost exactly what
        #: the reference path costs.
        self._naive_tier_left = 2
        #: (namespace, name) -> hashable source equivalence key
        self._source_keys: dict[tuple[str, str], tuple] = {}
        #: decision memo, keyed by attempt equivalence class
        self._decisions: dict[tuple, PolicyDecision] = {}
        #: source class key -> (pod entries, service entries); the whole
        #: reachable surface of an equivalence class, computed once and
        #: filtered per member (see :meth:`endpoints_from`).
        self._class_surfaces: dict[tuple, tuple[list, list]] = {}

    # Equivalence keys --------------------------------------------------------
    def _destination_info(self, destination: RunningPod) -> tuple[tuple, tuple, bool, bool]:
        info = self._dest_info.get(destination.ident)
        if info is None:
            isolating = self.index.isolating(destination)
            # Named ports can only influence a decision when some isolating
            # policy names one; otherwise every named-port table lands in the
            # same decision class, so skip building the key (and let pods
            # with different named ports share memo entries).  When no rule
            # lists ports at all the decision is port-independent too, so
            # every probed port of the destination shares one memo entry.
            ports_matter = bool(isolating) and self.index.constrains_ports(isolating)
            if ports_matter and self.index.uses_named_ports(isolating):
                named_key = tuple(sorted(destination.named_ports().items()))
            else:
                named_key = ()
            info = (isolating, named_key, destination.host_network, ports_matter)
            self._dest_info[destination.ident] = info
        return info

    def _source_key(self, source: RunningPod) -> tuple:
        key = source.ident
        cached = self._source_keys.get(key)
        if cached is None:
            cached = (key[0], source.label_items())
            self._source_keys[key] = cached
        return cached

    # Decisions ---------------------------------------------------------------
    def decision(
        self,
        source: RunningPod,
        destination: RunningPod,
        port: int,
        protocol: str = "TCP",
    ) -> PolicyDecision:
        """The (memoized) policy decision for one connection attempt."""
        if self.index is None:
            return self._enforcer.check_ingress(
                self._naive_policies or [], source, destination, port, protocol
            )
        if self._naive_tier_left and not self._decisions:
            # Matches the naive ``policies_isolating`` scan exactly (host
            # network escapes enforcement, original list order preserved),
            # so tiered decisions are value-identical to memoized ones.
            self._naive_tier_left -= 1
            if destination.host_network:
                isolating = ()
            else:
                labels = destination.labels
                namespace = destination.namespace
                isolating = tuple(
                    policy
                    for policy in self.index.policies
                    if policy.restricts_ingress()
                    and policy.selects(labels, namespace)
                )
            return self._enforcer.decide_ingress(
                isolating, source, destination, port, protocol
            )
        isolating, named_key, host_network, ports_matter = self._destination_info(destination)
        if not isolating:
            # Unisolated destinations resolve to the enforcer's shared
            # default-allow decisions; ``decide_ingress`` short-circuits to a
            # singleton, so routing through the memo would only add a dict
            # entry per attempt class.
            return self._enforcer.decide_ingress(
                isolating, source, destination, port, protocol
            )
        if ports_matter:
            memo_key = (self._source_key(source), id(isolating), named_key, port, protocol)
        else:
            memo_key = (self._source_key(source), id(isolating), named_key, None, None)
        decision = self._decisions.get(memo_key)
        if decision is None:
            decision = self._enforcer.decide_ingress(
                isolating, source, destination, port, protocol
            )
            self._decisions[memo_key] = decision
        return decision

    # Connection attempts -----------------------------------------------------
    def connect(
        self,
        source: RunningPod,
        destination: RunningPod,
        port: int,
        protocol: str = "TCP",
    ) -> ConnectionAttempt:
        """Cached equivalent of ``ClusterNetwork.connect_pod_to_pod``."""
        if self.index is None:
            return self._network.connect_pod_to_pod(
                self._naive_policies or [], source, destination, port, protocol
            )
        return _attempt_pod_connection(self.decision, source, destination, port, protocol)

    def connect_via_service(
        self,
        source: RunningPod,
        binding: ServiceBinding,
        port: int,
        protocol: str = "TCP",
    ) -> ConnectionAttempt:
        """Cached equivalent of ``ClusterNetwork.connect_pod_to_service``."""
        if self.index is None:
            return self._network.connect_pod_to_service(
                self._naive_policies or [], source, binding, port, protocol
            )
        return _attempt_service_connection(self.connect, source, binding, port, protocol)

    # Surfaces ----------------------------------------------------------------
    def endpoints_from(self, source: RunningPod) -> list[ReachableEndpoint]:
        """Every pod socket and service port reachable from ``source``.

        Answered from the source's *class surface*: the full reachable
        surface of the source's policy-equivalence class -- the
        ``(namespace, labels)`` key every decision is memoized under --
        computed once per class against every destination and service, then
        filtered per member with two exact corrections:

        * the member's own sockets are excluded (a pod is not part of its
          own lateral-movement surface);
        * a service whose only accepting backend path is loopback-bound is
          reachable solely by that backend pod itself (``same_pod``
          semantics), so such endpoints are attached per-member.

        Results are identical, entry for entry and in the same order, to the
        per-attempt reference scan; endpoint objects are shared between
        members of a class, so treat them as read-only.
        """
        if self.index is None:
            return self._endpoints_from_uncached(source)
        class_key = self._source_key(source)
        surface = self._class_surfaces.get(class_key)
        if surface is None:
            if self.vectorized:
                surface = self._class_surface_vectorized(source)
            else:
                surface = (
                    self._class_pod_endpoints(source),
                    self._class_service_endpoints(source),
                )
            self._class_surfaces[class_key] = surface
        pod_entries, service_entries = surface
        source_key = source.ident
        reachable = [
            endpoint
            for destination_key, endpoint in pod_entries
            if destination_key != source_key
        ]
        reachable.extend(
            endpoint
            for only_members, endpoint in service_entries
            if only_members is None or source_key in only_members
        )
        return reachable

    def _endpoints_from_uncached(self, source: RunningPod) -> list[ReachableEndpoint]:
        """The per-attempt reference scan (naive mode keeps this path)."""
        reachable: list[ReachableEndpoint] = []
        for destination in self.pods:
            if destination is source:
                continue
            for socket in destination.sockets:
                if not self.include_loopback and not socket.reachable_from_network:
                    continue
                attempt = self.connect(source, destination, socket.port, socket.protocol)
                if attempt.success:
                    reachable.append(
                        ReachableEndpoint(
                            kind="pod",
                            namespace=destination.namespace,
                            name=destination.name,
                            port=socket.port,
                            protocol=socket.protocol,
                            dynamic=socket.dynamic,
                            app=destination.app,
                        )
                    )
        for binding in self.bindings:
            for service_port in binding.service.ports:
                attempt = self.connect_via_service(
                    source, binding, service_port.port, service_port.protocol
                )
                if attempt.success:
                    reachable.append(
                        ReachableEndpoint(
                            kind="service",
                            namespace=binding.service.namespace,
                            name=binding.service.name,
                            port=service_port.port,
                            protocol=service_port.protocol,
                            app=binding.service.labels.get("app.kubernetes.io/part-of", ""),
                        )
                    )
        return reachable

    def all_pairs(self) -> dict[tuple[str, str], list[ReachableEndpoint]]:
        """The reachable surface of every pod, keyed by ``(namespace, name)``.

        One class-surface computation per source equivalence class -- O(
        classes x destinations) instead of O(sources x destinations) -- with
        every member sharing its class's memoized surface through
        :meth:`endpoints_from`.

        Raises :class:`DuplicatePodError` when two pods of the snapshot
        share one ``(namespace, name)`` identity: the result is keyed on it,
        so a duplicate would silently overwrite the first pod's surface.
        """
        if len({pod.ident for pod in self.pods}) != len(self.pods):
            seen: set[tuple[str, str]] = set()
            for pod in self.pods:
                if pod.ident in seen:
                    raise DuplicatePodError(pod.name, pod.namespace)
                seen.add(pod.ident)
        return {source.ident: self.endpoints_from(source) for source in self.pods}

    # Vectorized class surfaces ----------------------------------------------
    def endpoint_universe(self) -> EndpointUniverse:
        """The compiled endpoint universe of this snapshot (built lazily).

        Shared across matrices of the same policy epoch when the cluster
        facade supplied its universe cache; safe because the epoch moves on
        every mutation that could change pods, sockets or policies.
        """
        universe = self._universe
        if universe is None:
            cache = self._universe_cache
            key = None
            if cache is not None:
                key = (self.index.epoch, self.include_loopback)
                universe = cache.get(key)
            if universe is None:
                universe = EndpointUniverse(
                    self.index, self.pods, self.bindings, self.include_loopback
                )
                if cache is not None:
                    cache[key] = universe
            self._universe = universe
        return universe

    def _class_surface_vectorized(self, source: RunningPod) -> tuple[list, list]:
        """One source class's whole surface, as bitmask set algebra.

        Runs every decision class exactly once -- through the same decision
        memo the per-attempt path uses, so ``connect`` and surfaces share
        results -- then ORs the allowed classes' masks over the source-free
        allow mask and materializes the surviving bits in id order (the
        grouped walk's order).  Service plans replay the reference backend
        loop against the verdict table: same first-network-accept
        short-circuit, same loopback ``same_pod`` collection, no per-class
        re-resolution.
        """
        universe = self.endpoint_universe()
        memo = self._decisions
        decide = self._enforcer.decide_ingress
        source_key = self._source_key(source)
        verdicts: dict[tuple, bool] = {}
        allowed = universe.free_mask
        for token, decision_class in universe.decision_classes.items():
            memo_key = (source_key, *token)
            decision = memo.get(memo_key)
            if decision is None:
                decision = decide(
                    decision_class.isolating,
                    source,
                    decision_class.representative,
                    decision_class.port,
                    decision_class.protocol,
                )
                memo[memo_key] = decision
            if decision.allowed:
                verdicts[token] = True
                allowed |= decision_class.mask
            else:
                verdicts[token] = False
        pod_entries = universe.materialize(allowed)
        service_entries: list[tuple[frozenset[tuple[str, str]] | None, ReachableEndpoint]] = []
        for plan in universe.service_plans:
            reachable_by_all = False
            self_only: list[tuple[str, str]] = []
            for token, is_loopback, ident in plan.backends:
                if token is not None and not verdicts[token]:
                    continue
                if is_loopback:
                    self_only.append(ident)
                else:
                    reachable_by_all = True
                    break
            if reachable_by_all:
                service_entries.append((None, plan.endpoint))
            elif self_only:
                service_entries.append((frozenset(self_only), plan.endpoint))
        return pod_entries, service_entries

    def _class_pod_endpoints(
        self, representative: RunningPod
    ) -> list[tuple[tuple[str, str], ReachableEndpoint]]:
        """Pod endpoints reachable by every member of one source class.

        Computed with non-``same_pod`` semantics (gating on the socket the
        connection would actually resolve to, exactly as the per-attempt
        path does), which is correct for every class member except the
        destination pod itself -- and that pair is excluded by the caller.
        """
        entries: list[tuple[tuple[str, str], ReachableEndpoint]] = []
        include_loopback = self.include_loopback
        for destination in self.pods:
            for socket in destination.sockets:
                if not include_loopback and not socket.reachable_from_network:
                    continue
                resolved = destination.socket_on(socket.port, socket.protocol)
                if resolved is None or resolved.interface == "127.0.0.1":
                    continue
                if self.decision(
                    representative, destination, socket.port, socket.protocol
                ).allowed:
                    entries.append(
                        (
                            (destination.namespace, destination.name),
                            ReachableEndpoint(
                                kind="pod",
                                namespace=destination.namespace,
                                name=destination.name,
                                port=socket.port,
                                protocol=socket.protocol,
                                dynamic=socket.dynamic,
                                app=destination.app,
                            ),
                        )
                    )
        return entries

    def _class_service_endpoints(
        self, representative: RunningPod
    ) -> list[tuple[frozenset[tuple[str, str]] | None, ReachableEndpoint]]:
        """Service endpoints reachable by one source class.

        Each entry carries ``None`` when every class member reaches it, or
        the set of ``(namespace, name)`` keys of the only pods that do --
        backends whose sole accepting socket is loopback-bound, reachable
        through the service only by themselves (``same_pod`` semantics).
        """
        entries: list[tuple[frozenset[tuple[str, str]] | None, ReachableEndpoint]] = []
        for binding in self.bindings:
            service = binding.service
            for service_port in binding.service.ports:
                reachable_by_all, self_only = self._class_service_success(
                    representative, binding, service_port.port, service_port.protocol
                )
                if not reachable_by_all and not self_only:
                    continue
                entries.append(
                    (
                        None if reachable_by_all else frozenset(self_only),
                        ReachableEndpoint(
                            kind="service",
                            namespace=service.namespace,
                            name=service.name,
                            port=service_port.port,
                            protocol=service_port.protocol,
                            app=service.labels.get("app.kubernetes.io/part-of", ""),
                        ),
                    )
                )
        return entries

    def _class_service_success(
        self,
        representative: RunningPod,
        binding: ServiceBinding,
        port: int,
        protocol: str,
    ) -> tuple[bool, list[tuple[str, str]]]:
        """Whether one source class reaches a service port, per member.

        Returns ``(reachable_by_all, self_only_backends)``.  Mirrors
        ``_attempt_service_connection`` exactly: the service port is looked
        up by number (the first match wins, as in the per-attempt path),
        named targets resolve per backend, and a backend accepts when its
        socket exists, is not loopback-bound, and the policy decision -- a
        function of the source *class* only -- allows the connection.  A
        loopback-bound accepting socket counts only for the backend pod
        itself, which is the single ``same_pod`` case a service hop allows.
        """
        service = binding.service
        service_port = next((p for p in service.ports if p.port == port), None)
        if service_port is None or not binding.backends:
            return False, []
        raw_target = service_port.resolved_target()
        self_only: list[tuple[str, str]] = []
        for backend in binding.backends:
            target_port = (
                raw_target
                if isinstance(raw_target, int)
                else backend.named_ports().get(str(raw_target))
            )
            if target_port is None:
                continue
            socket = backend.socket_on(target_port, protocol)
            if socket is None:
                continue
            if not self.decision(representative, backend, target_port, protocol).allowed:
                continue
            if socket.interface == "127.0.0.1":
                self_only.append((backend.namespace, backend.name))
            else:
                return True, []
        return False, self_only


@dataclass
class ClusterNetwork:
    """Connectivity engine over running pods, bindings and policies."""

    enforcer: NetworkPolicyEnforcer = field(default_factory=NetworkPolicyEnforcer)

    # Pod-to-pod ----------------------------------------------------------------
    def connect_pod_to_pod(
        self,
        policies: list[NetworkPolicy] | PolicyIndex,
        source: RunningPod,
        destination: RunningPod,
        port: int,
        protocol: str = "TCP",
    ) -> ConnectionAttempt:
        """Attempt a direct connection to a destination pod IP and port."""

        def decide(src: RunningPod, dst: RunningPod, p: int, proto: str) -> PolicyDecision:
            return self.enforcer.check_ingress(policies, src, dst, p, proto)

        return _attempt_pod_connection(decide, source, destination, port, protocol)

    # Pod-to-service ----------------------------------------------------------------
    def connect_pod_to_service(
        self,
        policies: list[NetworkPolicy] | PolicyIndex,
        source: RunningPod,
        binding: ServiceBinding,
        port: int,
        protocol: str = "TCP",
    ) -> ConnectionAttempt:
        """Attempt a connection through a service virtual IP (or headless DNS).

        The service proxy picks backends in turn; the attempt succeeds when at
        least one selected backend accepts the forwarded connection.
        """

        def connect(src: RunningPod, backend: RunningPod, p: int, proto: str) -> ConnectionAttempt:
            return self.connect_pod_to_pod(policies, src, backend, p, proto)

        return _attempt_service_connection(connect, source, binding, port, protocol)

    def service_backends_receiving(
        self,
        policies: list[NetworkPolicy] | PolicyIndex,
        source: RunningPod,
        binding: ServiceBinding,
        port: int,
        protocol: str = "TCP",
    ) -> list[RunningPod]:
        """Backends that would receive traffic sent by ``source`` to a service port.

        Used by the Thanos-style impersonation scenario: when an attacker pod
        carries the same labels as the legitimate backends, it appears in this
        list and receives a share of the traffic.
        """
        service_port = next((p for p in binding.service.ports if p.port == port), None)
        if service_port is None:
            return []
        raw_target = service_port.resolved_target()
        receiving: list[RunningPod] = []
        for backend in binding.backends:
            target_port = (
                raw_target
                if isinstance(raw_target, int)
                else backend.named_ports().get(str(raw_target))
            )
            if target_port is None:
                continue
            if self.connect_pod_to_pod(policies, source, backend, target_port, protocol).success:
                receiving.append(backend)
        return receiving

    # Cluster-wide reachability ------------------------------------------------------
    def reachability_matrix(
        self,
        policies: list[NetworkPolicy] | PolicyIndex,
        pods: list[RunningPod],
        bindings: list[ServiceBinding],
        include_loopback: bool = False,
        vectorized: bool = True,
        universe_cache: dict | None = None,
    ) -> ReachabilityMatrix:
        """Compile ``policies`` (if needed) and build a batched matrix.

        When the enforcer has the compiled engine disabled and ``policies``
        is a raw list, the matrix is built in naive mode: same API, but every
        query takes the uncached reference path (the pre-compilation code).
        ``vectorized=False`` pins class surfaces to the per-object grouped
        reference walk.
        """
        if isinstance(policies, PolicyIndex):
            return ReachabilityMatrix(
                self,
                policies,
                pods,
                bindings,
                include_loopback,
                vectorized=vectorized,
                universe_cache=universe_cache,
            )
        if not self.enforcer.use_index:
            return ReachabilityMatrix(
                self, None, pods, bindings, include_loopback, naive_policies=list(policies)
            )
        index = self.enforcer.index_for(policies)
        return ReachabilityMatrix(
            self,
            index,
            pods,
            bindings,
            include_loopback,
            vectorized=vectorized,
            universe_cache=universe_cache,
        )

    def reachable_endpoints(
        self,
        policies: list[NetworkPolicy] | PolicyIndex,
        source: RunningPod,
        pods: list[RunningPod],
        bindings: list[ServiceBinding],
        include_loopback: bool = False,
    ) -> list[ReachableEndpoint]:
        """Every pod socket and service port reachable from ``source``.

        This is the lateral-movement surface of a compromised container: the
        paper's Figure 4b counts exactly these endpoints for misconfigured
        applications after enabling network policies.  Runs through a
        :class:`ReachabilityMatrix` unless the enforcer has the compiled
        engine disabled, in which case the original per-attempt scan is kept
        as the reference path.
        """
        if isinstance(policies, PolicyIndex) or self.enforcer.use_index:
            matrix = self.reachability_matrix(policies, pods, bindings, include_loopback)
            return matrix.endpoints_from(source)
        reachable: list[ReachableEndpoint] = []
        for destination in pods:
            if destination is source:
                continue
            for socket in destination.sockets:
                if not include_loopback and not socket.reachable_from_network:
                    continue
                attempt = self.connect_pod_to_pod(
                    policies, source, destination, socket.port, socket.protocol
                )
                if attempt.success:
                    reachable.append(
                        ReachableEndpoint(
                            kind="pod",
                            namespace=destination.namespace,
                            name=destination.name,
                            port=socket.port,
                            protocol=socket.protocol,
                            dynamic=socket.dynamic,
                            app=destination.app,
                        )
                    )
        for binding in bindings:
            for service_port in binding.service.ports:
                attempt = self.connect_pod_to_service(
                    policies, source, binding, service_port.port, service_port.protocol
                )
                if attempt.success:
                    reachable.append(
                        ReachableEndpoint(
                            kind="service",
                            namespace=binding.service.namespace,
                            name=binding.service.name,
                            port=service_port.port,
                            protocol=service_port.protocol,
                            app=binding.service.labels.get("app.kubernetes.io/part-of", ""),
                        )
                    )
        return reachable
