"""The cluster network: who can talk to whom, and through what.

This module combines the flat pod network, service virtual IPs, and
NetworkPolicy enforcement into a single connectivity engine.  It answers the
questions the runtime probe and the attack scenarios ask:

* can pod A open a TCP connection to pod B on port P?
* can pod A reach service S, and which backends would receive the traffic?
* which endpoints in the whole cluster remain reachable from a compromised
  pod (the lateral-movement surface)?
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..k8s import NetworkPolicy
from .cni import NetworkPolicyEnforcer, PolicyDecision
from .endpoints import ServiceBinding
from .runtime import RunningPod


@dataclass(frozen=True)
class ConnectionAttempt:
    """The result of a simulated connection attempt."""

    source: str
    destination: str
    port: int
    protocol: str = "TCP"
    success: bool = False
    reason: str = ""
    via_service: str = ""
    backend_pod: str = ""

    def __bool__(self) -> bool:
        return self.success


@dataclass
class ReachableEndpoint:
    """An endpoint (pod socket or service port) reachable from a source pod."""

    kind: str  # "pod" or "service"
    namespace: str
    name: str
    port: int
    protocol: str = "TCP"
    dynamic: bool = False
    app: str = ""


@dataclass
class ClusterNetwork:
    """Connectivity engine over running pods, bindings and policies."""

    enforcer: NetworkPolicyEnforcer = field(default_factory=NetworkPolicyEnforcer)

    # Pod-to-pod ----------------------------------------------------------------
    def connect_pod_to_pod(
        self,
        policies: list[NetworkPolicy],
        source: RunningPod,
        destination: RunningPod,
        port: int,
        protocol: str = "TCP",
    ) -> ConnectionAttempt:
        """Attempt a direct connection to a destination pod IP and port."""
        same_pod = source.name == destination.name and source.namespace == destination.namespace
        socket = destination.socket_on(port, protocol)
        if socket is None:
            return ConnectionAttempt(
                source=source.name,
                destination=destination.name,
                port=port,
                protocol=protocol,
                success=False,
                reason="connection refused: nothing is listening on that port",
            )
        if socket.interface == "127.0.0.1" and not same_pod:
            return ConnectionAttempt(
                source=source.name,
                destination=destination.name,
                port=port,
                protocol=protocol,
                success=False,
                reason="connection refused: socket is bound to the loopback interface",
            )
        decision: PolicyDecision = self.enforcer.check_ingress(
            policies, source, destination, port, protocol
        )
        return ConnectionAttempt(
            source=source.name,
            destination=destination.name,
            port=port,
            protocol=protocol,
            success=decision.allowed,
            reason=decision.reason,
        )

    # Pod-to-service ----------------------------------------------------------------
    def connect_pod_to_service(
        self,
        policies: list[NetworkPolicy],
        source: RunningPod,
        binding: ServiceBinding,
        port: int,
        protocol: str = "TCP",
    ) -> ConnectionAttempt:
        """Attempt a connection through a service virtual IP (or headless DNS).

        The service proxy picks backends in turn; the attempt succeeds when at
        least one selected backend accepts the forwarded connection.
        """
        service = binding.service
        service_port = next((p for p in service.ports if p.port == port), None)
        if service_port is None:
            return ConnectionAttempt(
                source=source.name,
                destination=service.name,
                port=port,
                protocol=protocol,
                success=False,
                via_service=service.name,
                reason=f"service {service.name!r} does not expose port {port}",
            )
        if not binding.backends:
            return ConnectionAttempt(
                source=source.name,
                destination=service.name,
                port=port,
                protocol=protocol,
                success=False,
                via_service=service.name,
                reason="no endpoints: the service selector matches no running pod",
            )
        raw_target = service_port.resolved_target()
        last_reason = ""
        for backend in binding.backends:
            target_port = (
                raw_target
                if isinstance(raw_target, int)
                else backend.named_ports().get(str(raw_target))
            )
            if target_port is None:
                last_reason = f"named target port {raw_target!r} is not declared by pod {backend.name!r}"
                continue
            attempt = self.connect_pod_to_pod(policies, source, backend, target_port, protocol)
            if attempt.success:
                return ConnectionAttempt(
                    source=source.name,
                    destination=service.name,
                    port=port,
                    protocol=protocol,
                    success=True,
                    via_service=service.name,
                    backend_pod=backend.name,
                    reason=attempt.reason,
                )
            last_reason = attempt.reason
        return ConnectionAttempt(
            source=source.name,
            destination=service.name,
            port=port,
            protocol=protocol,
            success=False,
            via_service=service.name,
            reason=last_reason or "no backend accepted the connection",
        )

    def service_backends_receiving(
        self,
        policies: list[NetworkPolicy],
        source: RunningPod,
        binding: ServiceBinding,
        port: int,
        protocol: str = "TCP",
    ) -> list[RunningPod]:
        """Backends that would receive traffic sent by ``source`` to a service port.

        Used by the Thanos-style impersonation scenario: when an attacker pod
        carries the same labels as the legitimate backends, it appears in this
        list and receives a share of the traffic.
        """
        service_port = next((p for p in binding.service.ports if p.port == port), None)
        if service_port is None:
            return []
        raw_target = service_port.resolved_target()
        receiving: list[RunningPod] = []
        for backend in binding.backends:
            target_port = (
                raw_target
                if isinstance(raw_target, int)
                else backend.named_ports().get(str(raw_target))
            )
            if target_port is None:
                continue
            if self.connect_pod_to_pod(policies, source, backend, target_port, protocol).success:
                receiving.append(backend)
        return receiving

    # Cluster-wide reachability ------------------------------------------------------
    def reachable_endpoints(
        self,
        policies: list[NetworkPolicy],
        source: RunningPod,
        pods: list[RunningPod],
        bindings: list[ServiceBinding],
        include_loopback: bool = False,
    ) -> list[ReachableEndpoint]:
        """Every pod socket and service port reachable from ``source``.

        This is the lateral-movement surface of a compromised container: the
        paper's Figure 4b counts exactly these endpoints for misconfigured
        applications after enabling network policies.
        """
        reachable: list[ReachableEndpoint] = []
        for destination in pods:
            if destination is source:
                continue
            for socket in destination.sockets:
                if not include_loopback and not socket.reachable_from_network:
                    continue
                attempt = self.connect_pod_to_pod(
                    policies, source, destination, socket.port, socket.protocol
                )
                if attempt.success:
                    reachable.append(
                        ReachableEndpoint(
                            kind="pod",
                            namespace=destination.namespace,
                            name=destination.name,
                            port=socket.port,
                            protocol=socket.protocol,
                            dynamic=socket.dynamic,
                            app=destination.app,
                        )
                    )
        for binding in bindings:
            for service_port in binding.service.ports:
                attempt = self.connect_pod_to_service(
                    policies, source, binding, service_port.port, service_port.protocol
                )
                if attempt.success:
                    reachable.append(
                        ReachableEndpoint(
                            kind="service",
                            namespace=binding.service.namespace,
                            name=binding.service.name,
                            port=service_port.port,
                            protocol=service_port.protocol,
                            app=binding.service.labels.get("app.kubernetes.io/part-of", ""),
                        )
                    )
        return reachable
