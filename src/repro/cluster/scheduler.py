"""Pod scheduling onto nodes.

The simulator only needs placement to be deterministic and capacity-aware;
it implements a simple least-loaded strategy with optional nodeName pinning,
which is sufficient to reproduce the paper's experiments (placement does not
affect reachability in a flat pod network).
"""

from __future__ import annotations

from ..k8s import Pod
from .errors import SchedulingError
from .node import Node


class Scheduler:
    """Places pods on schedulable nodes."""

    def __init__(self, nodes: list[Node]) -> None:
        self._nodes = nodes

    @property
    def nodes(self) -> list[Node]:
        return list(self._nodes)

    def schedulable_nodes(self) -> list[Node]:
        return [node for node in self._nodes if node.schedulable and node.free_capacity > 0]

    def schedule(self, pod: Pod) -> Node:
        """Choose a node for ``pod`` and record the assignment."""
        if pod.spec.node_name:
            for node in self._nodes:
                if node.name == pod.spec.node_name:
                    node.assign(pod.name)
                    return node
            raise SchedulingError(f"pod {pod.name!r} requests unknown node {pod.spec.node_name!r}")
        candidates = self.schedulable_nodes()
        if not candidates:
            raise SchedulingError(f"no schedulable node available for pod {pod.name!r}")
        # Least-loaded placement with the node name as a deterministic tie-break.
        chosen = min(candidates, key=lambda node: (len(node.pod_names), node.name))
        chosen.assign(pod.name)
        return chosen

    def unschedule(self, pod_name: str) -> None:
        for node in self._nodes:
            node.unassign(pod_name)

    def node_for(self, pod_name: str) -> Node | None:
        for node in self._nodes:
            if pod_name in node.pod_names:
                return node
        return None
