"""IP address management for the simulated cluster.

Kubernetes clusters use three flat address spaces: node addresses, the pod
CIDR, and the service (ClusterIP) CIDR.  The allocator hands out addresses
deterministically so repeated runs of an experiment produce identical
clusters.
"""

from __future__ import annotations

import ipaddress

from .errors import IPAMError


class AddressPool:
    """Sequential allocator over an IPv4 network."""

    def __init__(self, cidr: str, reserve_first: int = 1) -> None:
        self._network = ipaddress.ip_network(cidr)
        self._reserve_first = reserve_first
        self._next_index = reserve_first + 1  # skip the network address + reserved
        self._max_index = self._network.num_addresses - 1
        self._allocated: dict[str, str] = {}
        self._released: list[int] = []

    def reset(self) -> None:
        """Forget every allocation; the next sequence replays from scratch.

        Keeps the parsed network, so recycling a pool (the cluster session's
        ``reset()``) skips the CIDR re-parse a fresh pool would pay.
        """
        self._allocated.clear()
        self._released.clear()
        self._next_index = self._reserve_first + 1

    @property
    def cidr(self) -> str:
        return str(self._network)

    def allocate(self, owner: str) -> str:
        """Allocate an address for ``owner``; idempotent per owner."""
        if owner in self._allocated:
            return self._allocated[owner]
        if self._released:
            index = self._released.pop()
        else:
            if self._next_index >= self._max_index:
                raise IPAMError(f"address pool {self.cidr} exhausted")
            index = self._next_index
            self._next_index += 1
        address = str(self._network[index])
        self._allocated[owner] = address
        return address

    def release(self, owner: str) -> None:
        """Release the address held by ``owner`` (no-op when absent)."""
        address = self._allocated.pop(owner, None)
        if address is not None:
            index = int(ipaddress.ip_address(address)) - int(self._network[0])
            self._released.append(index)

    def lookup(self, owner: str) -> str | None:
        return self._allocated.get(owner)

    def owner_of(self, address: str) -> str | None:
        for owner, allocated in self._allocated.items():
            if allocated == address:
                return owner
        return None

    def contains(self, address: str) -> bool:
        try:
            return ipaddress.ip_address(address) in self._network
        except ValueError:
            return False

    def __len__(self) -> int:
        return len(self._allocated)


class ClusterIPAM:
    """The three address pools of a cluster."""

    def __init__(
        self,
        pod_cidr: str = "10.244.0.0/16",
        service_cidr: str = "10.96.0.0/16",
        node_cidr: str = "192.168.0.0/24",
    ) -> None:
        self.pods = AddressPool(pod_cidr)
        self.services = AddressPool(service_cidr)
        self.nodes = AddressPool(node_cidr)

    def reset(self) -> None:
        """Reset all three pools to their as-constructed state."""
        self.pods.reset()
        self.services.reset()
        self.nodes.reset()

    def classify(self, address: str) -> str:
        """Classify an address as ``pod``, ``service``, ``node`` or ``external``."""
        if self.pods.contains(address):
            return "pod"
        if self.services.contains(address):
            return "service"
        if self.nodes.contains(address):
            return "node"
        return "external"
