"""The API server: object store plus admission chain.

The store indexes objects by ``(kind, namespace, name)`` and runs a chain of
admission controllers on every create/update, which is how the paper's
*defense* component (``repro.core.admission``) plugs into the cluster.
"""

from __future__ import annotations

from typing import Callable, Iterable, Protocol

from ..k8s import Inventory, KubernetesObject
from .errors import AdmissionError, AlreadyExistsError, NotFoundError


class AdmissionController(Protocol):
    """Interface of an admission controller registered with the API server."""

    #: Human-readable identifier shown in error messages and audit entries.
    name: str

    def review(self, obj: KubernetesObject, store: "ObjectStore") -> None:
        """Raise :class:`AdmissionError` to reject, return to admit.

        Controllers may mutate ``obj`` in place (mutating admission).
        """


class ObjectStore:
    """Indexed storage of Kubernetes objects."""

    def __init__(self) -> None:
        self._objects: dict[tuple[str, str, str], KubernetesObject] = {}
        #: Monotonic counter bumped on every successful mutation.  Consumers
        #: (the cluster's compiled policy index) use it as a cheap epoch to
        #: invalidate derived caches without subscribing to individual writes.
        self.generation: int = 0

    # CRUD ------------------------------------------------------------------
    def put(self, obj: KubernetesObject, replace: bool = False) -> None:
        key = obj.key
        if not replace and key in self._objects:
            raise AlreadyExistsError(f"{obj.qualified_name()} already exists")
        self._objects[key] = obj
        self.generation += 1

    def get(self, kind: str, name: str, namespace: str = "default") -> KubernetesObject:
        for key in ((kind, namespace, name), (kind, "", name)):
            if key in self._objects:
                return self._objects[key]
        raise NotFoundError(f"{kind}/{namespace}/{name} not found")

    def delete(self, kind: str, name: str, namespace: str = "default") -> KubernetesObject:
        for key in ((kind, namespace, name), (kind, "", name)):
            obj = self._objects.pop(key, None)
            if obj is not None:
                self.generation += 1
                return obj
        raise NotFoundError(f"{kind}/{namespace}/{name} not found")

    def exists(self, kind: str, name: str, namespace: str = "default") -> bool:
        return (kind, namespace, name) in self._objects or (kind, "", name) in self._objects

    # Listing -------------------------------------------------------------------
    def list(self, kind: str | None = None, namespace: str | None = None) -> list[KubernetesObject]:
        return [
            obj
            for (obj_kind, obj_namespace, _), obj in sorted(self._objects.items())
            if (kind is None or obj_kind == kind)
            and (namespace is None or obj_namespace == namespace or obj_namespace == "")
        ]

    def all(self) -> list[KubernetesObject]:
        return [obj for _, obj in sorted(self._objects.items())]

    def inventory(self, namespace: str | None = None) -> Inventory:
        return Inventory(self.list(namespace=namespace))

    def namespaces(self) -> set[str]:
        return {namespace for (_, namespace, _) in self._objects if namespace}

    def clear(self) -> None:
        """Drop every object; the generation keeps moving strictly forward."""
        self._objects.clear()
        self.generation += 1

    def __len__(self) -> int:
        return len(self._objects)


class APIServer:
    """Applies objects through validation and the admission chain."""

    def __init__(self) -> None:
        self.store = ObjectStore()
        self._admission_controllers: list[AdmissionController] = []
        self.audit_log: list[dict] = []

    def reset(self) -> None:
        """Back to as-constructed state (store generation excepted, which
        only ever moves forward so epoch-keyed caches invalidate)."""
        self.store.clear()
        self._admission_controllers.clear()
        self.audit_log.clear()

    # Admission -----------------------------------------------------------------
    def register_admission_controller(self, controller: AdmissionController) -> None:
        self._admission_controllers.append(controller)

    def unregister_admission_controller(self, name: str) -> None:
        self._admission_controllers = [
            controller for controller in self._admission_controllers if controller.name != name
        ]

    @property
    def admission_controllers(self) -> list[AdmissionController]:
        return list(self._admission_controllers)

    # Object lifecycle -------------------------------------------------------------
    def apply(self, obj: KubernetesObject, replace: bool = True) -> KubernetesObject:
        """Validate, run admission, and store an object."""
        obj.validate()
        for controller in self._admission_controllers:
            try:
                controller.review(obj, self.store)
            except AdmissionError as exc:
                self.audit_log.append(
                    {
                        "verb": "create",
                        "object": obj.qualified_name(),
                        "decision": "denied",
                        "controller": controller.name,
                        "message": str(exc),
                    }
                )
                raise
        self.store.put(obj, replace=replace)
        self.audit_log.append(
            {"verb": "create", "object": obj.qualified_name(), "decision": "allowed"}
        )
        return obj

    def apply_all(
        self, objects: Iterable[KubernetesObject], on_error: Callable[[KubernetesObject, Exception], None] | None = None
    ) -> list[KubernetesObject]:
        """Apply many objects, optionally collecting per-object errors."""
        applied: list[KubernetesObject] = []
        for obj in objects:
            try:
                applied.append(self.apply(obj))
            except Exception as exc:  # noqa: BLE001 - propagated through callback
                if on_error is None:
                    raise
                on_error(obj, exc)
        return applied

    def delete(self, kind: str, name: str, namespace: str = "default") -> KubernetesObject:
        obj = self.store.delete(kind, name, namespace)
        self.audit_log.append(
            {"verb": "delete", "object": obj.qualified_name(), "decision": "allowed"}
        )
        return obj

    def denied_objects(self) -> list[str]:
        """Names of objects rejected by admission, from the audit log."""
        return [entry["object"] for entry in self.audit_log if entry["decision"] == "denied"]
