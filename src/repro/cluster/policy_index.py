"""Compiled policy-evaluation engine for the connectivity hot path.

Every simulated connection needs the set of NetworkPolicies that isolate the
destination pod.  The naive evaluator re-scans the whole policy list and
re-runs ``policy.selects()`` per attempt, which multiplies to millions of
selector evaluations across the lateral-movement experiments (Figure 4b /
Table 2).  This module compiles a policy list once into an indexed form:

* ingress-restricting policies are **bucketed by namespace** -- a pod can
  only be selected by policies of its own namespace, so pods in
  policy-free namespaces resolve to "default allow" without touching a
  single selector;
* pure ``matchLabels`` selectors are **pre-flattened into hashable match
  keys** (frozensets of ``(key, value)`` pairs) so selection becomes a
  subset test on a pre-hashed label set instead of a per-key dict walk;
* the per-pod *isolating-policy set* is **memoized** keyed on the pod's
  ``(namespace, labels)`` identity -- replicas of the same workload share
  one entry, so a 1000-pod deployment costs one selector scan, not 1000.

An index is a snapshot: it must be rebuilt whenever the policy set changes.
:class:`repro.cluster.cluster.Cluster` owns a ``policy_epoch`` counter
(bumped on install/uninstall/restart and on every direct API-server
mutation) and rebuilds its cached index whenever the epoch moves, so callers
never invalidate caches by hand.  The index is a *pure acceleration*: for
any pod it returns exactly the policies (in original list order) that the
naive ``NetworkPolicyEnforcer.policies_isolating`` scan would return, a
property enforced by the differential tests in ``tests/property``.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..k8s import NetworkPolicy
from .runtime import RunningPod


def _ingress_rule_flags(policies: Iterable[NetworkPolicy]) -> tuple[bool, bool]:
    """``(uses named ports, constrains ports)`` over all ingress rules.

    An empty ``rule.ports`` list allows every port and protocol, so when no
    rule of any policy lists ports the whole decision is port-independent
    (and, a fortiori, independent of the destination's named-port table).
    The reachability layers use these flags to widen decision-equivalence
    classes: port-free isolating sets collapse every probed port of a
    destination into one memoized decision.
    """
    uses_named = False
    constrains = False
    for policy in policies:
        for rule in policy.ingress:
            if rule.ports:
                constrains = True
                if any(isinstance(rp.port, str) for rp in rule.ports):
                    return True, True
    return uses_named, constrains


class _CompiledPolicy:
    """One ingress-restricting policy with its selector pre-flattened."""

    __slots__ = ("policy", "match_items")

    def __init__(self, policy: NetworkPolicy) -> None:
        self.policy = policy
        #: ``frozenset`` of required ``(key, value)`` pairs for pure
        #: ``matchLabels`` selectors (empty = selects every pod in the
        #: namespace); ``None`` when ``matchExpressions`` require the full
        #: selector evaluation.
        self.match_items = policy.selection_match_items()

    def selects(self, labels: Mapping[str, str], label_items: frozenset) -> bool:
        if self.match_items is not None:
            return self.match_items <= label_items
        return self.policy.pod_selector.matches(labels)


class PolicyIndex:
    """An immutable compiled view of a NetworkPolicy list.

    Build one per *policy epoch* and share it across every connection
    attempt; :meth:`isolating` then answers "which policies isolate this
    pod?" from a memo instead of a scan.
    """

    __slots__ = (
        "epoch",
        "policies",
        "_ingress_by_namespace",
        "_compiled_buckets",
        "_isolating_cache",
        "_isolating_intern",
        "_named_port_flags",
        "_port_constrained_flags",
    )

    def __init__(self, policies: Iterable[NetworkPolicy], epoch: int = 0) -> None:
        self.epoch = epoch
        #: The source policies in their original order (the order decides the
        #: ``isolating_policies`` tuple of every PolicyDecision).
        self.policies: tuple[NetworkPolicy, ...] = tuple(policies)
        #: Namespace buckets, built on first use: an index constructed for a
        #: workload that ends up never asking an isolating question (a chart
        #: whose probe makes no connection attempts) costs one tuple and a
        #: handful of empty dicts.
        self._ingress_by_namespace: dict[str, list[NetworkPolicy]] | None = None
        #: Selector flattening is promoted lazily per namespace bucket: the
        #: first label class answers with a direct scan (sentinel ``()``
        #: recorded), the second distinct class compiles the bucket.  A sweep
        #: that probes one label class per namespace -- the common shape of a
        #: single-chart probe -- therefore never pays compilation on top of
        #: the scan, while fleets with many classes amortize it immediately.
        self._compiled_buckets: dict[str, list[_CompiledPolicy] | tuple] = {}
        #: ``(namespace, frozen labels) -> isolating policies`` memo.  Pod
        #: labels are immutable once running, so entries never go stale
        #: within one index; replicas with identical labels share an entry.
        self._isolating_cache: dict[tuple[str, frozenset], tuple[NetworkPolicy, ...]] = {}
        #: Content-interning table for isolating tuples: label classes that
        #: resolve to the *same policies* share one tuple object, so caches
        #: keyed on ``id(isolating)`` (the reachability matrix's decision
        #: memo and the vectorized decision classes) collapse across them.
        #: Keyed by member identity (policies are fixed for an index's life).
        self._isolating_intern: dict[tuple[int, ...], tuple[NetworkPolicy, ...]] = {}
        #: ``id(interned isolating tuple) -> flag`` tables, filled when the
        #: tuple is first interned; answered by :meth:`uses_named_ports` and
        #: :meth:`constrains_ports`.
        self._named_port_flags: dict[int, bool] = {}
        self._port_constrained_flags: dict[int, bool] = {}

    def __len__(self) -> int:
        return len(self.policies)

    def _namespace_buckets(self) -> dict[str, list[NetworkPolicy]]:
        buckets = self._ingress_by_namespace
        if buckets is None:
            buckets = {}
            for policy in self.policies:
                if policy.restricts_ingress():
                    buckets.setdefault(policy.namespace, []).append(policy)
            self._ingress_by_namespace = buckets
        return buckets

    def has_ingress_policies(self, namespace: str) -> bool:
        """Whether any ingress-restricting policy exists in ``namespace``."""
        return namespace in self._namespace_buckets()

    def isolating(self, pod: RunningPod) -> tuple[NetworkPolicy, ...]:
        """Policies that select ``pod`` and restrict ingress, in list order.

        Equivalent to the naive ``policies_isolating`` scan: host-network
        pods escape enforcement entirely, everything else is matched against
        the namespace bucket (memoized per label set).
        """
        if pod.host_network:
            return ()
        namespace = pod.namespace
        buckets = self._namespace_buckets()
        if namespace not in buckets:
            return ()
        label_items = pod.label_items()
        key = (namespace, label_items)
        cached = self._isolating_cache.get(key)
        if cached is None:
            labels = pod.labels
            bucket = self._compiled_buckets.get(namespace)
            if bucket is None:
                # First label class in this namespace: answer with a direct
                # naive-cost scan and only leave the ``()`` sentinel behind.
                # Compiling selectors pays off via the memo, and the memo
                # only pays off once a *second* distinct class shows up.
                self._compiled_buckets[namespace] = ()
                selected = [
                    policy
                    for policy in buckets[namespace]
                    if policy.pod_selector.matches(labels)
                ]
            else:
                if not bucket:
                    # Second distinct class: promote the sentinel to the
                    # compiled bucket -- from here on selection is a subset
                    # test on pre-flattened match keys.
                    bucket = [
                        _CompiledPolicy(policy)
                        for policy in buckets[namespace]
                    ]
                    self._compiled_buckets[namespace] = bucket
                selected = [
                    compiled.policy
                    for compiled in bucket
                    if compiled.selects(labels, label_items)
                ]
            if selected:
                cached = tuple(selected)
                cached = self._isolating_intern.setdefault(
                    tuple(map(id, cached)), cached
                )
                flag_key = id(cached)
                if flag_key not in self._named_port_flags:
                    uses_named, constrains = _ingress_rule_flags(cached)
                    self._named_port_flags[flag_key] = uses_named
                    self._port_constrained_flags[flag_key] = constrains
            else:
                # ``()`` is a singleton; interning it buys nothing.
                cached = ()
            self._isolating_cache[key] = cached
        return cached

    def uses_named_ports(self, isolating: tuple[NetworkPolicy, ...]) -> bool:
        """Whether any policy of ``isolating`` references a named port.

        ``isolating`` must be a tuple returned by :meth:`isolating` (the flag
        is recorded when the tuple is interned); unknown tuples answer
        ``True``, the conservative "named ports may matter" default.
        """
        if not isolating:
            return False
        return self._named_port_flags.get(id(isolating), True)

    def constrains_ports(self, isolating: tuple[NetworkPolicy, ...]) -> bool:
        """Whether any ingress rule of ``isolating`` lists ports at all.

        ``False`` means every decision against this isolating set is
        port- and protocol-independent, so reachability layers may collapse
        all probed ports of a destination into one decision class.  Unknown
        tuples answer ``True``, the conservative default.
        """
        if not isolating:
            return False
        return self._port_constrained_flags.get(id(isolating), True)
