"""Compiled policy-evaluation engine for the connectivity hot path.

Every simulated connection needs the set of NetworkPolicies that isolate the
destination pod.  The naive evaluator re-scans the whole policy list and
re-runs ``policy.selects()`` per attempt, which multiplies to millions of
selector evaluations across the lateral-movement experiments (Figure 4b /
Table 2).  This module compiles a policy list once into an indexed form:

* ingress-restricting policies are **bucketed by namespace** -- a pod can
  only be selected by policies of its own namespace, so pods in
  policy-free namespaces resolve to "default allow" without touching a
  single selector;
* pure ``matchLabels`` selectors are **pre-flattened into hashable match
  keys** (frozensets of ``(key, value)`` pairs) so selection becomes a
  subset test on a pre-hashed label set instead of a per-key dict walk;
* the per-pod *isolating-policy set* is **memoized** keyed on the pod's
  ``(namespace, labels)`` identity -- replicas of the same workload share
  one entry, so a 1000-pod deployment costs one selector scan, not 1000.

An index is a snapshot: it must be rebuilt whenever the policy set changes.
:class:`repro.cluster.cluster.Cluster` owns a ``policy_epoch`` counter
(bumped on install/uninstall/restart and on every direct API-server
mutation) and rebuilds its cached index whenever the epoch moves, so callers
never invalidate caches by hand.  The index is a *pure acceleration*: for
any pod it returns exactly the policies (in original list order) that the
naive ``NetworkPolicyEnforcer.policies_isolating`` scan would return, a
property enforced by the differential tests in ``tests/property``.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..k8s import NetworkPolicy
from .runtime import RunningPod


class _CompiledPolicy:
    """One ingress-restricting policy with its selector pre-flattened."""

    __slots__ = ("policy", "match_items")

    def __init__(self, policy: NetworkPolicy) -> None:
        self.policy = policy
        #: ``frozenset`` of required ``(key, value)`` pairs for pure
        #: ``matchLabels`` selectors (empty = selects every pod in the
        #: namespace); ``None`` when ``matchExpressions`` require the full
        #: selector evaluation.
        self.match_items = policy.selection_match_items()

    def selects(self, labels: Mapping[str, str], label_items: frozenset) -> bool:
        if self.match_items is not None:
            return self.match_items <= label_items
        return self.policy.pod_selector.matches(labels)


class PolicyIndex:
    """An immutable compiled view of a NetworkPolicy list.

    Build one per *policy epoch* and share it across every connection
    attempt; :meth:`isolating` then answers "which policies isolate this
    pod?" from a memo instead of a scan.
    """

    __slots__ = ("epoch", "policies", "_ingress_by_namespace", "_isolating_cache")

    def __init__(self, policies: Iterable[NetworkPolicy], epoch: int = 0) -> None:
        self.epoch = epoch
        #: The source policies in their original order (the order decides the
        #: ``isolating_policies`` tuple of every PolicyDecision).
        self.policies: tuple[NetworkPolicy, ...] = tuple(policies)
        self._ingress_by_namespace: dict[str, list[_CompiledPolicy]] = {}
        for policy in self.policies:
            if policy.restricts_ingress():
                self._ingress_by_namespace.setdefault(policy.namespace, []).append(
                    _CompiledPolicy(policy)
                )
        #: ``(namespace, frozen labels) -> isolating policies`` memo.  Pod
        #: labels are immutable once running, so entries never go stale
        #: within one index; replicas with identical labels share an entry.
        self._isolating_cache: dict[tuple[str, frozenset], tuple[NetworkPolicy, ...]] = {}

    def __len__(self) -> int:
        return len(self.policies)

    def has_ingress_policies(self, namespace: str) -> bool:
        """Whether any ingress-restricting policy exists in ``namespace``."""
        return namespace in self._ingress_by_namespace

    def isolating(self, pod: RunningPod) -> tuple[NetworkPolicy, ...]:
        """Policies that select ``pod`` and restrict ingress, in list order.

        Equivalent to the naive ``policies_isolating`` scan: host-network
        pods escape enforcement entirely, everything else is matched against
        the namespace bucket (memoized per label set).
        """
        if pod.host_network:
            return ()
        bucket = self._ingress_by_namespace.get(pod.namespace)
        if not bucket:
            return ()
        labels = pod.labels
        key = (pod.namespace, frozenset(labels.items()))
        cached = self._isolating_cache.get(key)
        if cached is None:
            label_items = key[1]
            cached = tuple(
                compiled.policy
                for compiled in bucket
                if compiled.selects(labels, label_items)
            )
            self._isolating_cache[key] = cached
        return cached
