"""Install-free analysis sessions over pooled cluster substrates.

The evaluation pipeline analyzes hundreds of charts, and the seed code built
a throw-away :class:`~repro.cluster.cluster.Cluster` per chart: nodes, IPAM
pools, DNS, scheduler and API server were reconstructed ~300 times per sweep,
and every runtime observation paid a full install (validation, store writes,
endpoint reconciles) it never looked at again.  This module removes both
costs without changing a single observable result:

* :class:`AnalysisSession` **pools cluster skeletons**.  A cluster is built
  once and recycled between charts through ``Cluster.reset()`` -- the
  *reset-epoch contract*: after ``reset(behaviors, seed)`` the cluster is
  indistinguishable from a freshly constructed one (same node names,
  deterministic IPAM and ephemeral-port sequences, empty store), except that
  ``policy_epoch`` keeps moving strictly forward so every epoch-keyed cache
  (policy index, service bindings) invalidates for free.

* :class:`ObservationSubstrate` is the **fast observation path**
  (``observe_mode="fast"``): it derives the netstat-style double snapshot
  directly from the rendered objects and the registered workload behaviours
  -- the same workload expansion, scheduler placement, container runtime and
  restart ordering as a real install, minus the API server, IPAM, DNS and
  endpoint machinery that contributes nothing to a
  :class:`~repro.probe.snapshot.PodSnapshot`.  ``observe_mode="full"`` keeps
  the install-and-scan path as the reference implementation.

With the structured render pipeline (``render_chart``'s dict-native
default) feeding it, the fast path closes the loop: from chart to snapshot
no YAML text is dumped or parsed anywhere -- the substrate consumes the
typed objects the renderer assembled straight from native dicts.

* :class:`ObservationMemo` adds the **content-keyed observation memo**:
  fast-path observations are a pure function of the render fingerprint, the
  behaviour registry fingerprint and the session identity (name, worker
  count, seed, snapshot mode), so repeated observations of identical
  content are served from an in-process memo -- and, when the session
  carries a :class:`~repro.store.ResultStore`, promoted to the shared
  on-disk store so later processes (and resumed sweeps) skip the
  substrate entirely.

Equivalence -- pooled == fresh and fast == full, for findings, snapshots and
reachability surfaces alike -- is proven over the whole catalogue and over
Hypothesis-generated app specs by the differential conformance suite in
``tests/property/test_session_equivalence.py``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

from .. import faults
from ..helm import RenderedChart
from ..k8s import CronJob, DaemonSet, ObjectMeta, Pod, Workload
from ..probe.scanner import RuntimeObservation, RuntimeScanner
from ..probe.snapshot import ClusterSnapshot, PodSnapshot
from ..store import KIND_OBSERVATION, ResultStore, store_key
from .behavior import BehaviorRegistry
from .cluster import Cluster, _sanitize, build_node_set
from .node import Node
from .runtime import ContainerRuntime, RunningPod
from .scheduler import Scheduler

#: Observation modes: ``"fast"`` derives snapshots install-free from rendered
#: objects + behaviours; ``"full"`` installs into a (pooled) cluster and runs
#: the :class:`~repro.probe.scanner.RuntimeScanner` -- the reference path.
OBSERVE_FAST = "fast"
OBSERVE_FULL = "full"
OBSERVE_MODES = (OBSERVE_FAST, OBSERVE_FULL)


class ObservationSubstrate:
    """Nodes, scheduler and container runtime without a control plane.

    Mirrors exactly the parts of ``Cluster.install`` + ``RuntimeScanner``
    that a runtime observation can see: object validation and namespace
    defaulting, workload expansion (a shared-structure mirror of
    :func:`~repro.cluster.cluster.expand_workload_pods`, see
    :meth:`_expand_workload`), least-loaded scheduling onto the shared node
    set (:func:`~repro.cluster.cluster.build_node_set`), socket derivation
    through the same :class:`ContainerRuntime` (identical ephemeral-port
    RNG sequence), and the restart-between-snapshots ordering of the double
    snapshot.  The API server, admission chain, IPAM pools, DNS and
    endpoint controller are skipped -- none of their state reaches a
    snapshot.

    Not thread-safe: one substrate serves one observation at a time (the
    catalogue fan-out is process-based and each worker owns its session).
    """

    def __init__(
        self,
        name: str = "analysis",
        worker_count: int = 3,
        seed: int = 2025,
        behaviors: BehaviorRegistry | None = None,
    ) -> None:
        self.name = name
        self.worker_count = worker_count
        self._seed = seed
        self.behaviors = behaviors or BehaviorRegistry()
        self.nodes: list[Node] = build_node_set(name, worker_count)
        self.scheduler = Scheduler(self.nodes)
        self.runtime = ContainerRuntime(self.behaviors, seed=seed)
        self._pod_counter = 0
        self._host_ports: frozenset[int] | None = None

    def reset(self, behaviors: BehaviorRegistry | None = None, seed: int | None = None) -> None:
        """Recycle the substrate: nodes stay, runtime state is re-seeded."""
        if behaviors is not None:
            self.behaviors = behaviors
        if seed is not None:
            self._seed = seed
        for node in self.nodes:
            node.pod_names.clear()
        self.runtime.reset(self.behaviors, seed=self._seed)
        self._pod_counter = 0

    def worker_nodes(self) -> list[Node]:
        """The schedulable nodes of the shared node set."""
        return [node for node in self.nodes if node.schedulable]

    def host_port_baseline(self) -> set[int]:
        """Ports open on the nodes themselves (computed once; copied out)."""
        if self._host_ports is None:
            ports: set[int] = set()
            for node in self.nodes:
                ports.update(node.host_port_numbers())
            self._host_ports = frozenset(ports)
        return set(self._host_ports)

    # Observation -------------------------------------------------------------
    def observe(
        self, rendered: RenderedChart, double_snapshot: bool = True
    ) -> RuntimeObservation:
        """The install-free double snapshot of one rendered chart.

        Byte-compatible with installing ``rendered`` into a fresh cluster and
        running ``RuntimeScanner.observe``: objects are validated (once per
        sealed interned object -- see ``validate_cached``) and
        namespace-defaulted in apply order, pods start in workload order, and
        the restart between snapshots walks the started pod names in the same
        order so dynamic ports replay the same RNG draws.
        """
        app = rendered.release.name
        namespace = rendered.release.namespace or "default"
        objects = []
        for obj in rendered.objects:
            if obj.kind == "Namespace":
                continue
            if obj.NAMESPACED and not obj.metadata.namespace:
                # Only reachable for hand-built objects: parsed manifests are
                # namespace-defaulted at construction (and interned objects,
                # which are sealed, therefore never take this branch).
                obj.metadata.namespace = namespace
            # Sealed (content-interned) objects validate once ever: warm
            # render-cache hits skip the whole validation walk.
            obj.validate_cached()
            objects.append(obj)
        running: dict[tuple[str, str], RunningPod] = {}
        pod_names: list[str] = []
        worker_count = len(self.worker_nodes())
        for obj in objects:
            if isinstance(obj, Workload) and not isinstance(obj, CronJob):
                for pod in self._expand_workload(obj, worker_count):
                    self._start_pod(pod, app, obj.qualified_name(), running, pod_names)
            elif isinstance(obj, Pod):
                self._start_pod(obj, app, obj.qualified_name(), running, pod_names)
        host_ports = self.host_port_baseline()
        pods = list(running.values())
        first = ClusterSnapshot.from_pods(pods, host_ports=host_ports, sequence=0)
        if double_snapshot:
            second = ClusterSnapshot(
                pods=self._second_snapshot_pods(running, pod_names, namespace, first),
                host_ports=set(host_ports),
                sequence=1,
            )
        else:
            second = first
        return RuntimeObservation(app=app, first=first, second=second, host_ports=host_ports)

    def _second_snapshot_pods(
        self,
        running: dict[tuple[str, str], RunningPod],
        pod_names: list[str],
        namespace: str,
        first: ClusterSnapshot,
    ) -> list:
        """The post-restart pod snapshots, re-deriving only what can change.

        A restart re-opens exactly the same sockets except for dynamic
        (ephemeral) ones, and restarting a pod that drew no ephemeral port
        draws nothing from the shared RNG -- so such pods are skipped
        entirely and their first :class:`~repro.probe.snapshot.PodSnapshot`
        is shared into the second snapshot (snapshots are read-only by
        contract).  The skip keys on ``ContainerRuntime.drew_ephemeral``
        (the recorded draws), not on surviving sockets: a dynamic socket
        deduplicated away by a same-port static socket still advanced the
        RNG and still must restart.  Pods that drew restart in the same
        start order (and with the same duplicate-name lookup) as
        ``Cluster.restart_application``, replaying the reference RNG
        sequence exactly.
        """
        restarted: set[int] = set()
        for name in pod_names:
            pod = running.get((namespace, name))
            if pod is not None and self.runtime.drew_ephemeral(pod):
                self.runtime.restart_pod(pod)
                restarted.add(id(pod))
        return [
            PodSnapshot.from_running_pod(pod) if id(pod) in restarted else snapshot
            for pod, snapshot in zip(running.values(), first.pods)
        ]

    @staticmethod
    def _expand_workload(workload: Workload, worker_count: int) -> list[Pod]:
        """Expand a workload into pods, sharing the immutable parts.

        Mirrors :func:`~repro.cluster.cluster.expand_workload_pods` --
        same replica counts, pod names and namespaces -- but replicas share
        the template's spec, labels and annotations instead of paying a
        serialize/deserialize deep copy each.  Safe here because the fast
        path never hands pods to a mutable store: the runtime and the
        snapshots only ever read them.  Equivalence with the copying
        expansion is part of the differential conformance suite.
        """
        replicas = worker_count if isinstance(workload, DaemonSet) else workload.replica_count()
        template = workload.pod_template()
        labels = template.metadata.labels
        annotations = template.metadata.annotations
        namespace = workload.namespace
        return [
            Pod(
                metadata=ObjectMeta(
                    name=_sanitize(f"{workload.name}-{index}"),
                    namespace=namespace,
                    labels=labels,
                    annotations=annotations,
                ),
                spec=template.spec,
            )
            for index in range(replicas)
        ]

    def _start_pod(
        self,
        pod: Pod,
        app: str,
        owner: str,
        running: dict[tuple[str, str], RunningPod],
        pod_names: list[str],
    ) -> None:
        node = self.scheduler.schedule(pod)
        if pod.spec.host_network:
            ip = node.ip
        else:
            # Snapshots never observe pod IPs; a cheap deterministic stand-in
            # replaces the IPAM pool walk.
            self._pod_counter += 1
            serial = self._pod_counter + 1
            ip = f"10.244.{(serial >> 8) & 0xFF}.{serial & 0xFF}"
        started = self.runtime.start_pod(pod, ip, node, app=app, owner=owner)
        running[(pod.namespace, pod.name)] = started
        pod_names.append(pod.name)


@dataclass
class SessionStats:
    """Counters exposed for tests and the benchmark harness."""

    clusters_built: int = 0
    resets: int = 0
    leases: int = 0
    fast_observations: int = 0
    full_observations: int = 0
    #: Fast observations served from the content-keyed memo (a subset of
    #: ``fast_observations`` -- a memo hit still counts as an observation).
    memo_hits: int = 0


class ObservationMemo:
    """Content-keyed memo of fast-path runtime observations.

    Keys come from :func:`repro.store.store_key` over the full observation
    identity; values are private :class:`~repro.probe.scanner.RuntimeObservation`
    copies (fresh top-level object, shared read-only snapshots -- the same
    contract as the render cache's shared entries).  The in-process dict is
    LRU-bounded: a hit refreshes the entry's recency, eviction drops the
    least recently used.  Recency (rather than the insertion-order FIFO
    this memo used to keep) is what makes observations survive *delta
    rounds* (:mod:`repro.experiments.delta`): a long watch session keeps
    re-touching the unchanged charts' entries every round while edited
    charts insert a stream of new keys, so under FIFO the hot entries
    would age out purely by insertion date.  When a
    :class:`~repro.store.ResultStore` is attached, recorded observations
    are also promoted to it and in-process misses fall through to a
    verified store read, so concurrent and subsequent processes share warm
    observations.
    """

    def __init__(self, maxsize: int = 2048, store: ResultStore | None = None) -> None:
        self._entries: dict[str, RuntimeObservation] = {}
        self._maxsize = maxsize
        self.store = store
        self.hits = 0
        self.misses = 0
        self.store_hits = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: str) -> RuntimeObservation | None:
        """The memoized observation for ``key``, or ``None`` on a miss.

        Hits return a fresh top-level :class:`RuntimeObservation` (private
        ``host_ports`` set, shared snapshots) so caller-side attribute
        rebinding cannot poison the memo.  A hit also refreshes the key's
        recency (the LRU contract): an entry consulted every delta round
        stays resident no matter how much churn newer keys generate.
        """
        observation = self._entries.get(key)
        if observation is not None:
            # Move-to-end: re-insertion order is the recency order.
            self._entries[key] = self._entries.pop(key)
        if observation is None and self.store is not None:
            observation = self.store.read(key, kind=KIND_OBSERVATION)
            if observation is not None:
                self.store_hits += 1
                self._remember(key, observation)
        if observation is None:
            self.misses += 1
            return None
        self.hits += 1
        return RuntimeObservation(
            app=observation.app,
            first=observation.first,
            second=observation.second,
            host_ports=set(observation.host_ports),
        )

    def record(self, key: str, observation: RuntimeObservation) -> None:
        """Memoize ``observation`` under ``key`` (and promote it to the store).

        A private copy is stored -- never the caller's object -- so the
        caller keeps full ownership of what it was handed.
        """
        private = RuntimeObservation(
            app=observation.app,
            first=observation.first,
            second=observation.second,
            host_ports=set(observation.host_ports),
        )
        self._remember(key, private)
        if self.store is not None:
            self.store.write(key, private, kind=KIND_OBSERVATION)

    def stats(self) -> dict[str, int]:
        """Hit/miss/store-hit/eviction/entry counters."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "store_hits": self.store_hits,
            "evictions": self.evictions,
            "entries": len(self._entries),
        }

    def _remember(self, key: str, observation: RuntimeObservation) -> None:
        self._entries.pop(key, None)
        self._entries[key] = observation
        while len(self._entries) > self._maxsize:
            self._entries.pop(next(iter(self._entries)), None)
            self.evictions += 1


class AnalysisSession:
    """Pooled cluster substrates plus the fast/full observation switch.

    One session serves one sequential consumer (an analyzer instance, a
    sweep worker process).  ``lease()`` hands out a clean cluster -- recycled
    through ``Cluster.reset()`` when the pool has one, freshly built
    otherwise -- and ``observe()`` produces a
    :class:`~repro.probe.scanner.RuntimeObservation` through the configured
    ``observe_mode``.  A custom ``cluster_factory`` disables pooling and
    pins observation to the full path, preserving the semantics of callers
    that bring their own cluster subclass.
    """

    def __init__(
        self,
        name: str = "analysis",
        worker_count: int = 3,
        seed: int = 2025,
        observe_mode: str = OBSERVE_FAST,
        compiled_policies: bool = True,
        pooled: bool = True,
        cluster_factory: Callable[[BehaviorRegistry], Cluster] | None = None,
        store: ResultStore | None = None,
        memoize_observations: bool = True,
    ) -> None:
        if observe_mode not in OBSERVE_MODES:
            raise ValueError(f"unknown observe_mode {observe_mode!r}; expected one of {OBSERVE_MODES}")
        self.name = name
        self.worker_count = worker_count
        self.seed = seed
        self.compiled_policies = compiled_policies
        self._factory = cluster_factory
        #: A custom factory may return cluster subclasses whose reset
        #: semantics we cannot vouch for: build fresh, observe via install.
        self.pooled = pooled and cluster_factory is None
        self.observe_mode = OBSERVE_FULL if cluster_factory is not None else observe_mode
        self._free: list[Cluster] = []
        self._lock = threading.Lock()
        self._substrate: ObservationSubstrate | None = None
        #: Serializes fast observations: the substrate is a single recycled
        #: instance, and the evaluation's custom-analyzer path shares one
        #: session across a *thread* pool (the full path is already safe --
        #: every thread leases its own cluster).
        self._observe_lock = threading.Lock()
        self.store = store
        self.memoize_observations = memoize_observations
        self._memo = ObservationMemo(store=store)
        self.stats = SessionStats()

    # Cluster pool ------------------------------------------------------------
    def acquire(self, behaviors: BehaviorRegistry | None = None) -> Cluster:
        """A clean cluster carrying ``behaviors`` (reset happens here).

        Released clusters are recycled lazily on the next acquire, so a
        consumer that dies mid-lease costs nothing extra.
        """
        behaviors = behaviors or BehaviorRegistry()
        self.stats.leases += 1
        if self._factory is not None:
            self.stats.clusters_built += 1
            return self._factory(behaviors)
        cluster: Cluster | None = None
        if self.pooled:
            with self._lock:
                cluster = self._free.pop() if self._free else None
        if cluster is None:
            self.stats.clusters_built += 1
            return Cluster(
                name=self.name,
                worker_count=self.worker_count,
                behaviors=behaviors,
                seed=self.seed,
                compiled_policies=self.compiled_policies,
            )
        cluster.reset(behaviors=behaviors, seed=self.seed)
        self.stats.resets += 1
        return cluster

    def release(self, cluster: Cluster) -> None:
        """Return a leased cluster to the pool (no-op when pooling is off)."""
        if not self.pooled:
            return
        with self._lock:
            self._free.append(cluster)

    @contextmanager
    def lease(self, behaviors: BehaviorRegistry | None = None) -> Iterator[Cluster]:
        """Context-managed acquire/release of one clean cluster."""
        cluster = self.acquire(behaviors)
        try:
            yield cluster
        finally:
            self.release(cluster)

    # Observation -------------------------------------------------------------
    def observe(
        self,
        rendered: RenderedChart,
        behaviors: BehaviorRegistry | None = None,
        double_snapshot: bool = True,
    ) -> RuntimeObservation:
        """The runtime observation of one rendered chart.

        ``"fast"`` mode goes through the install-free
        :class:`ObservationSubstrate`, consulting the content-keyed
        :class:`ObservationMemo` first (renders carrying a render
        fingerprint only -- uncached renders always hit the substrate);
        ``"full"`` mode leases a cluster, installs the chart and runs the
        reference :class:`~repro.probe.scanner.RuntimeScanner`, bypassing
        the memo so the reference path stays memo-free.
        """
        faults.fault_point(faults.OBSERVE)
        if self.observe_mode == OBSERVE_FAST:
            behaviors = behaviors or BehaviorRegistry()
            key = self._observation_key(rendered, behaviors, double_snapshot)
            if key is not None:
                memoized = self._memo.lookup(key)
                if memoized is not None:
                    self.stats.fast_observations += 1
                    self.stats.memo_hits += 1
                    return memoized
            with self._observe_lock:
                substrate = self._substrate
                if substrate is None:
                    substrate = ObservationSubstrate(
                        name=self.name,
                        worker_count=self.worker_count,
                        seed=self.seed,
                        behaviors=behaviors,
                    )
                    self._substrate = substrate
                else:
                    substrate.reset(behaviors=behaviors, seed=self.seed)
                self.stats.fast_observations += 1
                observation = substrate.observe(rendered, double_snapshot=double_snapshot)
            if key is not None:
                self._memo.record(key, observation)
            return observation
        self.stats.full_observations += 1
        with self.lease(behaviors) as cluster:
            cluster.install(rendered)
            scanner = RuntimeScanner(cluster)
            return scanner.observe(
                rendered.release.name, restart_between_snapshots=double_snapshot
            )

    def memo_stats(self) -> dict[str, int]:
        """Counter snapshot of the content-keyed observation memo."""
        return self._memo.stats()

    def _observation_key(
        self,
        rendered: RenderedChart,
        behaviors: BehaviorRegistry,
        double_snapshot: bool,
    ) -> str | None:
        if not self.memoize_observations:
            return None
        render_fp = getattr(rendered, "render_fingerprint", None)
        if render_fp is None:
            return None
        return store_key(
            KIND_OBSERVATION,
            render_fp,
            behaviors.fingerprint(),
            self.name,
            self.worker_count,
            self.seed,
            bool(double_snapshot),
        )
