"""Cluster nodes and the host processes that listen on them.

Host processes matter for two reasons: pods with ``hostNetwork: true`` share
the node's network namespace (M7), and the runtime analysis must subtract
pre-existing host ports from such pods' snapshots to avoid false positives
(Section 4.2.2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .behavior import ALL_INTERFACES, ListenSpec


@dataclass(frozen=True)
class HostProcess:
    """A process listening on the node itself (kubelet, sshd, ...)."""

    name: str
    port: int
    protocol: str = "TCP"
    interface: str = ALL_INTERFACES


#: Processes present on every node of a stock Kubernetes cluster.
DEFAULT_HOST_PROCESSES = (
    HostProcess(name="sshd", port=22),
    HostProcess(name="kubelet", port=10250),
    HostProcess(name="kube-proxy", port=10256),
    HostProcess(name="containerd", port=35000, interface="127.0.0.1"),
)

#: Extra processes on the control-plane node.
CONTROL_PLANE_PROCESSES = (
    HostProcess(name="kube-apiserver", port=6443),
    HostProcess(name="etcd", port=2379),
    HostProcess(name="etcd-peer", port=2380),
    HostProcess(name="kube-scheduler", port=10259, interface="127.0.0.1"),
    HostProcess(name="kube-controller-manager", port=10257, interface="127.0.0.1"),
)


@dataclass
class Node:
    """A cluster node (VM or bare-metal server)."""

    name: str
    ip: str = ""
    control_plane: bool = False
    labels: dict[str, str] = field(default_factory=dict)
    host_processes: list[HostProcess] = field(default_factory=list)
    #: Names of pods currently scheduled on this node.
    pod_names: list[str] = field(default_factory=list)
    #: Maximum pods per node (the Kubernetes default).
    capacity: int = 110

    def __post_init__(self) -> None:
        if not self.host_processes:
            self.host_processes = list(DEFAULT_HOST_PROCESSES)
            if self.control_plane:
                self.host_processes.extend(CONTROL_PLANE_PROCESSES)
        self.labels.setdefault("kubernetes.io/hostname", self.name)
        if self.control_plane:
            self.labels.setdefault("node-role.kubernetes.io/control-plane", "")

    @property
    def schedulable(self) -> bool:
        """Control-plane nodes are tainted and do not run workloads here."""
        return not self.control_plane

    @property
    def free_capacity(self) -> int:
        return max(0, self.capacity - len(self.pod_names))

    def host_listen_specs(self) -> list[ListenSpec]:
        """The node's own listening sockets, as seen by a hostNetwork pod."""
        return [
            ListenSpec(
                port=process.port,
                protocol=process.protocol,
                interface=process.interface,
                process=process.name,
            )
            for process in self.host_processes
        ]

    def host_port_numbers(self) -> set[int]:
        return {process.port for process in self.host_processes}

    def assign(self, pod_name: str) -> None:
        if pod_name not in self.pod_names:
            self.pod_names.append(pod_name)

    def unassign(self, pod_name: str) -> None:
        if pod_name in self.pod_names:
            self.pod_names.remove(pod_name)
