"""Deterministic fault injection for the evaluation pipeline.

The fault-tolerance layer (per-chart isolation, retry, quarantine, the
process-pool watchdog -- see :mod:`repro.experiments.evaluation`) is only
trustworthy if its failure paths are exercised deterministically.  This
module provides that: a seeded, picklable :class:`FaultPlan` arms named
*fault sites* threaded through the pipeline's hot paths as near-zero-cost
hooks.  When no plan is armed, :func:`fault_point` is a single global load
and ``None`` check; an armed-but-idle plan (sites armed for charts that
never run) adds one dict lookup and a frozenset membership test per call --
the benchmark gate (``benchmarks/run.py --check``) pins the end-to-end
overhead under 2%.

Sites (:data:`FAULT_SITES`) cover every stage a chart analysis passes
through:

``template.parse``
    Template compilation (:func:`repro.helm.template.compile_source`), at
    the actual parse -- a compile-cache hit bypasses the site, exactly like
    it bypasses the cost.
``structured.assemble``
    Dict-native document assembly
    (:func:`repro.helm.structured.assemble_documents`).
``render_cache.read``
    A render-cache *hit* (:meth:`repro.helm.render_cache.RenderCache.render`).
    The ``corrupt`` kind silently corrupts the stored entry instead of
    raising, exercising the cache's corruption detection.
``observe``
    Runtime observation (:meth:`repro.cluster.session.AnalysisSession.observe`).
``rules``
    Rule evaluation (:meth:`repro.core.analyzer.MisconfigurationAnalyzer.analyze_objects`).
``worker.kill``
    The evaluation process-pool worker entry -- the ``kill`` kind terminates
    the worker process mid-task (``os._exit``), producing a genuine
    ``BrokenProcessPool`` in the parent.
``store.read``
    A result-store lookup (:meth:`repro.store.ResultStore.read`).  The
    ``corrupt`` kind corrupts the on-disk entry *before* the verified read
    (``corruption`` selects truncation, a payload bit-flip, or schema
    version skew), exercising the store's detect/evict/recompute contract;
    ``error`` models an unreadable entry (treated as a miss, never fatal).
``store.write``
    A result-store publish (:meth:`repro.store.ResultStore.write`), fired
    between the temp-file fsync and the atomic rename -- a ``kill`` fault in
    a pool worker is therefore a genuine mid-write crash: the durable temp
    file exists but no partial entry is ever visible.  ``error`` degrades
    gracefully (the write is abandoned and counted, the computation is
    unaffected).

Faults are scoped: the pipeline wraps each chart attempt in
:func:`fault_scope` with the chart key (``"dataset/name"``) and the attempt
number, and a :class:`FaultSpec` fires only while ``attempt <=
spec.attempts`` -- so "fail twice then succeed" retry scenarios are exactly
reproducible, in-process and across respawned worker pools alike (the
parent owns the attempt counter and ships it with every task).

The chaos differential suite (``tests/experiments/test_fault_isolation.py``)
uses this module to prove the fault-isolation invariant: under any injected
plan, every healthy chart's report is byte-identical to a fault-free run.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

#: The named fault sites, in pipeline order.
TEMPLATE_PARSE = "template.parse"
STRUCTURED_ASSEMBLE = "structured.assemble"
RENDER_CACHE_READ = "render_cache.read"
OBSERVE = "observe"
RULES = "rules"
WORKER_KILL = "worker.kill"
STORE_READ = "store.read"
STORE_WRITE = "store.write"

FAULT_SITES: tuple[str, ...] = (
    TEMPLATE_PARSE,
    STRUCTURED_ASSEMBLE,
    RENDER_CACHE_READ,
    OBSERVE,
    RULES,
    WORKER_KILL,
    STORE_READ,
    STORE_WRITE,
)

#: Fault kinds.  ``error`` raises :class:`InjectedFault`; ``hang`` sleeps
#: ``hang_s`` seconds then continues (a stall, not a failure -- the
#: watchdog's job is to turn it into one); ``kill`` terminates the current
#: *worker* process (outside a pool worker it degrades to ``error`` so a
#: misdirected plan cannot take down the parent or a test runner);
#: ``corrupt`` is inert at :func:`fault_point` -- only sites with an
#: explicit corruption hook (the render cache) act on it.
KIND_ERROR = "error"
KIND_HANG = "hang"
KIND_KILL = "kill"
KIND_CORRUPT = "corrupt"

FAULT_KINDS: tuple[str, ...] = (KIND_ERROR, KIND_HANG, KIND_KILL, KIND_CORRUPT)

#: Corruption modes a ``corrupt`` spec can request at sites that own a
#: corruption hook.  ``truncate`` cuts the entry short (a torn write),
#: ``bitflip`` flips one payload byte (silent media corruption), ``version``
#: rewrites the entry header with a skewed schema version (a stale store).
CORRUPT_TRUNCATE = "truncate"
CORRUPT_BITFLIP = "bitflip"
CORRUPT_VERSION = "version"

CORRUPTION_MODES: tuple[str, ...] = (CORRUPT_TRUNCATE, CORRUPT_BITFLIP, CORRUPT_VERSION)


class InjectedFault(Exception):
    """An armed fault site fired.

    Carries the site, the chart key the scope was set to (``None`` outside
    any scope) and the attempt number, so failure records and tests can
    assert exactly which injection they observed.
    """

    def __init__(self, site: str, key: str | None = None, attempt: int = 1) -> None:
        self.site = site
        self.key = key
        self.attempt = attempt
        super().__init__(f"injected fault at {site} (chart={key!r}, attempt={attempt})")


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: a site, the charts it hits, and how it fails.

    ``charts`` is a collection of ``"dataset/name"`` keys (``None`` = every
    chart).  The spec fires while the ambient attempt number is ``<=
    attempts``, so ``attempts=1`` models a transient fault healed by one
    retry and a large ``attempts`` models a poison chart that must be
    quarantined.
    """

    site: str
    charts: tuple[str, ...] | None = None
    attempts: int = 1
    kind: str = KIND_ERROR
    hang_s: float = 30.0
    corruption: str = CORRUPT_TRUNCATE

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(f"unknown fault site {self.site!r}; expected one of {FAULT_SITES}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")
        if self.corruption not in CORRUPTION_MODES:
            raise ValueError(
                f"unknown corruption mode {self.corruption!r}; expected one of {CORRUPTION_MODES}"
            )
        if self.charts is not None:
            object.__setattr__(self, "charts", tuple(self.charts))

    def matches(self, key: str | None, attempt: int) -> bool:
        """True when this spec fires for ``key`` on attempt ``attempt``."""
        if attempt > self.attempts:
            return False
        return self.charts is None or key in self.charts


class FaultPlan:
    """A deterministic, picklable set of armed :class:`FaultSpec` entries.

    The plan is pure data: whether a site fires depends only on the spec,
    the ambient chart key and the attempt number -- never on wall clock,
    randomness or mutable plan state -- so a sweep replays identically
    across serial runs, thread pools and respawned process pools.  ``seed``
    is carried for plan-construction determinism bookkeeping (plans built
    from a seeded sampler record the seed they came from).
    """

    def __init__(self, *specs: FaultSpec, seed: int = 2025) -> None:
        self.specs = tuple(specs)
        self.seed = seed
        self._by_site: dict[str, tuple[FaultSpec, ...]] = {}
        for spec in self.specs:
            self._by_site[spec.site] = self._by_site.get(spec.site, ()) + (spec,)

    def __reduce__(self):
        return (_rebuild_plan, (self.specs, self.seed))

    def sites(self) -> tuple[str, ...]:
        """The distinct sites this plan arms, in spec order."""
        seen: dict[str, None] = {}
        for spec in self.specs:
            seen.setdefault(spec.site, None)
        return tuple(seen)

    def spec_firing(self, site: str, key: str | None, attempt: int) -> FaultSpec | None:
        """The first spec armed at ``site`` that fires for ``key``/``attempt``."""
        for spec in self._by_site.get(site, ()):
            if spec.matches(key, attempt):
                return spec
        return None


def _rebuild_plan(specs: tuple[FaultSpec, ...], seed: int) -> FaultPlan:
    return FaultPlan(*specs, seed=seed)


#: The armed plan (process-global) and the ambient chart scope (per-thread).
_ARMED: FaultPlan | None = None
_SCOPE = threading.local()
#: Set by the evaluation pool worker entry: only there may ``kill`` faults
#: actually terminate the process.
_IN_POOL_WORKER = False


def arm(plan: FaultPlan | None) -> None:
    """Install ``plan`` as the process-wide armed plan (``None`` disarms)."""
    global _ARMED
    _ARMED = plan


def disarm() -> None:
    """Remove the armed plan; every fault site goes back to free."""
    arm(None)


def armed_plan() -> FaultPlan | None:
    """The currently armed plan, if any."""
    return _ARMED


@contextmanager
def plan_armed(plan: FaultPlan | None) -> Iterator[None]:
    """Arm ``plan`` for the duration of the block, restoring the previous plan."""
    global _ARMED
    previous = _ARMED
    _ARMED = plan
    try:
        yield
    finally:
        _ARMED = previous


@contextmanager
def fault_scope(key: str | None, attempt: int = 1) -> Iterator[None]:
    """Set the ambient chart key / attempt the fault sites key on.

    The evaluation pipeline wraps every per-chart attempt in one of these;
    outside any scope the key is ``None``, which only matches specs armed
    for *all* charts (``charts=None``).
    """
    previous = (getattr(_SCOPE, "key", None), getattr(_SCOPE, "attempt", 1))
    _SCOPE.key = key
    _SCOPE.attempt = attempt
    try:
        yield
    finally:
        _SCOPE.key, _SCOPE.attempt = previous


def current_scope() -> tuple[str | None, int]:
    """The ambient ``(chart key, attempt)`` fault sites see right now."""
    return (getattr(_SCOPE, "key", None), getattr(_SCOPE, "attempt", 1))


def mark_pool_worker() -> None:
    """Declare this process an evaluation pool worker (enables ``kill``)."""
    global _IN_POOL_WORKER
    _IN_POOL_WORKER = True


def fault_point(site: str) -> None:
    """The near-zero-cost hook threaded through the pipeline's hot paths.

    Disarmed: one global load and a ``None`` check.  Armed: a dict lookup,
    then a spec match against the ambient :func:`fault_scope`.  A firing
    spec raises :class:`InjectedFault` (``error``), sleeps (``hang``), or
    terminates the worker process (``kill``; degrades to ``error`` outside
    a pool worker).  ``corrupt`` specs never fire here -- sites with a
    corruption hook query :func:`corruption_requested` instead.
    """
    plan = _ARMED
    if plan is None:
        return
    specs = plan._by_site.get(site)
    if not specs:
        return
    key = getattr(_SCOPE, "key", None)
    attempt = getattr(_SCOPE, "attempt", 1)
    for spec in specs:
        if spec.kind == KIND_CORRUPT or not spec.matches(key, attempt):
            continue
        if spec.kind == KIND_HANG:
            time.sleep(spec.hang_s)
            return
        if spec.kind == KIND_KILL and _IN_POOL_WORKER:
            os._exit(3)
        raise InjectedFault(site, key, attempt)


def corruption_requested(site: str) -> bool:
    """True when an armed ``corrupt`` spec fires for ``site`` in this scope.

    Queried by sites that own a corruption hook (the render cache corrupts
    its stored entry, then must *detect* the corruption instead of serving
    it).  Kept separate from :func:`fault_point` so corruption is silent --
    the failure, if any, must come from the detection logic under test.
    """
    plan = _ARMED
    if plan is None:
        return False
    specs = plan._by_site.get(site)
    if not specs:
        return False
    key, attempt = current_scope()
    return any(
        spec.kind == KIND_CORRUPT and spec.matches(key, attempt) for spec in specs
    )


def corruption_mode(site: str) -> str | None:
    """The corruption mode of the first firing ``corrupt`` spec at ``site``.

    ``None`` when no corruption is requested in the ambient scope.  Sites
    with mode-aware corruption hooks (the result store) use this instead of
    :func:`corruption_requested` to pick *how* to damage their entry --
    truncation, bit-flip or schema version skew (:data:`CORRUPTION_MODES`).
    """
    plan = _ARMED
    if plan is None:
        return None
    specs = plan._by_site.get(site)
    if not specs:
        return None
    key, attempt = current_scope()
    for spec in specs:
        if spec.kind == KIND_CORRUPT and spec.matches(key, attempt):
            return spec.corruption
    return None
