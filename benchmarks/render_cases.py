"""Render-pipeline benchmark cases: compile cache, chart cache, all-pairs.

Used by ``run.py`` to record the PR-2 and PR-4 trajectory into
``BENCH_connectivity.json``:

* ``template_compile`` -- lex/parse/compile a chart's template sources cold
  vs fetching the compiled closures from the content-keyed cache;
* ``chart_render`` -- full chart render (template evaluation + document
  assembly + typed-object construction) cold vs the memoized copy-on-read
  path;
* ``catalog_render`` -- the cold catalogue render slice (every chart of the
  290-chart catalogue rendered once, bypassing the render cache): classic
  text pipeline vs the dict-native structured pipeline (PR 4);
* ``all_pairs`` -- the whole-fleet reachability surface, class-grouped
  (one computation per source equivalence class) vs per-source
  ``endpoints_from`` on the same warmed matrix.
"""

from __future__ import annotations

import time

from connectivity_cases import build_fleet, median_ns

from repro.datasets import build_application, build_catalog
from repro.datasets.spec import InjectionPlan
from repro.helm import (
    clear_template_cache,
    compile_source,
    render_chart,
    shared_render_cache,
)


def _bench_app():
    """A representative catalogue application (several misconfigurations)."""
    return build_application(
        name="bench-app",
        organization="Bench Org",
        plan=InjectionPlan(m1=3, m2=1, m3=2, m4a=1, m5a=1, m6=True),
        archetype="microservices",
        dataset="Bench",
    )


def bench_template_compile(repeats: int = 5) -> dict[str, float]:
    """Cold template compilation vs content-keyed cache lookups."""
    templates = [(t.name, t.source) for t in _bench_app().chart.templates]

    def run_cold():
        clear_template_cache()
        for name, source in templates:
            compile_source(source, name)

    def run_cached():
        for name, source in templates:
            compile_source(source, name)

    cold = median_ns(run_cold, repeats) / len(templates)
    # run_cold clears at the start of each repeat and compiles after, so the
    # cache is warm here and the cached case measures pure lookups.
    cached = median_ns(run_cached, repeats) / len(templates)
    return {"template_compile/cold": cold, "template_compile/cached": cached}


def bench_chart_render(repeats: int = 5) -> dict[str, float]:
    """Full chart render: cold pipeline vs memoized copy-on-read path."""
    chart = _bench_app().chart
    fingerprint = chart.fingerprint()

    def run_cold():
        clear_template_cache()
        shared_render_cache().clear()
        render_chart(chart, fingerprint=fingerprint)

    def run_warm():
        render_chart(chart, fingerprint=fingerprint)

    run_warm()  # populate both caches once
    warm = median_ns(run_warm, repeats)
    cold = median_ns(run_cold, repeats)
    run_warm()  # leave the shared cache warm for later suites
    return {"chart_render/cold": cold, "chart_render/warm": warm}


def bench_catalog_render(repeats: int = 3, sample: int | None = None) -> dict[str, float]:
    """The cold catalogue render slice: text pipeline vs structured pipeline.

    Renders every catalogue chart once per repeat with the render cache
    bypassed (the compile cache stays warm -- in a real sweep the handful of
    shared template sources compile once).  This is the slice that dominated
    ``evaluation/current_s`` after PR 3; the structured path skips the
    ``toYaml`` dumps and most of the document parse.  Reported as ns per
    chart; ``run.py`` derives the ``catalog_render`` speedup from the ratio.
    """
    applications = build_catalog()
    if sample is not None:
        applications = applications[:sample]
    charts = [app.chart for app in applications]
    for chart in charts:  # warm the compile cache for both cases
        render_chart(chart, cached=False, structured=False)

    def run_path(structured: bool) -> float:
        timings = []
        for _ in range(repeats):
            start = time.perf_counter()
            for chart in charts:
                render_chart(chart, cached=False, structured=structured)
            timings.append((time.perf_counter() - start) * 1e9)
        timings.sort()
        return timings[len(timings) // 2] / len(charts)

    return {
        "catalog_render/charts": float(len(charts)),
        "catalog_render/text": run_path(False),
        "catalog_render/structured": run_path(True),
    }


def bench_all_pairs(pod_count: int, repeats: int = 5) -> dict[str, float]:
    """Class-grouped all-pairs vs the PR-1 per-source enumeration.

    Both run on the same matrix with a warm decision memo; the per-source
    case is the pre-grouping implementation (scan every destination for
    every source), the grouped case answers from memoized class surfaces.
    """
    fleet = build_fleet(pod_count)
    network = fleet.compiled_network()
    matrix = network.reachability_matrix(fleet.policies, fleet.pods, fleet.bindings)
    matrix.all_pairs()  # warm the shared decision memo for both cases

    def run_per_source():
        for source in matrix.pods:
            matrix._endpoints_from_uncached(source)

    def run_grouped():
        # Clear the surface memo so every repeat re-derives each class's
        # surface (the decision memo stays warm, matching the other case).
        matrix._class_surfaces.clear()
        matrix.all_pairs()

    return {
        "all_pairs/per_source": median_ns(run_per_source, repeats) / pod_count,
        "all_pairs/grouped": median_ns(run_grouped, repeats) / pod_count,
    }


def run_render_suite(
    repeats: int = 5, fleet_sizes=(240, 1000), catalog_sample: int | None = None
) -> dict[str, float]:
    """All render-pipeline cases, as {case: ns_per_op}."""
    results: dict[str, float] = {}
    results.update(bench_template_compile(repeats))
    results.update(bench_chart_render(repeats))
    results.update(bench_catalog_render(max(repeats // 2, 1), sample=catalog_sample))
    for pod_count in fleet_sizes:
        for case, value in bench_all_pairs(pod_count, repeats).items():
            results[f"{case}/pods={pod_count}"] = value
    return results
