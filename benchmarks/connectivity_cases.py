"""Shared scenario builder and timing helpers for the connectivity benchmarks.

Used by ``test_bench_connectivity.py`` (pytest harness) and ``run.py`` (the
JSON-writing bench helper) so both measure exactly the same cases:

* ``check_ingress`` -- single policy decisions, naive scan vs compiled index;
* ``reachable_endpoints`` -- the full lateral-movement surface of one source
  pod, pre-PR per-attempt path vs the cached ``ReachabilityMatrix``;
* ``matrix_sources`` -- many sources sharing one matrix (the all-pairs use
  case), where the decision memo amortizes across sources.  Three arms:
  per-source naive scans, the grouped per-object matrix walk
  (``vectorized=False``), and the default bitset-vectorized engine sharing
  an epoch-keyed :class:`EndpointUniverse` cache exactly as the cluster
  facade does.

Fleets are built directly from runtime primitives (no full cluster install)
so a thousand-pod case sets up in milliseconds and the timings isolate the
connectivity engine itself.  The 10k/50k fleets used by the ``slow``
benchmarks skip the per-service selector scan during setup (bindings are
grouped by app, provably identical output) so even a 50k-pod fleet builds
in seconds.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass

from repro.cluster import (
    ClusterNetwork,
    EndpointController,
    NetworkPolicyEnforcer,
    Node,
    PolicyIndex,
    RunningPod,
    ServiceBinding,
    Socket,
)
from repro.k8s import (
    Container,
    ContainerPort,
    LabelSet,
    NetworkPolicy,
    ObjectMeta,
    Pod,
    PodSpec,
    Service,
    ServicePort,
    allow_ports_policy,
    deny_all_policy,
    equality_selector,
)

NAMESPACES = ("default", "prod", "staging", "infra")


@dataclass
class Fleet:
    """One synthetic cluster state: pods, services, bindings, policies."""

    pods: list[RunningPod]
    attacker: RunningPod
    policies: list[NetworkPolicy]
    bindings: list
    namespace_labels: dict[str, dict[str, str]]
    services: list[Service]

    def naive_network(self) -> ClusterNetwork:
        """The pre-PR reference engine (uncompiled per-attempt scans)."""
        return ClusterNetwork(
            enforcer=NetworkPolicyEnforcer(self.namespace_labels, use_index=False)
        )

    def compiled_network(self) -> ClusterNetwork:
        return ClusterNetwork(enforcer=NetworkPolicyEnforcer(self.namespace_labels))

    def index(self) -> PolicyIndex:
        return PolicyIndex(self.policies)


def _running_pod(
    name: str,
    namespace: str,
    labels: dict[str, str],
    node: Node,
    ip: str,
    sockets: list[Socket],
    app: str = "",
    host_network: bool = False,
) -> RunningPod:
    pod = Pod(
        metadata=ObjectMeta(name=name, namespace=namespace, labels=LabelSet(labels)),
        spec=PodSpec(
            containers=[
                Container(
                    name="main",
                    image="bench/app",
                    ports=[ContainerPort(8080, name="http")],
                )
            ],
            host_network=host_network,
        ),
    )
    return RunningPod(pod=pod, ip=ip, node=node, sockets=sockets, app=app)


def build_fleet(pod_count: int) -> Fleet:
    """A deterministic fleet of ``pod_count`` pods across apps and namespaces.

    Roughly one app per ten pods; half the apps carry an allow-port policy,
    every namespace carries a default-deny, so the decision mix contains
    default-allow, rule-allow and deny outcomes (as in the Figure 4b runs).
    """
    node = Node(name="bench-node")
    app_count = max(pod_count // 10, 4)
    namespace_labels = {
        namespace: {"kubernetes.io/metadata.name": namespace} for namespace in NAMESPACES
    }
    pods: list[RunningPod] = []
    services: list[Service] = []
    policies: list[NetworkPolicy] = []

    for app_id in range(app_count):
        namespace = NAMESPACES[app_id % len(NAMESPACES)]
        app = f"app-{app_id}"
        labels = {"app": app, "tier": "backend" if app_id % 2 else "frontend"}
        services.append(
            Service(
                metadata=ObjectMeta(name=app, namespace=namespace),
                selector=equality_selector(**labels),
                ports=[ServicePort(port=80, target_port=8080, name="http")],
            )
        )
        if app_id % 2 == 0:
            policies.append(
                allow_ports_policy(
                    f"allow-{app}",
                    equality_selector(app=app),
                    [8080],
                    namespace=namespace,
                    peer_selector=equality_selector(role="client"),
                )
            )
    for namespace in NAMESPACES[2:]:
        policies.append(deny_all_policy(f"deny-all-{namespace}", namespace=namespace))

    for pod_id in range(pod_count):
        app_id = pod_id % app_count
        namespace = NAMESPACES[app_id % len(NAMESPACES)]
        app = f"app-{app_id}"
        labels = {"app": app, "tier": "backend" if app_id % 2 else "frontend"}
        sockets = [Socket(port=8080, protocol="TCP", container="main", process="srv")]
        if pod_id % 3 == 0:
            sockets.append(
                Socket(port=9090, protocol="TCP", container="main", process="metrics")
            )
        if pod_id % 7 == 0:
            sockets.append(
                Socket(
                    port=6060,
                    protocol="TCP",
                    interface="127.0.0.1",
                    container="main",
                    process="debug",
                )
            )
        pods.append(
            _running_pod(
                f"{app}-{pod_id // app_count}",
                namespace,
                labels,
                node,
                f"10.1.{pod_id // 250}.{pod_id % 250 + 1}",
                sockets,
                app=app,
            )
        )

    attacker = _running_pod(
        "attacker",
        "default",
        {"app": "attacker", "role": "client"},
        node,
        "10.9.9.9",
        [],
    )
    pods_with_attacker = pods + [attacker]
    if pod_count > 1000:
        # ``EndpointController.bind`` scans every pod per service -- O(apps ×
        # pods) setup that would dominate the slow 10k/50k fleets.  The fleet
        # is generated one app per group, so group-by-app binding produces
        # the identical backend lists in the identical order
        # (``test_bench_check.py`` pins the equivalence at a crossover size).
        bindings = _grouped_bindings(services, pods_with_attacker)
    else:
        bindings = EndpointController().bind(services, pods_with_attacker)
    return Fleet(
        pods=pods_with_attacker,
        attacker=attacker,
        policies=policies,
        bindings=bindings,
        namespace_labels=namespace_labels,
        services=services,
    )


def _grouped_bindings(services, pods) -> list[ServiceBinding]:
    """``EndpointController.bind`` semantics for fleet-shaped inputs, O(pods).

    Pods are bucketed by ``(namespace, app label)`` in list order; each
    service's selector is then evaluated once against its app bucket's
    representative (all members share one label set by construction) instead
    of once per pod in the cluster.
    """
    by_app: dict[tuple[str, str], list[RunningPod]] = {}
    for pod in pods:
        by_app.setdefault((pod.namespace, pod.labels.get("app", "")), []).append(pod)
    bindings: list[ServiceBinding] = []
    for service in services:
        backends: list[RunningPod] = []
        if service.has_selector:
            bucket = by_app.get((service.namespace, service.name), [])
            if bucket and service.selector.matches(bucket[0].labels):
                backends = list(bucket)
        bindings.append(ServiceBinding(service=service, backends=backends))
    return bindings


def sample_attempts(fleet: Fleet, count: int = 200) -> list[tuple]:
    """A deterministic mix of (source, destination, port) attempt triples."""
    pods = fleet.pods
    attempts = []
    for i in range(count):
        source = pods[(i * 7) % len(pods)]
        destination = pods[(i * 13 + 1) % len(pods)]
        port = (8080, 9090, 6060, 22)[i % 4]
        attempts.append((source, destination, port))
    return attempts


def median_ns(fn, repeats: int = 5) -> float:
    """Median wall time of ``fn()`` in nanoseconds over ``repeats`` runs."""
    samples = []
    for _ in range(repeats):
        start = time.perf_counter_ns()
        fn()
        samples.append(time.perf_counter_ns() - start)
    return statistics.median(samples)


# ---------------------------------------------------------------------------
# Benchmark cases.  Each returns {case_name: ns_per_op} for one fleet size.
# ---------------------------------------------------------------------------


def bench_check_ingress(fleet: Fleet, repeats: int = 5) -> dict[str, float]:
    """Per-decision cost of check_ingress, naive scan vs compiled index."""
    attempts = sample_attempts(fleet)
    naive = fleet.naive_network().enforcer
    compiled = fleet.compiled_network().enforcer
    policies = fleet.policies
    index = fleet.index()

    def run_naive():
        for source, destination, port in attempts:
            naive.check_ingress(policies, source, destination, port)

    def run_compiled():
        for source, destination, port in attempts:
            compiled.check_ingress(index, source, destination, port)

    run_compiled()  # warm the isolating-set memo once, as in steady state
    return {
        "check_ingress/naive": median_ns(run_naive, repeats) / len(attempts),
        "check_ingress/compiled": median_ns(run_compiled, repeats) / len(attempts),
    }


def bench_reachable_endpoints(fleet: Fleet, repeats: int = 5) -> dict[str, float]:
    """Full lateral-movement surface of one source, pre-PR path vs matrix."""
    naive = fleet.naive_network()
    compiled = fleet.compiled_network()

    def run_naive():
        naive.reachable_endpoints(
            fleet.policies, fleet.attacker, fleet.pods, fleet.bindings
        )

    def run_compiled():
        compiled.reachable_endpoints(
            fleet.policies, fleet.attacker, fleet.pods, fleet.bindings
        )

    return {
        "reachable_endpoints/naive": median_ns(run_naive, repeats),
        "reachable_endpoints/compiled": median_ns(run_compiled, repeats),
    }


def bench_matrix_sources(
    fleet: Fleet, source_count: int = 16, repeats: int = 5
) -> dict[str, float]:
    """Many sources sharing one ReachabilityMatrix vs per-source naive scans.

    ``matrix_sources/grouped`` is the per-object matrix walk
    (``vectorized=False``, the pre-PR compiled engine);
    ``matrix_sources/compiled`` is the default bitset-vectorized engine.
    The vectorized arm shares an epoch-keyed universe cache across matrix
    constructions, exactly as ``Cluster.reachability_matrix`` does, so the
    median measures the steady state the facade actually serves; the
    first (cold) repeat still pays the universe build.
    """
    naive = fleet.naive_network()
    compiled = fleet.compiled_network()
    sources = fleet.pods[:: max(len(fleet.pods) // source_count, 1)][:source_count]
    universe_cache: dict = {}

    def run_naive():
        for source in sources:
            naive.reachable_endpoints(
                fleet.policies, source, fleet.pods, fleet.bindings
            )

    def run_grouped():
        matrix = compiled.reachability_matrix(
            fleet.policies, fleet.pods, fleet.bindings, vectorized=False
        )
        for source in sources:
            matrix.endpoints_from(source)

    def run_compiled():
        matrix = compiled.reachability_matrix(
            fleet.policies,
            fleet.pods,
            fleet.bindings,
            universe_cache=universe_cache,
        )
        for source in sources:
            matrix.endpoints_from(source)

    return {
        "matrix_sources/naive": median_ns(run_naive, repeats) / len(sources),
        "matrix_sources/grouped": median_ns(run_grouped, repeats) / len(sources),
        "matrix_sources/compiled": median_ns(run_compiled, repeats) / len(sources),
    }


def run_size(pod_count: int, repeats: int = 5) -> dict[str, float]:
    """All connectivity cases for one fleet size, as {case: ns_per_op}."""
    fleet = build_fleet(pod_count)
    results: dict[str, float] = {}
    results.update(bench_check_ingress(fleet, repeats))
    results.update(bench_reachable_endpoints(fleet, repeats))
    results.update(bench_matrix_sources(fleet, repeats=repeats))
    return results


def run_large_size(pod_count: int, repeats: int = 2) -> dict[str, float]:
    """The matrix arms only, for the slow 10k/50k fleets.

    The per-source naive scan is omitted: at these sizes it would take
    minutes per repeat without adding information (its scaling is pinned by
    the 30/240/1000 series).  Grouped vs vectorized is the comparison the
    big fleets exist to measure.
    """
    fleet = build_fleet(pod_count)
    compiled = fleet.compiled_network()
    sources = fleet.pods[:: max(len(fleet.pods) // 16, 1)][:16]
    universe_cache: dict = {}

    def run_grouped():
        matrix = compiled.reachability_matrix(
            fleet.policies, fleet.pods, fleet.bindings, vectorized=False
        )
        for source in sources:
            matrix.endpoints_from(source)

    def run_compiled():
        matrix = compiled.reachability_matrix(
            fleet.policies,
            fleet.pods,
            fleet.bindings,
            universe_cache=universe_cache,
        )
        for source in sources:
            matrix.endpoints_from(source)

    return {
        "matrix_sources/grouped": median_ns(run_grouped, repeats) / len(sources),
        "matrix_sources/compiled": median_ns(run_compiled, repeats) / len(sources),
    }


def format_table(per_size: dict[int, dict[str, float]]) -> str:
    """Render the before/after throughput table printed by the benchmarks."""
    cases = ("check_ingress", "reachable_endpoints", "matrix_sources")
    lines = [
        f"{'case':<22} {'pods':>6} {'naive ns/op':>14} {'compiled ns/op':>15} {'speedup':>9}"
    ]
    for case in cases:
        for pod_count, results in sorted(per_size.items()):
            if f"{case}/naive" not in results:
                continue
            naive = results[f"{case}/naive"]
            compiled = results[f"{case}/compiled"]
            lines.append(
                f"{case:<22} {pod_count:>6} {naive:>14,.0f} {compiled:>15,.0f} "
                f"{naive / compiled:>8.1f}x"
            )
    for pod_count, results in sorted(per_size.items()):
        grouped = results.get("matrix_sources/grouped")
        compiled = results.get("matrix_sources/compiled")
        if grouped is None or not compiled:
            continue
        lines.append(
            f"{'matrix vectorized':<22} {pod_count:>6} {grouped:>14,.0f} "
            f"{compiled:>15,.0f} {grouped / compiled:>8.1f}x"
        )
    return "\n".join(lines)
