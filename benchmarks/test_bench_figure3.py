"""Benchmark / reproduction of Figure 3: the most misconfigured applications."""

from __future__ import annotations

from repro.experiments import figure3a, figure3b, format_figure3


def test_figure3a_top_applications_by_count(benchmark, full_evaluation_result):
    summary = full_evaluation_result.summary
    ranked = benchmark(figure3a, summary, 10)

    print("\n" + "=" * 78)
    print("Figure 3a - ten applications with the highest number of misconfigurations")
    print("=" * 78)
    print(format_figure3(ranked, metric="total"))

    assert len(ranked) == 10
    totals = [entry.total for entry in ranked]
    assert totals == sorted(totals, reverse=True)
    # The paper's most misconfigured chart is kube-prometheus-stack (Prometheus
    # Community) followed by the kube-prometheus variants (Bitnami).
    assert ranked[0].label.startswith("kube-prometheus-stack")
    assert any(entry.label.startswith("kube-prometheus ") for entry in ranked)
    # Every top application lacks network policies (M6), as in the paper.
    assert all(any(cls.value == "M6" for cls in entry.counts) for entry in ranked)


def test_figure3b_top_applications_by_types(benchmark, full_evaluation_result):
    summary = full_evaluation_result.summary
    ranked = benchmark(figure3b, summary, 10)

    print("\n" + "=" * 78)
    print("Figure 3b - ten applications with the most misconfiguration types")
    print("=" * 78)
    print(format_figure3(ranked, metric="types"))

    assert len(ranked) == 10
    types = [entry.types for entry in ranked]
    assert types == sorted(types, reverse=True)
    assert types[0] >= 6
    top_names = {entry.label.split(" (")[0] for entry in ranked}
    assert {"kube-prometheus", "kube-prometheus-stack"} & top_names
