"""Benchmark for the Table 1 catalogue and single-chart analysis latency."""

from __future__ import annotations

from repro.core import CATALOG, TABLE_ORDER, MisconfigurationAnalyzer
from repro.datasets import InjectionPlan, build_application


def test_table1_catalogue_and_single_chart_analysis(benchmark):
    """Analyze one representative chart end to end (render + install + double
    snapshot + rules) and print the Table 1 catalogue alongside the findings."""
    plan = InjectionPlan(m1=2, m2=1, m3=1, m4a=1, m4b=1, m4c=1, m5a=1, m5b=1, m5c=1,
                         m5d=1, m6=True, m7=1)
    app = build_application("table1-fixture", "Fixtures", plan, archetype="microservices")

    def analyze():
        return MisconfigurationAnalyzer().analyze_chart(app.chart, behaviors=app.behaviors)

    report = benchmark(analyze)

    print("\n" + "=" * 78)
    print("Table 1 - identified network misconfigurations (catalogue + example findings)")
    print("=" * 78)
    for cls in TABLE_ORDER:
        descriptor = CATALOG[cls]
        detected = len(report.of_class(cls))
        print(f"{cls.value:<4} {descriptor.description:<45} "
              f"attacks: {', '.join(descriptor.attacks):<50} detected: {detected}")

    assert report.classes_present() == set(TABLE_ORDER) - {next(c for c in TABLE_ORDER if c.value == 'M4*')}
