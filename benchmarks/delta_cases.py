"""Benchmark cases for the incremental delta evaluator (PR 9).

Measures what watch mode actually buys: how cheap a delta round is
relative to the from-scratch sweep it replaces.

* ``delta/full_sweep_s`` -- a cold from-scratch sweep over the catalogue,
  the reference denominator;
* ``delta/noop_s`` -- a delta round over a byte-identical *rebuilt*
  catalogue (fresh objects, equal content) against a warm evaluator: pure
  fingerprint classification plus the cluster-wide re-pass, every chart
  reused.  This is the steady-state cost of a watch round where nothing
  changed, and the headline ``delta/noop_ratio`` must stay ≤ 5% of the
  full sweep (``DELTA_NOOP_RATIO_LIMIT`` in ``run.py --check``);
* ``delta/edit4_s`` -- a delta round after salting four charts' values:
  classification plus exactly four recomputes, demonstrating O(changed)
  rather than O(catalogue) cost.

The rebuilt/salted catalogues are constructed *outside* the timed region;
the timer bills only what the evaluator itself does -- including
re-hashing every chart's fingerprint, which is honest because a real
watch round rescans its inputs every time.
"""

from __future__ import annotations

import copy
import dataclasses
import time

#: Charts salted for the O(changed) case (clamped to the sample size).
EDIT_COUNT = 4


def _clear_render_caches() -> None:
    from repro.helm import clear_skeleton_parse_memo, clear_template_cache, shared_render_cache
    from repro.k8s import clear_intern_table

    clear_template_cache()
    shared_render_cache().clear()
    clear_skeleton_parse_memo()
    clear_intern_table()


def _rebuilt(applications):
    """Byte-identical fresh objects: every cached fingerprint is discarded."""
    from repro.helm.chart import ChartTemplate

    return [
        dataclasses.replace(
            app,
            chart=dataclasses.replace(
                app.chart,
                values=copy.deepcopy(app.chart.values),
                templates=[
                    ChartTemplate(t.name, t.source) for t in app.chart.templates
                ],
            ),
        )
        for app in applications
    ]


def _salted(applications, count: int, salt: str):
    """The catalogue with ``count`` charts' values salted (they re-render)."""
    mutated = _rebuilt(applications)
    for index in range(min(count, len(mutated))):
        app = mutated[index]
        values = dict(app.chart.values)
        values["benchDeltaSalt"] = salt
        mutated[index] = dataclasses.replace(
            app, chart=dataclasses.replace(app.chart, values=values)
        )
    return mutated


def run_delta_suite(sample: int | None = None, repeats: int = 3) -> dict[str, float]:
    """Time delta rounds against the from-scratch sweep, seconds per round."""
    from repro.datasets import build_catalog
    from repro.experiments import DeltaEvaluator, run_full_evaluation

    applications = build_catalog()
    if sample is not None:
        applications = applications[:sample]
    edits = min(EDIT_COUNT, len(applications))

    full = float("inf")
    for _ in range(max(repeats, 1)):
        _clear_render_caches()
        start = time.perf_counter()
        run_full_evaluation(applications=applications)
        full = min(full, time.perf_counter() - start)

    evaluator = DeltaEvaluator()
    evaluator.evaluate(applications)

    noop = float("inf")
    for _ in range(max(repeats, 1)):
        rebuilt = _rebuilt(applications)
        start = time.perf_counter()
        result = evaluator.evaluate(rebuilt)
        noop = min(noop, time.perf_counter() - start)
        if result.delta_stats["recomputed"]:
            raise RuntimeError(
                "no-op delta recomputed "
                f"{result.delta_stats['recomputed']} charts -- the rebuild is "
                "not byte-identical and the timing is meaningless"
            )

    edit = float("inf")
    for round_index in range(max(repeats, 1)):
        # A fresh salt per repeat: the previous round's salted charts move
        # again, so every timed round recomputes exactly ``edits`` charts.
        mutated = _salted(applications, edits, f"round-{round_index}")
        start = time.perf_counter()
        evaluator.evaluate(mutated)
        edit = min(edit, time.perf_counter() - start)

    results = {
        "charts": float(len(applications)),
        "delta/full_sweep_s": round(full, 4),
        "delta/noop_s": round(noop, 4),
        "delta/edit4_s": round(edit, 4),
    }
    if full:
        results["delta/noop_ratio"] = round(noop / full, 4)
        results["delta/edit4_ratio"] = round(edit / full, 4)
    return results
