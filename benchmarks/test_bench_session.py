"""Benchmarks of the analysis-session subsystem: pooling + fast observation."""

from __future__ import annotations

from repro.cluster import AnalysisSession, Cluster, OBSERVE_FAST, OBSERVE_FULL
from repro.datasets import InjectionPlan, build_application
from repro.helm import render_chart
from repro.probe import RuntimeScanner


def _app():
    return build_application(
        "bench-app", "Fixtures", InjectionPlan(m1=2, m2=1, m6=True), archetype="microservices"
    )


def test_bench_observe_fresh_full(benchmark):
    """The seed shape: throw-away cluster + install + double snapshot."""
    app = _app()
    rendered = render_chart(app.chart)

    def observe():
        cluster = Cluster(name="analysis", behaviors=app.behaviors)
        cluster.install(render_chart(app.chart))
        return RuntimeScanner(cluster).observe(rendered.release.name)

    assert benchmark(observe).pods()


def test_bench_observe_pooled_full(benchmark):
    """Recycled cluster skeleton, full install + double snapshot."""
    app = _app()
    session = AnalysisSession(observe_mode=OBSERVE_FULL)

    def observe():
        return session.observe(render_chart(app.chart), app.behaviors)

    assert benchmark(observe).pods()


def test_bench_observe_fast(benchmark):
    """The install-free observation substrate."""
    app = _app()
    session = AnalysisSession(observe_mode=OBSERVE_FAST)

    def observe():
        return session.observe(render_chart(app.chart), app.behaviors)

    assert benchmark(observe).pods()


def test_bench_cluster_reset(benchmark):
    """One reset cycle of an installed cluster skeleton."""
    app = _app()
    rendered = render_chart(app.chart)
    cluster = Cluster(name="analysis", behaviors=app.behaviors)

    def cycle():
        cluster.reset(behaviors=app.behaviors)
        cluster.install(render_chart(app.chart))
        return cluster

    cluster.install(rendered)
    assert benchmark(cycle).running_pods()
