#!/usr/bin/env python
"""Bench helper: run the connectivity benchmark suite, record the trajectory.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/run.py [--full] [--smoke] [--output BENCH_connectivity.json]

Runs the same cases as ``benchmarks/test_bench_connectivity.py`` -- naive
(pre-PR) vs compiled/cached engine for ``check_ingress``,
``reachable_endpoints`` and the ``ReachabilityMatrix`` at three fleet sizes
-- plus the render-pipeline suite (template compile cache, cold vs warm
chart render, the cold catalogue render slice text vs structured,
class-grouped vs per-source all-pairs), the session suite (install/observe
slice: fresh vs pooled clusters vs install-free fast observation), the
delta suite (no-op and edit-k incremental rounds vs the from-scratch
sweep) and an end-to-end Figure 4b sweep over a catalogue sample (the
whole catalogue with ``--full``), then writes median ns/op per case to a
JSON file so future PRs have a perf trajectory to compare against.

The end-to-end sweeps start from *cold* render caches, so the recorded
seconds measure the first pass over a catalogue; warm-path amortization is
captured separately by the ``chart_render/warm`` case.

``--smoke`` runs a seconds-long sanity pass (one repeat, one fleet size, a
tiny catalogue sample) and writes no file unless ``--output`` is given --
wired into CI-style checks via ``tests/smoke``.

The ``analysis`` section records the rule-evaluation slice (reference
rule-at-a-time vs the compiled single-pass engine) and the warm
render-cache hit cost (copy-on-read reference vs shared-reference interned
hits).  ``--check`` runs a smoke pass and compares its per-chart end-to-end
numbers against the committed ``BENCH_connectivity.json`` with a tolerance
band (``--tolerance``, default 3x), exiting non-zero on regression; the
smoke suite (``tests/smoke/test_bench_check.py``) wires it into CI.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from analysis_cases import run_analysis_suite  # noqa: E402
from connectivity_cases import format_table, run_large_size, run_size  # noqa: E402
from delta_cases import run_delta_suite  # noqa: E402
from render_cases import run_render_suite  # noqa: E402
from session_cases import run_session_suite  # noqa: E402

from repro.store import atomic_write_text  # noqa: E402

FLEET_SIZES = (30, 240, 1000)
SMOKE_FLEET_SIZES = (30,)
#: Fleet sizes for the slow matrix-only cases (grouped vs vectorized);
#: run with ``--full``, and marked ``slow`` in the pytest harness.
LARGE_FLEET_SIZES = (10_000, 50_000)


def _clear_render_caches() -> None:
    from repro.helm import clear_skeleton_parse_memo, clear_template_cache, shared_render_cache
    from repro.k8s import clear_intern_table

    clear_template_cache()
    shared_render_cache().clear()
    clear_skeleton_parse_memo()
    clear_intern_table()


def _median_cold(sweep, repeats: int) -> float:
    """Median of ``repeats`` cold runs (caches cleared before each).

    Every run is a genuine first pass over the catalogue; the median only
    absorbs scheduler noise, in line with the per-case median methodology.
    Garbage collection is paused during each timed run (the ``timeit``
    convention) so earlier sweeps' allocation debt is not billed to a later
    shape -- the collector runs between repeats instead.
    """
    import gc
    import statistics

    timings = []
    for _ in range(max(repeats, 1)):
        _clear_render_caches()
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            sweep()
            timings.append(time.perf_counter() - start)
        finally:
            if gc_was_enabled:
                gc.enable()
    return statistics.median(timings)


def bench_netpol_sweep(sample: int | None, repeats: int = 3) -> dict[str, float]:
    """End-to-end Figure 4b sweep, naive vs compiled engine, seconds.

    The arms run as cold pairs and each arm keeps its *minimum*, mirroring
    ``measure_fault_overhead``: running one arm's repeats back-to-back
    before the other's billed whatever drift the machine accumulated
    (allocator growth, cache pressure) entirely to the second arm, which is
    how the compiled path once appeared slower than the reference it
    strictly outworks.  Refinements against subtler versions of the same
    bias: two discarded warm-up pairs (cold sweeps keep settling --
    allocator pools, branch predictors, page cache -- for several runs
    beyond the first, and the transient landed on whichever arm ran
    early), and per-pair order alternation, so neither arm systematically
    occupies the quieter slot of a pair.
    """
    import gc

    from repro.datasets import build_catalog
    from repro.experiments import run_netpol_impact

    applications = build_catalog()
    if sample is not None:
        applications = applications[:sample]

    def timed_cold(compiled: bool) -> float:
        _clear_render_caches()
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            run_netpol_impact(applications=applications, compiled=compiled)
            return time.perf_counter() - start
        finally:
            if gc_was_enabled:
                gc.enable()

    for _ in range(2):  # warm-up pairs, discarded
        timed_cold(True)
        timed_cold(False)
    naive = compiled = float("inf")
    for pair in range(max(repeats, 1)):
        if pair % 2 == 0:
            naive = min(naive, timed_cold(False))
            compiled = min(compiled, timed_cold(True))
        else:
            compiled = min(compiled, timed_cold(True))
            naive = min(naive, timed_cold(False))
    return {
        "charts": float(len(applications)),
        "netpol_impact/naive_s": round(naive, 3),
        "netpol_impact/compiled_s": round(compiled, 3),
    }


def bench_full_evaluation(sample: int | None, repeats: int = 3) -> dict[str, float]:
    """Full-catalogue evaluation: pre-PR shapes vs current, cold caches.

    Three shapes: the PR-1 double-render pipeline, the PR-2 pipeline
    (single render, throw-away cluster + full install/observe per chart),
    and the current default (pooled session, install-free observation).
    """
    from repro.cluster import OBSERVE_FULL
    from repro.core import AnalyzerSettings, MisconfigurationAnalyzer
    from repro.datasets import build_catalog
    from repro.experiments import run_full_evaluation
    from repro.helm import render_chart
    from repro.k8s import Inventory

    applications = build_catalog()
    if sample is not None:
        applications = applications[:sample]
    analyzer = MisconfigurationAnalyzer(
        settings=AnalyzerSettings(observe_mode=OBSERVE_FULL, pooled_clusters=False)
    )

    def render_pre_pr(chart):
        # The pre-PR engine re-parsed every template on every render and
        # round-tripped documents through YAML text: bypass the render
        # cache, drop compiled templates before each render, and pin the
        # text pipeline so the baseline keeps measuring the old cost.
        from repro.helm import clear_template_cache

        clear_template_cache()
        return render_chart(chart, cached=False, structured=False)

    # The pre-PR pipeline rendered every chart twice: once inside
    # analyze_chart and once more for the cluster-wide inventory.
    def sweep_double_render() -> None:
        for app in applications:
            analyzer.analyze_chart(
                app.chart,
                behaviors=app.behaviors,
                dataset=app.dataset,
                rendered=render_pre_pr(app.chart),
            )
            Inventory(render_pre_pr(app.chart).objects)

    double_render = _median_cold(sweep_double_render, repeats)

    # PR-2 shape: single cached render, but a throw-away cluster with a full
    # install + double snapshot per chart.
    def sweep_fresh_full() -> None:
        run_full_evaluation(
            applications=applications,
            analyzer=MisconfigurationAnalyzer(
                settings=AnalyzerSettings(observe_mode=OBSERVE_FULL, pooled_clusters=False)
            ),
        )

    fresh_full = _median_cold(sweep_fresh_full, repeats)

    current = _median_cold(lambda: run_full_evaluation(applications=applications), repeats)
    return {
        "charts": float(len(applications)),
        "evaluation/double_render_s": round(double_render, 3),
        "evaluation/fresh_full_s": round(fresh_full, 3),
        "evaluation/current_s": round(current, 3),
    }


def measure_fault_overhead(sample: int | None, rounds: int = 1) -> dict[str, float]:
    """Armed-but-idle fault hooks vs disarmed: paired cold evaluation sweeps.

    Arms a plan that targets every fault site against a chart key that does
    not exist in the catalogue, so each ``fault_point`` call runs its full
    plan-lookup-and-miss path without ever firing -- the per-sweep tax of
    keeping the robustness hooks armed.  Runs ``rounds`` alternating
    disarmed/armed pairs and keeps the *minimum* per arm: injected noise
    only ever adds time, so the minima are the honest comparison on a busy
    machine.
    """
    import gc

    from repro import faults
    from repro.datasets import build_catalog
    from repro.experiments import run_full_evaluation

    applications = build_catalog()
    if sample is not None:
        applications = applications[:sample]
    idle_plan = faults.FaultPlan(
        *(
            faults.FaultSpec(site, charts=("bench/no-such-chart",))
            for site in faults.FAULT_SITES
        )
    )

    def timed_cold(plan) -> float:
        _clear_render_caches()
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            run_full_evaluation(applications=applications, fault_plan=plan)
            return time.perf_counter() - start
        finally:
            if gc_was_enabled:
                gc.enable()

    disarmed = armed = float("inf")
    for _ in range(max(rounds, 1)):
        disarmed = min(disarmed, timed_cold(None))
        armed = min(armed, timed_cold(idle_plan))
    return {
        "evaluation/disarmed_s": round(disarmed, 3),
        "evaluation/armed_idle_s": round(armed, 3),
        "evaluation/fault_overhead": round(armed / disarmed, 4) if disarmed else 1.0,
    }


def bench_store_sweep(sample: int | None, repeats: int = 1) -> dict[str, float]:
    """Durable-sweep cost: store-off vs cold write-through vs warm read-mostly.

    Three shapes of the same evaluation sweep: no store (the baseline), a
    cold store (every chart computes and publishes -- the fsync-bounded
    write-through tax), and a warm store (every chart loads a verified
    entry instead of rendering/observing/analyzing).  Alternating
    off/cold pairs keep the minima honest on a busy machine, mirroring
    ``measure_fault_overhead``; the warm sweep runs against the store a
    populating sweep just filled, with in-memory caches cleared so reads
    genuinely come from disk.
    """
    import gc
    import shutil
    import tempfile

    from repro.datasets import build_catalog
    from repro.experiments import run_full_evaluation

    applications = build_catalog()
    if sample is not None:
        applications = applications[:sample]

    def timed(store_dir: Path | None) -> float:
        _clear_render_caches()
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            run_full_evaluation(applications=applications, store=store_dir)
            return time.perf_counter() - start
        finally:
            if gc_was_enabled:
                gc.enable()

    root = Path(tempfile.mkdtemp(prefix="repro-store-bench-"))
    try:
        off = cold = warm = float("inf")
        for index in range(max(repeats, 1)):
            off = min(off, timed(None))
            cold_dir = root / f"cold{index}"
            cold = min(cold, timed(cold_dir))
            shutil.rmtree(cold_dir, ignore_errors=True)
        warm_dir = root / "warm"
        run_full_evaluation(applications=applications, store=warm_dir)
        for _ in range(max(repeats, 1)):
            warm = min(warm, timed(warm_dir))
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return {
        "evaluation/store_off_s": round(off, 3),
        "evaluation/store_cold_s": round(cold, 3),
        "evaluation/store_warm_s": round(warm, 3),
        "evaluation/store_cold_overhead": round(cold / off, 4) if off else 1.0,
        "evaluation/store_warm_speedup": round(off / warm, 2) if warm else 0.0,
    }


#: ``--check`` compares these end-to-end metrics, normalized per chart, so a
#: smoke-sized run remains comparable with a committed full-catalogue record.
CHECK_KEYS = (
    "evaluation/current_s",
    "netpol_impact/compiled_s",
    "evaluation/store_warm_s",
)

#: ``--check`` also gates the armed-but-idle fault-hook tax: arming a plan
#: that never fires must stay a low-single-digit-percent cost on the
#: default evaluation sweep.  The tax measures 2.0-2.4% on this container
#: (full-catalogue ``--full`` record and smoke remeasure alike), so the
#: original 1.02 limit sat exactly on the measurement and tripped on
#: noise; 1.03 keeps margin while still catching a hook falling off its
#: plan-lookup fast path (a real regression lands far above 3%).
FAULT_OVERHEAD_LIMIT = 1.03

#: ``--check`` gates the compiled/naive ratio of the Figure 4b sweep: the
#: compiled engine must stay at least on par with the naive reference it
#: replaces (a small band absorbs scheduler noise at ~100 ms sweep scale).
NETPOL_RATIO_LIMIT = 1.05

#: ``--check`` gates the vectorized/grouped ratio of ``matrix_sources``:
#: the default bitset engine must never be slower than the per-object walk
#: it replaced.  The smoke fleet is tiny (microsecond surfaces), so a trip
#: triggers a min-of-5 remeasure at 240 pods before failing.
VECTORIZED_RATIO_LIMIT = 1.0

#: ``--check`` gates the no-op delta round: re-verifying an unchanged
#: catalogue against a warm evaluator must cost at most 5% of the full
#: from-scratch sweep it replaces -- the whole point of watch mode.  A
#: trip triggers a min-of-5 remeasure (a no-op round is milliseconds, so
#: one noisy scheduler slice can dwarf it) before failing.
DELTA_NOOP_RATIO_LIMIT = 0.05

#: The delta suite's minimum catalogue sample.  A no-op round is
#: classification-only, so at the 4-chart smoke sample its fixed costs
#: (analyzer setup, result assembly) dominate and the ratio measures
#: nothing; 60 charts keeps the smoke pass fast while the ratio reflects
#: the per-chart costs the gate is about.
DELTA_SAMPLE_FLOOR = 60


def check_against_committed(
    record: dict, committed_path: Path, tolerance: float
) -> list[str]:
    """Regression check: fresh per-chart end-to-end numbers vs the committed file.

    Returns human-readable failure messages (empty = within the band).  The
    committed numbers come from a full-catalogue run on the recording
    machine; the fresh ones usually come from ``--smoke`` on whatever runs
    CI, so the band (`tolerance`, a multiplier) absorbs machine variance and
    sample-size effects while still catching order-of-magnitude
    regressions -- a hot path falling off its compiled/cached fast path.
    """
    committed = json.loads(committed_path.read_text())
    failures: list[str] = []
    committed_e2e = committed.get("end_to_end", {})
    fresh_e2e = record.get("end_to_end", {})
    committed_charts = committed_e2e.get("charts") or 1.0
    fresh_charts = fresh_e2e.get("charts") or 1.0
    for key in CHECK_KEYS:
        if key not in committed_e2e or key not in fresh_e2e:
            failures.append(f"{key}: missing from committed or fresh record")
            continue
        committed_per_chart = committed_e2e[key] / committed_charts
        fresh_per_chart = fresh_e2e[key] / fresh_charts
        limit = committed_per_chart * tolerance
        if fresh_per_chart > limit:
            failures.append(
                f"{key}: {fresh_per_chart * 1e3:.3f} ms/chart exceeds "
                f"{committed_per_chart * 1e3:.3f} ms/chart × {tolerance:.1f} "
                f"(committed {committed_path.name})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=None,
        help="where to write the JSON record (default: BENCH_connectivity.json; "
        "--smoke writes nothing unless set explicitly)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="timing repeats per case (median is kept)"
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the end-to-end sweep over the full catalogue instead of a sample",
    )
    parser.add_argument(
        "--sample", type=int, default=60, help="catalogue sample size for the e2e sweep"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-long sanity pass: one repeat, one fleet size, tiny sample",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="run a --smoke pass and fail (exit 1) when per-chart end-to-end "
        "numbers regress past --tolerance × the committed BENCH_connectivity.json",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=3.0,
        help="allowed multiplier over the committed per-chart numbers for --check",
    )
    args = parser.parse_args(argv)
    if args.check:
        args.smoke = True
    if args.smoke:
        args.repeats = 1
        args.sample = min(args.sample, 4)
        args.full = False
    args.repeats = max(args.repeats, 1)
    fleet_sizes = SMOKE_FLEET_SIZES if args.smoke else FLEET_SIZES

    per_size: dict[int, dict[str, float]] = {}
    for pod_count in fleet_sizes:
        per_size[pod_count] = run_size(pod_count, repeats=args.repeats)
    if args.full:
        for pod_count in LARGE_FLEET_SIZES:
            per_size[pod_count] = run_large_size(
                pod_count, repeats=min(args.repeats, 2)
            )
    print(format_table(per_size))

    def ratio(before: float, after: float) -> str:
        # Tiny samples can round a sweep to 0.000s; don't divide by it.
        return f"{before / after:.2f}x" if after else "n/a"

    render = run_render_suite(
        repeats=args.repeats, catalog_sample=args.sample if args.smoke else None
    )
    print(
        f"\ntemplate compile: cold {render['template_compile/cold']:,.0f} ns -> "
        f"cached {render['template_compile/cached']:,.0f} ns "
        f"({ratio(render['template_compile/cold'], render['template_compile/cached'])})"
    )
    print(
        f"chart render: cold {render['chart_render/cold']:,.0f} ns -> "
        f"warm {render['chart_render/warm']:,.0f} ns "
        f"({ratio(render['chart_render/cold'], render['chart_render/warm'])})"
    )
    print(
        f"catalog cold render ({int(render['catalog_render/charts'])} charts): "
        f"text {render['catalog_render/text']:,.0f} ns/chart -> "
        f"structured {render['catalog_render/structured']:,.0f} ns/chart "
        f"({ratio(render['catalog_render/text'], render['catalog_render/structured'])})"
    )
    for key in sorted(render):
        if key.startswith("all_pairs/grouped"):
            pods = key.rsplit("=", 1)[1]
            per_source = render[f"all_pairs/per_source/pods={pods}"]
            print(
                f"all_pairs pods={pods}: per-source {per_source:,.0f} ns/src -> "
                f"grouped {render[key]:,.0f} ns/src "
                f"({ratio(per_source, render[key])})"
            )

    sample = None if args.full else args.sample
    session = run_session_suite(sample=sample, repeats=args.repeats)
    print(
        f"\ninstall/observe slice over {int(session['charts'])} charts: "
        f"fresh+full {session['observe/fresh_full_s']}s -> "
        f"pooled+full {session['observe/pooled_full_s']}s "
        f"({ratio(session['observe/fresh_full_s'], session['observe/pooled_full_s'])}) -> "
        f"fast {session['observe/fast_s']}s "
        f"({ratio(session['observe/fresh_full_s'], session['observe/fast_s'])})"
    )
    e2e_repeats = 1 if args.smoke else min(args.repeats, 3)
    # The naive-vs-compiled pair is the one recorded comparison where the
    # delta is far below sweep noise, so the recording run takes extra pairs.
    e2e = bench_netpol_sweep(sample, repeats=9 if args.full else e2e_repeats)
    print(
        f"Figure 4b sweep over {int(e2e['charts'])} charts: "
        f"naive {e2e['netpol_impact/naive_s']}s -> "
        f"compiled {e2e['netpol_impact/compiled_s']}s "
        f"({ratio(e2e['netpol_impact/naive_s'], e2e['netpol_impact/compiled_s'])})"
    )
    evaluation = bench_full_evaluation(sample, repeats=e2e_repeats)
    e2e.update(evaluation)
    print(
        f"Catalogue evaluation over {int(evaluation['charts'])} charts: "
        f"double-render {evaluation['evaluation/double_render_s']}s -> "
        f"fresh clusters {evaluation['evaluation/fresh_full_s']}s -> "
        f"pooled+fast {evaluation['evaluation/current_s']}s "
        f"({ratio(evaluation['evaluation/fresh_full_s'], evaluation['evaluation/current_s'])} over PR-2)"
    )
    overhead = measure_fault_overhead(sample, rounds=e2e_repeats)
    e2e.update(overhead)
    print(
        f"armed-but-idle fault hooks: disarmed {overhead['evaluation/disarmed_s']}s -> "
        f"armed {overhead['evaluation/armed_idle_s']}s "
        f"({overhead['evaluation/fault_overhead']:.4f}x)"
    )
    store_sweep = bench_store_sweep(sample, repeats=e2e_repeats)
    e2e.update(store_sweep)
    print(
        f"durable sweep: store-off {store_sweep['evaluation/store_off_s']}s -> "
        f"cold store {store_sweep['evaluation/store_cold_s']}s "
        f"({store_sweep['evaluation/store_cold_overhead']:.4f}x) -> "
        f"warm store {store_sweep['evaluation/store_warm_s']}s "
        f"({ratio(store_sweep['evaluation/store_off_s'], store_sweep['evaluation/store_warm_s'])})"
    )
    delta_sample = sample if sample is None else max(sample, DELTA_SAMPLE_FLOOR)
    delta = run_delta_suite(sample=delta_sample, repeats=e2e_repeats)
    print(
        f"delta rounds over {int(delta['charts'])} charts: "
        f"full sweep {delta['delta/full_sweep_s']}s -> "
        f"no-op {delta['delta/noop_s']}s "
        f"({delta.get('delta/noop_ratio', 0.0):.4f}x) -> "
        f"edit-4 {delta['delta/edit4_s']}s "
        f"({delta.get('delta/edit4_ratio', 0.0):.4f}x)"
    )
    analysis = run_analysis_suite(sample=sample, repeats=e2e_repeats)
    print(
        f"rules slice over {int(analysis['charts'])} charts: "
        f"reference {analysis['rules/reference']:,.0f} ns/chart -> "
        f"compiled {analysis['rules/compiled']:,.0f} ns/chart "
        f"({ratio(analysis['rules/reference'], analysis['rules/compiled'])})"
    )
    print(
        f"warm render hit: copy-on-read {analysis['warm_inventory/copy']:,.0f} ns/chart -> "
        f"shared-reference {analysis['warm_inventory/shared']:,.0f} ns/chart "
        f"({ratio(analysis['warm_inventory/copy'], analysis['warm_inventory/shared'])})"
    )

    record = {
        "suite": "connectivity",
        "unit": "ns/op",
        "fleet_sizes": list(fleet_sizes),
        "cases": {
            f"{case}/pods={pod_count}": round(value, 1)
            for pod_count, results in per_size.items()
            for case, value in results.items()
        },
        "speedups": {
            **{
                f"{case}/pods={pod_count}": round(
                    results[f"{case}/naive"] / results[f"{case}/compiled"], 2
                )
                for pod_count, results in per_size.items()
                for case in ("check_ingress", "reachable_endpoints", "matrix_sources")
                if f"{case}/naive" in results
            },
            **{
                f"matrix_vectorized/pods={pod_count}": round(
                    results["matrix_sources/grouped"]
                    / results["matrix_sources/compiled"],
                    2,
                )
                for pod_count, results in per_size.items()
                if results.get("matrix_sources/grouped")
                and results.get("matrix_sources/compiled")
            },
        },
        "render": {case: round(value, 1) for case, value in render.items()},
        "session": session,
        "analysis": analysis,
        "delta": delta,
        "end_to_end": e2e,
    }
    if args.check:
        # The gate always compares against the *committed* record --
        # ``--output`` keeps its write-destination meaning and is simply
        # unused here (check mode never writes a file).
        committed = Path(__file__).resolve().parent.parent / "BENCH_connectivity.json"
        if not committed.exists():
            print(f"\n--check: no committed record at {committed}")
            return 1
        failures = check_against_committed(record, committed, args.tolerance)
        if any(
            failure.startswith("evaluation/store_warm_s:") and "exceeds" in failure
            for failure in failures
        ):
            # A 4-chart warm sweep is dominated by fixed per-sweep costs
            # (journal open, store handles) that a full-catalogue run
            # amortizes away: remeasure min-of-5 before declaring a
            # regression.
            retry = bench_store_sweep(sample, repeats=5)
            print(
                f"store-sweep remeasure (min of 5): "
                f"warm {retry['evaluation/store_warm_s']}s"
            )
            record["end_to_end"].update(retry)
            failures = check_against_committed(record, committed, args.tolerance)
        netpol_ratio = (
            record["end_to_end"]["netpol_impact/compiled_s"]
            / record["end_to_end"]["netpol_impact/naive_s"]
            if record["end_to_end"].get("netpol_impact/naive_s")
            else 1.0
        )
        if netpol_ratio > NETPOL_RATIO_LIMIT:
            # One cold pair over a 4-chart sample is noisy: remeasure with
            # min-of-5 alternating pairs before declaring the compiled
            # Figure 4b path a regression over the naive reference.
            retry = bench_netpol_sweep(sample, repeats=5)
            netpol_ratio = (
                retry["netpol_impact/compiled_s"] / retry["netpol_impact/naive_s"]
                if retry["netpol_impact/naive_s"]
                else 1.0
            )
            print(f"netpol-impact remeasure (min of 5 pairs): {netpol_ratio:.4f}x")
            record["end_to_end"].update(retry)
            if netpol_ratio > NETPOL_RATIO_LIMIT:
                failures.append(
                    f"netpol_impact ratio: compiled is {netpol_ratio:.4f}x naive "
                    f"(limit {NETPOL_RATIO_LIMIT:.2f}x)"
                )
        smoke_results = per_size[fleet_sizes[0]]
        vectorized_ratio = (
            smoke_results["matrix_sources/compiled"]
            / smoke_results["matrix_sources/grouped"]
            if smoke_results.get("matrix_sources/grouped")
            else 1.0
        )
        if vectorized_ratio > VECTORIZED_RATIO_LIMIT:
            # The smoke fleet's surfaces are microseconds: remeasure at 240
            # pods with median-of-5 before declaring the bitset engine a
            # regression over the grouped walk.
            from connectivity_cases import bench_matrix_sources, build_fleet

            retry = bench_matrix_sources(build_fleet(240), repeats=5)
            vectorized_ratio = (
                retry["matrix_sources/compiled"] / retry["matrix_sources/grouped"]
            )
            print(
                f"matrix-vectorized remeasure (240 pods, median of 5): "
                f"{vectorized_ratio:.4f}x"
            )
            if vectorized_ratio > VECTORIZED_RATIO_LIMIT:
                failures.append(
                    f"matrix_sources ratio: vectorized is {vectorized_ratio:.4f}x "
                    f"the grouped walk (limit {VECTORIZED_RATIO_LIMIT:.2f}x)"
                )
        noop_ratio = record["delta"].get("delta/noop_ratio", 0.0)
        if noop_ratio > DELTA_NOOP_RATIO_LIMIT:
            # A no-op delta round over a 4-chart smoke sample lasts
            # milliseconds; remeasure min-of-5 before declaring the
            # classification fast path a regression.
            retry = run_delta_suite(delta_sample, repeats=5)
            noop_ratio = retry.get("delta/noop_ratio", 0.0)
            print(f"delta no-op remeasure (min of 5): {noop_ratio:.4f}x")
            record["delta"] = retry
            if noop_ratio > DELTA_NOOP_RATIO_LIMIT:
                failures.append(
                    f"delta/noop_ratio: a no-op delta round costs {noop_ratio:.4f}x "
                    f"the full sweep (limit {DELTA_NOOP_RATIO_LIMIT:.2f}x)"
                )
        if record["end_to_end"]["evaluation/fault_overhead"] > FAULT_OVERHEAD_LIMIT:
            # A single cold pair is noisy on a loaded machine: before
            # declaring a regression, remeasure with min-of-5 pairs.
            retry = measure_fault_overhead(sample, rounds=5)
            print(
                f"fault-overhead remeasure (min of 5 pairs): "
                f"{retry['evaluation/fault_overhead']:.4f}x"
            )
            if retry["evaluation/fault_overhead"] > FAULT_OVERHEAD_LIMIT:
                failures.append(
                    f"evaluation/fault_overhead: armed-but-idle hooks cost "
                    f"{retry['evaluation/fault_overhead']:.4f}x "
                    f"(limit {FAULT_OVERHEAD_LIMIT:.2f}x)"
                )
        if failures:
            print("\n--check FAILED:")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print(f"\n--check passed (tolerance {args.tolerance:.1f}x vs {committed.name})")
        return 0
    if args.output is None and args.smoke:
        print("\nsmoke pass complete (no file written)")
        return 0
    output = Path(
        args.output
        if args.output is not None
        else Path(__file__).resolve().parent.parent / "BENCH_connectivity.json"
    )
    # Atomic publish: an interrupted run must never leave a torn committed
    # regression-gate file behind.
    atomic_write_text(output, json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
