"""Ablation benchmarks for the design choices called out in DESIGN.md.

* hybrid vs static-only vs runtime-only detection coverage;
* double vs single runtime snapshot (Section 4.2.2, dynamic ports);
* host-port pre-scan on/off (Section 4.2.2, hostNetwork false positives);
* admission-controller defense on/off at deploy time.
"""

from __future__ import annotations

from repro.cluster import AdmissionError, BehaviorRegistry, Cluster
from repro.core import (
    AnalyzerSettings,
    MODE_HYBRID,
    MODE_STATIC,
    MisconfigClass,
    MisconfigurationAnalyzer,
    NetworkMisconfigurationAdmission,
)
from repro.datasets import InjectionPlan, build_application
from repro.helm import render_chart


def _fixture_app():
    plan = InjectionPlan(m1=3, m2=1, m3=2, m4a=1, m5a=1, m5b=1, m6=True, m7=1)
    return build_application("ablation", "Fixtures", plan, archetype="microservices")


def test_ablation_static_vs_hybrid(benchmark):
    """Static-only analysis is faster but misses every runtime-only class."""
    app = _fixture_app()
    static_analyzer = MisconfigurationAnalyzer(settings=AnalyzerSettings(mode=MODE_STATIC))
    hybrid_analyzer = MisconfigurationAnalyzer(settings=AnalyzerSettings(mode=MODE_HYBRID))

    static_report = benchmark(
        static_analyzer.analyze_chart, app.chart, behaviors=app.behaviors
    )
    hybrid_report = hybrid_analyzer.analyze_chart(app.chart, behaviors=app.behaviors)

    print("\nAblation: detection coverage by analysis mode")
    print(f"  static-only classes : {sorted(c.value for c in static_report.classes_present())}")
    print(f"  hybrid classes      : {sorted(c.value for c in hybrid_report.classes_present())}")

    runtime_only = {MisconfigClass.M1, MisconfigClass.M2, MisconfigClass.M3, MisconfigClass.M5A}
    assert not runtime_only & static_report.classes_present()
    assert runtime_only <= hybrid_report.classes_present()
    assert static_report.classes_present() < hybrid_report.classes_present()


def test_ablation_double_vs_single_snapshot(benchmark):
    """Without the restart-and-compare step, dynamic ports (M2) are invisible."""
    app = _fixture_app()
    single = MisconfigurationAnalyzer(settings=AnalyzerSettings(double_snapshot=False))
    double = MisconfigurationAnalyzer(settings=AnalyzerSettings(double_snapshot=True))

    single_report = benchmark(single.analyze_chart, app.chart, behaviors=app.behaviors)
    double_report = double.analyze_chart(app.chart, behaviors=app.behaviors)

    print("\nAblation: double snapshot for dynamic-port detection")
    print(f"  single snapshot M2 findings : {len(single_report.of_class(MisconfigClass.M2))}")
    print(f"  double snapshot M2 findings : {len(double_report.of_class(MisconfigClass.M2))}")

    assert single_report.of_class(MisconfigClass.M2) == []
    assert len(double_report.of_class(MisconfigClass.M2)) == 1
    # Worse: the unrecognized ephemeral port shows up as a spurious M1 instead.
    assert len(single_report.of_class(MisconfigClass.M1)) > len(
        double_report.of_class(MisconfigClass.M1)
    )


def test_ablation_host_port_prescan(benchmark):
    """Skipping the host-port baseline creates false M1 positives for hostNetwork pods."""
    app = build_application("hostscan", "Fixtures", InjectionPlan(m7=1), archetype="web")
    with_scan = MisconfigurationAnalyzer(settings=AnalyzerSettings(host_port_filtering=True))
    without_scan = MisconfigurationAnalyzer(settings=AnalyzerSettings(host_port_filtering=False))

    clean_report = benchmark(with_scan.analyze_chart, app.chart, behaviors=app.behaviors)
    noisy_report = without_scan.analyze_chart(app.chart, behaviors=app.behaviors)

    print("\nAblation: host-port pre-scan for hostNetwork pods")
    print(f"  with pre-scan    M1 findings : {len(clean_report.of_class(MisconfigClass.M1))}")
    print(f"  without pre-scan M1 findings : {len(noisy_report.of_class(MisconfigClass.M1))}")

    assert clean_report.of_class(MisconfigClass.M1) == []
    assert len(noisy_report.of_class(MisconfigClass.M1)) >= 3


def test_ablation_admission_defense(benchmark):
    """With the admission controller enabled, misconfigured objects never land."""
    app = _fixture_app()
    rendered = render_chart(app.chart)

    def deploy_without_defense():
        cluster = Cluster(name="open", worker_count=2, behaviors=app.behaviors)
        cluster.install(render_chart(app.chart))
        return cluster

    open_cluster = benchmark(deploy_without_defense)
    assert len(open_cluster.running_pods()) > 0

    guarded = Cluster(name="guarded", worker_count=2, behaviors=BehaviorRegistry())
    guarded.register_admission_controller(NetworkMisconfigurationAdmission(mode="enforce"))
    rejected = 0
    for obj in rendered.objects:
        try:
            guarded.api.apply(obj)
        except AdmissionError:
            rejected += 1

    print("\nAblation: admission-controller defense")
    print(f"  objects in chart            : {len(rendered.objects)}")
    print(f"  rejected at admission time  : {rejected}")
    assert rejected >= 1
