"""Benchmark cases for the analysis-session subsystem (PR 3).

Measures the evaluation's install/observe slice in isolation -- the part of
the per-chart pipeline that :class:`repro.cluster.AnalysisSession` attacks:

* ``observe/fresh_full`` -- the seed shape: a throw-away cluster per chart,
  full install, double runtime snapshot;
* ``observe/pooled_full`` -- one recycled cluster skeleton
  (``Cluster.reset()`` between charts), full install + snapshot;
* ``observe/fast`` -- the install-free observation substrate.

Charts are pre-rendered once so the render cache is warm for every variant:
the observation step itself never touches the render cache, so the timings
below are pure install/observe cost, directly comparable across variants.
"""

from __future__ import annotations

import time


def run_session_suite(sample: int | None = None, repeats: int = 3) -> dict[str, float]:
    """Time the observe slice over a catalogue (sample), seconds per sweep."""
    from repro.cluster import AnalysisSession, Cluster, OBSERVE_FAST, OBSERVE_FULL
    from repro.datasets import build_catalog, prerender_catalog
    from repro.helm import render_chart
    from repro.probe import RuntimeScanner

    applications = build_catalog()
    if sample is not None:
        applications = applications[:sample]
    fingerprints = prerender_catalog(applications)
    rendered = [
        render_chart(app.chart, fingerprint=fingerprint)
        for app, fingerprint in zip(applications, fingerprints)
    ]

    def sweep_fresh() -> None:
        for app, chart in zip(applications, rendered):
            cluster = Cluster(name="analysis", behaviors=app.behaviors)
            cluster.install(chart)
            RuntimeScanner(cluster).observe(chart.release.name)

    def sweep_pooled() -> None:
        session = AnalysisSession(observe_mode=OBSERVE_FULL)
        for app, chart in zip(applications, rendered):
            session.observe(chart, app.behaviors)

    def sweep_fast() -> None:
        session = AnalysisSession(observe_mode=OBSERVE_FAST)
        for app, chart in zip(applications, rendered):
            session.observe(chart, app.behaviors)

    def best_of(sweep) -> float:
        timings = []
        for _ in range(max(repeats, 1)):
            # Each run re-renders per chart from the warm cache (a
            # shared-reference hit per chart) so every variant starts from
            # identical render results.
            rendered[:] = [
                render_chart(app.chart, fingerprint=fingerprint)
                for app, fingerprint in zip(applications, fingerprints)
            ]
            start = time.perf_counter()
            sweep()
            timings.append(time.perf_counter() - start)
        return min(timings)

    results = {
        "charts": float(len(applications)),
        "observe/fresh_full_s": round(best_of(sweep_fresh), 4),
        "observe/pooled_full_s": round(best_of(sweep_pooled), 4),
        "observe/fast_s": round(best_of(sweep_fast), 4),
    }
    if results["observe/pooled_full_s"]:
        results["observe/pooled_speedup"] = round(
            results["observe/fresh_full_s"] / results["observe/pooled_full_s"], 2
        )
    if results["observe/fast_s"]:
        results["observe/fast_speedup"] = round(
            results["observe/fresh_full_s"] / results["observe/fast_s"], 2
        )
    return results
