"""Benchmark / reproduction of Figure 4a: misconfigurations per application."""

from __future__ import annotations

from repro.experiments import figure4a, format_figure4a


def test_figure4a_distribution(benchmark, full_evaluation_result):
    summary = full_evaluation_result.summary
    distribution = benchmark(figure4a, summary)

    print("\n" + "=" * 78)
    print("Figure 4a - total misconfigurations per application (reproduced)")
    print("=" * 78)
    print(format_figure4a(distribution))

    # The distribution covers every analyzed application and sums to the total.
    assert len(distribution.per_application) == summary.total_applications
    assert distribution.total == summary.total_misconfigurations
    # Shape: the distribution is heavy-tailed -- a small share of applications
    # concentrates a disproportionate share of the misconfigurations, and the
    # maximum is around 20 misconfigurations as in the paper.
    assert distribution.per_application[0] >= 15
    assert distribution.per_application[0] <= 25
    assert distribution.share_apps_ge_10 < 0.10
    assert distribution.share_findings_ge_10 > 2 * distribution.share_apps_ge_10
    # Roughly half of the applications have few (0-2) misconfigurations.
    low = sum(1 for count in distribution.per_application if count <= 2)
    assert low > len(distribution.per_application) * 0.4
