"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints the
corresponding rows/series, so running ``pytest benchmarks/ --benchmark-only -s``
produces both the timing numbers and the reproduced artefacts.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Run an expensive experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def full_evaluation_result():
    """The full-catalogue evaluation, shared by the Table 2 / Figure 3 / 4a benches."""
    from repro.experiments import run_full_evaluation

    return run_full_evaluation()
