"""Micro-benchmarks for the connectivity hot path (compiled policy engine).

Times ``check_ingress``, ``reachable_endpoints`` and the batched
``ReachabilityMatrix`` at three cluster sizes, comparing the pre-PR naive
evaluator (kept as the reference path) against the compiled/cached engine,
and prints the before/after throughput table.  ``benchmarks/run.py`` runs
the same cases standalone and records them in ``BENCH_connectivity.json``.
"""

from __future__ import annotations

import pytest
from conftest import run_once
from connectivity_cases import (
    build_fleet,
    format_table,
    run_large_size,
    run_size,
)

#: tens / hundreds / a thousand pods, as in the ISSUE acceptance criteria.
FLEET_SIZES = (30, 240, 1000)


def test_connectivity_engine_throughput(benchmark):
    per_size = {}
    for pod_count in FLEET_SIZES[:-1]:
        per_size[pod_count] = run_size(pod_count, repeats=3)
    # The headline case runs under the benchmark timer: the full cached
    # matrix sweep (compile + all queries) at the thousand-pod size.
    per_size[FLEET_SIZES[-1]] = run_once(benchmark, run_size, FLEET_SIZES[-1], repeats=3)

    print("\n" + "=" * 78)
    print("Connectivity engine - naive (pre-PR) vs compiled/cached, ns per operation")
    print("=" * 78)
    print(format_table(per_size))

    for pod_count, results in per_size.items():
        for case in ("check_ingress", "reachable_endpoints", "matrix_sources"):
            naive = results[f"{case}/naive"]
            compiled = results[f"{case}/compiled"]
            # The compiled engine must never lose to the naive scan, and at
            # the thousand-pod size the batched paths must win big (the
            # recorded target in BENCH_connectivity.json is >= 5x; assert a
            # conservative floor so timing noise cannot flake the suite).
            assert compiled <= naive * 1.1, f"{case} slower than naive at {pod_count} pods"
            if pod_count == FLEET_SIZES[-1] and case != "check_ingress":
                assert naive / compiled >= 2.5, (
                    f"{case} speedup collapsed at {pod_count} pods: "
                    f"{naive / compiled:.1f}x"
                )


@pytest.mark.slow
@pytest.mark.parametrize("pod_count", (10_000, 50_000))
def test_large_fleet_vectorized_surface(pod_count):
    """10k/50k-pod fleets: the bitset engine must beat the grouped walk.

    Slow-marked: a 50k-pod fleet takes seconds per grouped repeat.  The
    same sizes are recorded in ``BENCH_connectivity.json`` by
    ``run.py --full``.
    """
    results = run_large_size(pod_count, repeats=1)
    assert (
        results["matrix_sources/compiled"] <= results["matrix_sources/grouped"]
    ), (
        f"vectorized lost to grouped at {pod_count} pods: "
        f"{results['matrix_sources/compiled']:,.0f} vs "
        f"{results['matrix_sources/grouped']:,.0f} ns/src"
    )


@pytest.mark.slow
def test_large_fleet_vectorized_matches_grouped():
    """Byte-identical surfaces at the 10k-pod size, sampled sources."""
    fleet = build_fleet(10_000)
    compiled = fleet.compiled_network()
    grouped = compiled.reachability_matrix(
        fleet.policies, fleet.pods, fleet.bindings, vectorized=False
    )
    vector = compiled.reachability_matrix(fleet.policies, fleet.pods, fleet.bindings)
    for source in fleet.pods[:: len(fleet.pods) // 8] + [fleet.attacker]:
        assert vector.endpoints_from(source) == grouped.endpoints_from(source)


def test_matrix_matches_naive_surface_on_bench_fleet():
    """The bench fleet itself double-checks compiled == naive results."""
    fleet = build_fleet(240)
    naive = fleet.naive_network()
    compiled = fleet.compiled_network()
    matrix = compiled.reachability_matrix(fleet.policies, fleet.pods, fleet.bindings)
    for source in fleet.pods[::40] + [fleet.attacker]:
        expected = naive.reachable_endpoints(
            fleet.policies, source, fleet.pods, fleet.bindings
        )
        assert matrix.endpoints_from(source) == expected
        assert (
            compiled.reachable_endpoints(fleet.policies, source, fleet.pods, fleet.bindings)
            == expected
        )
