"""Benchmark / reproduction of Table 2: misconfigurations by dataset.

Prints the regenerated Table 2 rows and the Section 4.3.1 headline
statistics, and checks the totals against the paper (634 misconfigurations,
259 affected applications).
"""

from __future__ import annotations

from conftest import run_once

from repro.datasets import (
    DATASET_ORDER,
    TABLE2_TOTAL_MISCONFIGURATIONS,
    build_dataset,
    expected_dataset_counts,
)
from repro.experiments import compute_stats, format_stats, run_full_evaluation


def test_table2_full_catalogue(benchmark, full_evaluation_result):
    """Regenerate the full Table 2 (analysis already executed once per session;
    the benchmark times a fresh run of the complete pipeline)."""
    result = run_once(benchmark, run_full_evaluation)
    summary = result.summary

    print("\n" + "=" * 78)
    print("Table 2 - network misconfigurations by dataset (reproduced)")
    print("=" * 78)
    print(summary.table2_text())
    print()
    print(format_stats(compute_stats(result)))

    assert summary.total_misconfigurations == TABLE2_TOTAL_MISCONFIGURATIONS
    assert summary.affected_applications == 259
    for dataset in DATASET_ORDER:
        row = summary.dataset_summary(dataset)
        got = {cls.value: count for cls, count in row.counts.items()}
        for name, count in expected_dataset_counts(dataset).items():
            assert got.get(name, 0) == count, f"{dataset} {name}"


def test_table2_single_dataset_throughput(benchmark):
    """Per-dataset analysis throughput (CNCF, the smallest dataset)."""
    def analyze_cncf():
        return run_full_evaluation(applications=build_dataset("CNCF"))

    result = benchmark(analyze_cncf)
    assert result.summary.dataset_summary("CNCF").total_misconfigurations == 27
