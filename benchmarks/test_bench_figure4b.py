"""Benchmark / reproduction of Figure 4b: impact of network policies."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_netpol_impact


def test_figure4b_network_policy_impact(benchmark, full_evaluation_result):
    applications = full_evaluation_result.applications()
    result = run_once(benchmark, run_netpol_impact, applications=applications)

    print("\n" + "=" * 78)
    print("Figure 4b - impact of network policies on endpoint reachability (reproduced)")
    print("=" * 78)
    print(result.format_text())

    rows = {row.dataset: row for row in result.rows()}

    # Banzai Cloud ships no network policies at all (not reported in the paper's table).
    assert rows["Banzai Cloud"].policies_defined == 0
    # Policy-defining chart counts follow the paper: Bitnami 48, CNCF 4, EEA 19,
    # Prometheus Community 5, Wikimedia 25.
    assert rows["Bitnami"].policies_defined == 48
    assert rows["CNCF"].policies_defined == 4
    assert rows["EEA"].policies_defined == 19
    assert rows["Prometheus C."].policies_defined == 5
    assert rows["Wikimedia"].policies_defined == 25
    # Shape of the reachability outcome: enabling the shipped policies does not
    # remedy the misconfigurations for several charts in most datasets, while
    # CNCF charts end up fully isolated (affected = 0 in the paper).
    assert rows["CNCF"].affected == 0
    for dataset in ("Bitnami", "EEA", "Prometheus C.", "Wikimedia"):
        assert rows[dataset].affected > 0, f"{dataset} should remain affected"
        assert rows[dataset].reachable_pods >= rows[dataset].affected
    # Reachable pod endpoints outnumber reachable service endpoints (Section 4.3.2).
    total_pods = sum(row.reachable_pods for row in rows.values())
    total_services = sum(row.reachable_services for row in rows.values())
    assert total_pods > total_services
