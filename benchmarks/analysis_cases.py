"""Benchmark cases for the analysis pass (PR 5).

Measures the two slices the indexed-inventory/compiled-rules work attacks:

* ``rules/*`` -- the rule-evaluation + inventory-construction slice in
  isolation: charts pre-rendered (warm cache) and pre-observed, then every
  chart's report recomputed through

  - ``rules/reference`` -- the seed shape (``compiled_rules=False``): one
    rule at a time, per-call linear scans over the inventory and snapshots;
  - ``rules/compiled`` -- the fused single-pass engine over the indexed
    context and frozen inventory indexes (the default).

* ``warm_inventory/*`` -- the cost of a *warm* render-cache hit, fingerprint
  shipped (the evaluation pipeline's shape):

  - ``warm_inventory/copy`` -- the reference copy-on-read cache
    (``shared=False``): every hit unpickles the entry, rebuilding objects;
  - ``warm_inventory/shared`` -- the shared-reference cache (default):
    hits return the interned sealed objects behind fresh top-level
    containers, skipping ``objects_from_dicts``, namespace defaulting and
    validation entirely.

All numbers are ns per chart (best of ``repeats`` sweeps).
"""

from __future__ import annotations

import time


def run_analysis_suite(sample: int | None = None, repeats: int = 3) -> dict[str, float]:
    """Time the analysis slices over a catalogue (sample)."""
    from repro.core import AnalyzerSettings, MisconfigurationAnalyzer
    from repro.datasets import build_catalog
    from repro.helm import RenderCache, shared_render_cache

    applications = build_catalog()
    if sample is not None:
        applications = applications[:sample]
    charts = float(len(applications))

    cache = shared_render_cache()
    rendered = [
        cache.render(app.chart, fingerprint=app.fingerprint()) for app in applications
    ]
    observer = MisconfigurationAnalyzer()
    observations = [
        observer.session.observe(chart, app.behaviors)
        for app, chart in zip(applications, rendered)
    ]

    def best_of(sweep) -> float:
        timings = []
        for _ in range(max(repeats, 1)):
            start = time.perf_counter()
            sweep()
            timings.append(time.perf_counter() - start)
        return min(timings)

    def rules_sweep(compiled: bool):
        analyzer = MisconfigurationAnalyzer(
            settings=AnalyzerSettings(compiled_rules=compiled)
        )

        def sweep() -> None:
            for app, chart, observation in zip(applications, rendered, observations):
                analyzer.analyze_rendered(chart, observation=observation, dataset=app.dataset)

        return sweep

    reference_s = best_of(rules_sweep(compiled=False))
    compiled_s = best_of(rules_sweep(compiled=True))

    # Warm-hit cost: both caches pre-warmed, fingerprints shipped, so the
    # sweep measures only the per-hit materialization.
    fingerprints = [app.fingerprint() for app in applications]
    copy_cache = RenderCache(shared=False)
    for app, fingerprint in zip(applications, fingerprints):
        copy_cache.render(app.chart, fingerprint=fingerprint)

    def warm_sweep(target_cache):
        def sweep() -> None:
            for app, fingerprint in zip(applications, fingerprints):
                target_cache.render(app.chart, fingerprint=fingerprint)

        return sweep

    warm_copy_s = best_of(warm_sweep(copy_cache))
    warm_shared_s = best_of(warm_sweep(cache))

    results = {
        "charts": charts,
        "rules/reference": round(reference_s / charts * 1e9, 1),
        "rules/compiled": round(compiled_s / charts * 1e9, 1),
        "warm_inventory/copy": round(warm_copy_s / charts * 1e9, 1),
        "warm_inventory/shared": round(warm_shared_s / charts * 1e9, 1),
    }
    if results["rules/compiled"]:
        results["rules/speedup"] = round(
            results["rules/reference"] / results["rules/compiled"], 2
        )
    if results["warm_inventory/shared"]:
        results["warm_inventory/speedup"] = round(
            results["warm_inventory/copy"] / results["warm_inventory/shared"], 2
        )
    return results
