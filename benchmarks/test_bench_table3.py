"""Benchmark / reproduction of Table 3: comparison with the state of the art."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import PAPER_TABLE3, run_comparison

_SYMBOLS = {"found": "Y", "partial": "~", "missed": "x", "n/a": "-"}


def test_table3_tool_comparison(benchmark):
    result = run_once(benchmark, run_comparison)

    print("\n" + "=" * 78)
    print("Table 3 - misconfigurations detected by each tool (reproduced)")
    print("=" * 78)
    print(result.format_text())

    ours = result.row_for("Our solution")
    assert all(outcome == "found" for outcome in ours.outcomes.values())

    # Every third-party tool matches the paper's row exactly.
    for row in result.rows:
        if row.tool == "Our solution":
            continue
        expected = PAPER_TABLE3[row.tool]
        got = {cls.value: _SYMBOLS[outcome] for cls, outcome in row.outcomes.items()}
        assert got == expected, f"{row.tool} deviates from the paper's Table 3"


def test_table3_single_static_tool_throughput(benchmark):
    """How fast a single static baseline scans the representative chart."""
    from repro.baselines import Checkov, BaselineInput
    from repro.experiments import representative_application
    from repro.helm import render_chart
    from repro.k8s import Inventory

    rendered = render_chart(representative_application().chart)
    data = BaselineInput(inventory=Inventory(rendered.objects))
    findings = benchmark(Checkov().run, data)
    assert findings
