"""Micro-benchmarks of the substrates: Helm rendering, cluster operations,
policy evaluation and probing throughput."""

from __future__ import annotations

from repro.cluster import BehaviorRegistry, Cluster
from repro.datasets import InjectionPlan, build_application
from repro.helm import render_chart
from repro.k8s import allow_ports_policy, deny_all_policy, equality_selector, load_yaml, dump_yaml
from repro.probe import RuntimeScanner


def _app():
    return build_application(
        "bench-app", "Fixtures", InjectionPlan(m1=2, m2=1, m6=True), archetype="microservices"
    )


def test_bench_helm_render(benchmark):
    """Rendering one synthetic chart (templates + values -> typed objects)."""
    app = _app()
    rendered = benchmark(render_chart, app.chart)
    assert rendered.objects


def test_bench_yaml_round_trip(benchmark):
    """Parsing and re-serializing the rendered manifests."""
    rendered = render_chart(_app().chart)
    text = dump_yaml(rendered.objects)

    def round_trip():
        return dump_yaml(load_yaml(text))

    assert benchmark(round_trip)


def test_bench_cluster_install(benchmark):
    """Installing an application into a fresh simulated cluster."""
    app = _app()
    rendered = render_chart(app.chart)

    def install():
        cluster = Cluster(name="bench", worker_count=3, behaviors=app.behaviors)
        cluster.install(rendered.objects, app_name="bench-app")
        return cluster

    cluster = benchmark(install)
    assert cluster.running_pods()


def test_bench_double_snapshot(benchmark):
    """The runtime probe's double snapshot of one application."""
    app = _app()
    cluster = Cluster(name="bench", worker_count=3, behaviors=app.behaviors)
    cluster.install(render_chart(app.chart).objects, app_name="bench-app")
    scanner = RuntimeScanner(cluster)

    observation = benchmark(scanner.observe, "bench-app")
    assert observation.pods()


def test_bench_policy_evaluation(benchmark):
    """Evaluating NetworkPolicy admission for a pod-to-pod connection."""
    registry = BehaviorRegistry()
    cluster = Cluster(name="bench", worker_count=2, behaviors=registry)
    app = _app()
    cluster.install(render_chart(app.chart).objects, app_name="bench-app")
    cluster.api.apply(deny_all_policy("deny"))
    cluster.api.apply(allow_ports_policy("allow", equality_selector(), [8080]))
    pods = cluster.running_pods()
    source, destination = pods[0], pods[-1]
    policies = cluster.network_policies()

    def evaluate():
        return cluster.network.connect_pod_to_pod(policies, source, destination, 8080)

    assert benchmark(evaluate) is not None


def test_bench_reachability_surface(benchmark):
    """Computing the full lateral-movement surface from one pod."""
    app = _app()
    cluster = Cluster(name="bench", worker_count=3, behaviors=app.behaviors)
    cluster.install(render_chart(app.chart).objects, app_name="bench-app")
    source = cluster.running_pods()[0]

    endpoints = benchmark(cluster.reachable_from, source)
    assert endpoints
