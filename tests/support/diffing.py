"""Canonical-report differs shared by the differential conformance suites.

Every equivalence claim in the test suite -- pooled == fresh clusters,
fast == full observation, compiled == naive policy evaluation -- reduces to
"two runs produce byte-identical canonical serializations".  This module
owns the canonical forms (fully deterministic JSON, independent of dict
insertion order or set iteration order) and a differ that fails with a
readable unified diff instead of a useless giant-string comparison.
"""

from __future__ import annotations

import difflib
import json
from dataclasses import asdict
from typing import Any


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, stable separators, one line per node."""
    return json.dumps(payload, sort_keys=True, indent=1, default=str)


def canonical_report(report) -> dict:
    """Canonical form of a :class:`repro.core.AnalysisReport`."""
    data = report.to_dict()
    # Findings keep their emission order (ordering is part of the contract:
    # the fast path must reproduce it exactly), so no re-sorting here.
    return data


def canonical_observation(observation) -> dict:
    """Canonical form of a :class:`repro.probe.RuntimeObservation`."""
    return {
        "app": observation.app,
        "first": observation.first.to_dict(),
        "second": observation.second.to_dict(),
        "host_ports": sorted(observation.host_ports),
    }


def canonical_reachability(outcome) -> dict:
    """Canonical form of one Figure 4b ``ApplicationReachability`` outcome."""
    data = asdict(outcome)
    for key in (
        "reachable_pods",
        "reachable_pods_via_dynamic",
        "reachable_misconfigured_services",
    ):
        data[key] = sorted(data[key])
    return data


def canonical_surface(all_pairs: dict) -> dict:
    """Canonical form of ``ReachabilityMatrix.all_pairs()`` output.

    Endpoint order within one source is part of the engine's contract
    (grouped == per-source, entry for entry), so entries are kept in order.
    """
    return {
        f"{namespace}/{name}": [asdict(endpoint) for endpoint in endpoints]
        for (namespace, name), endpoints in all_pairs.items()
    }


def canonical_evaluation(result) -> list[dict]:
    """Canonical form of a full ``EvaluationResult``: every report, in order."""
    return [canonical_report(entry.report) for entry in result.analyzed]


def canonical_netpol(result) -> list[dict]:
    """Canonical form of a ``NetpolImpactResult``: every outcome, in order."""
    return [canonical_reachability(outcome) for outcome in result.applications]


def diff_canonical(expected: Any, actual: Any, label: str = "canonical") -> str:
    """A unified diff between two canonical payloads ('' when identical)."""
    expected_text = canonical_json(expected)
    actual_text = canonical_json(actual)
    if expected_text == actual_text:
        return ""
    diff = difflib.unified_diff(
        expected_text.splitlines(keepends=True),
        actual_text.splitlines(keepends=True),
        fromfile=f"{label}/expected",
        tofile=f"{label}/actual",
        n=3,
    )
    return "".join(diff)


def assert_identical(expected: Any, actual: Any, label: str = "canonical") -> None:
    """Assert two canonical payloads serialize byte-identically."""
    diff = diff_canonical(expected, actual, label)
    assert not diff, f"{label} diverged:\n{diff}"
