"""Unit tests for the runtime probe: snapshots, scanner, reachability."""

import pytest

from repro.cluster import (
    BehaviorRegistry,
    Cluster,
    ContainerBehavior,
    ListenSpec,
    behavior_with_dynamic_ports,
)
from repro.k8s import allow_ports_policy, deny_all_policy, equality_selector
from repro.probe import (
    ATTACKER_POD_NAME,
    ClusterSnapshot,
    PodSnapshot,
    ReachabilityProbe,
    RuntimeScanner,
    SocketRecord,
    make_attacker_pod,
)
from tests.conftest import make_deployment, make_service


@pytest.fixture
def probed_cluster():
    registry = BehaviorRegistry()
    registry.register(
        "example/web",
        ContainerBehavior(
            listen_on_declared=True,
            extra_listens=[ListenSpec(port=9999), ListenSpec(port=None)],
            ignore_declared_ports={8443},
        ),
    )
    cluster = Cluster(name="probe-test", worker_count=2, behaviors=registry, seed=21)
    cluster.install([make_deployment(ports=[8080, 8443]), make_service()], app_name="web")
    return cluster


class TestSnapshots:
    def test_pod_snapshot_records_declared_and_open(self, probed_cluster):
        snapshot = PodSnapshot.from_running_pod(probed_cluster.running_pod("web-0"))
        assert snapshot.declared("TCP") == {8080, 8443}
        assert 8080 in snapshot.open_ports("TCP")
        assert 9999 in snapshot.undeclared_open_ports()
        assert 8443 in snapshot.declared_closed_ports()

    def test_netstat_output_format(self, probed_cluster):
        snapshot = PodSnapshot.from_running_pod(probed_cluster.running_pod("web-0"))
        output = snapshot.netstat_output()
        assert "Active Internet connections" in output
        assert "LISTEN" in output
        assert ":8080" in output

    def test_socket_record_properties(self):
        record = SocketRecord(port=45000, interface="127.0.0.1", dynamic=True)
        assert record.in_ephemeral_range
        assert not record.reachable_from_network

    def test_cluster_snapshot_grouping_by_owner(self, probed_cluster):
        snapshot = ClusterSnapshot.from_pods(probed_cluster.running_pods())
        grouped = snapshot.by_owner()
        assert "Deployment/default/web" in grouped
        assert len(grouped["Deployment/default/web"]) == 1

    def test_cluster_snapshot_lookup(self, probed_cluster):
        snapshot = ClusterSnapshot.from_pods(probed_cluster.running_pods())
        assert snapshot.pod("web-0") is not None
        assert snapshot.pod("missing") is None
        assert snapshot.total_open_ports() >= 2


class TestRuntimeScanner:
    def test_double_snapshot_detects_dynamic_ports(self, probed_cluster):
        scanner = RuntimeScanner(probed_cluster)
        observation = scanner.observe("web")
        snapshot = observation.pods()[0]
        assert observation.has_dynamic_ports(snapshot)
        dynamic = observation.dynamic_ports(snapshot)
        assert all(32768 <= port <= 60999 for port in dynamic)

    def test_single_snapshot_misses_dynamic_ports(self, probed_cluster):
        scanner = RuntimeScanner(probed_cluster)
        observation = scanner.observe("web", restart_between_snapshots=False)
        snapshot = observation.pods()[0]
        assert not observation.has_dynamic_ports(snapshot)

    def test_stable_ports_exclude_dynamic(self, probed_cluster):
        scanner = RuntimeScanner(probed_cluster)
        observation = scanner.observe("web")
        snapshot = observation.pods()[0]
        stable = observation.stable_open_ports(snapshot)
        assert 8080 in stable and 9999 in stable
        assert not any(32768 <= port <= 60999 for port in stable)

    def test_host_ports_filtered_for_host_network_pods(self):
        registry = BehaviorRegistry()
        cluster = Cluster(name="hostnet", worker_count=1, behaviors=registry, seed=4)
        cluster.install(
            [make_deployment("agent", ports=[9100], host_network=True, labels={"app": "agent"})],
            app_name="agent",
        )
        observation = RuntimeScanner(cluster).observe("agent")
        snapshot = observation.pods()[0]
        stable = observation.stable_open_ports(snapshot)
        assert stable == {9100}
        sockets = observation.observed_sockets(snapshot)
        assert {record.port for record in sockets} == {9100}

    def test_observe_all_covers_every_application(self, probed_cluster):
        probed_cluster.install([make_attacker_pod()], app_name="probe")
        observations = RuntimeScanner(probed_cluster).observe_all()
        assert set(observations) == {"web", "probe"}


class TestReachabilityProbe:
    def test_attacker_installed_once(self, probed_cluster):
        probe = ReachabilityProbe(probed_cluster)
        first = probe.ensure_attacker()
        second = probe.ensure_attacker()
        assert first.name == second.name == ATTACKER_POD_NAME

    def test_report_counts_reachable_endpoints(self, probed_cluster):
        probe = ReachabilityProbe(probed_cluster)
        report = probe.probe_application("web")
        assert report.affected
        assert ("web-0", 9999) in report.reachable_pod_endpoints
        assert "web" in report.reachable_services
        assert report.pods_with_dynamic_ports == {"web-0"}

    def test_strict_policy_blocks_misconfigured_ports(self, probed_cluster):
        probed_cluster.api.apply(
            allow_ports_policy("allow-http", equality_selector(app="web"), [8080])
        )
        report = ReachabilityProbe(probed_cluster).probe_application("web")
        reachable_ports = {port for _, port in report.reachable_pod_endpoints}
        assert reachable_ports == {8080}
        assert report.isolated_pods == 1

    def test_deny_all_blocks_everything(self, probed_cluster):
        probed_cluster.api.apply(deny_all_policy("deny"))
        report = ReachabilityProbe(probed_cluster).probe_application("web")
        # The attacker pod is also selected by the deny-all policy, but what
        # matters is that the application endpoints are no longer reachable.
        assert report.reachable_pod_endpoints == []
        assert not report.affected
