"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.core import MisconfigClass, MisconfigurationAnalyzer, deduplicate_findings, Finding
from repro.datasets import InjectionPlan, build_application
from repro.helm import deep_merge, get_path, set_path
from repro.k8s import LabelSet, Selector, equality_selector, is_ephemeral_port
from repro.k8s.container import EPHEMERAL_PORT_RANGE

# --------------------------------------------------------------------------
# Strategies
# --------------------------------------------------------------------------

label_keys = st.from_regex(r"[a-z][a-z0-9]{0,20}", fullmatch=True)
label_values = st.from_regex(r"[a-z0-9][a-z0-9-]{0,20}[a-z0-9]", fullmatch=True)
label_dicts = st.dictionaries(label_keys, label_values, max_size=5)

scalars = st.one_of(st.integers(-1000, 1000), st.booleans(), label_values)
values_trees = st.recursive(
    scalars,
    lambda children: st.dictionaries(label_keys, children, max_size=4),
    max_leaves=12,
)
values_dicts = st.dictionaries(label_keys, values_trees, max_size=4)


# --------------------------------------------------------------------------
# Labels and selectors
# --------------------------------------------------------------------------


class TestLabelProperties:
    @given(label_dicts)
    def test_labelset_round_trips_through_dict(self, labels):
        assert LabelSet(labels).to_dict() == labels

    @given(label_dicts)
    def test_equal_label_sets_have_equal_hashes(self, labels):
        assert hash(LabelSet(labels)) == hash(LabelSet(dict(labels)))

    @given(label_dicts, label_dicts)
    def test_merged_contains_both_key_sets(self, first, second):
        merged = LabelSet(first).merged(second)
        assert set(merged) == set(first) | set(second)
        for key, value in second.items():
            assert merged[key] == value

    @given(label_dicts)
    def test_selector_built_from_labels_matches_them(self, labels):
        selector = Selector.from_dict({"matchLabels": labels})
        assert selector.matches(labels)

    @given(label_dicts, label_dicts)
    def test_selector_matches_any_superset(self, selector_labels, extra):
        selector = Selector.from_dict({"matchLabels": selector_labels})
        superset = {**extra, **selector_labels}
        assert selector.matches(superset)

    @given(label_dicts)
    def test_selector_round_trips_through_dict(self, labels):
        selector = Selector.from_dict({"matchLabels": labels})
        assert Selector.from_dict(selector.to_dict()) == selector

    @given(st.integers(min_value=1, max_value=65535))
    def test_ephemeral_port_classification_matches_range(self, port):
        low, high = EPHEMERAL_PORT_RANGE
        assert is_ephemeral_port(port) == (low <= port <= high)


# --------------------------------------------------------------------------
# Helm values
# --------------------------------------------------------------------------


class TestValuesProperties:
    @given(values_dicts)
    def test_merge_with_empty_is_identity(self, values):
        assert deep_merge(values, {}) == values
        assert deep_merge({}, values) == values

    @given(values_dicts, values_dicts)
    def test_override_keys_always_win(self, base, override):
        merged = deep_merge(base, override)
        for key, value in override.items():
            if not isinstance(value, dict):
                assert merged[key] == value

    @given(values_dicts, values_dicts, values_dicts)
    def test_merge_is_associative_for_disjoint_scalars(self, a, b, c):
        left = deep_merge(deep_merge(a, b), c)
        right = deep_merge(a, deep_merge(b, c))
        assert left == right

    @given(st.lists(label_keys, min_size=1, max_size=4, unique=True), scalars)
    def test_set_then_get_path_round_trips(self, parts, value):
        path = ".".join(parts)
        values: dict = {}
        set_path(values, path, value)
        assert get_path(values, path) == value


# --------------------------------------------------------------------------
# Findings
# --------------------------------------------------------------------------


class TestFindingProperties:
    findings_strategy = st.lists(
        st.builds(
            Finding,
            misconfig_class=st.sampled_from(list(MisconfigClass)),
            application=st.just("app"),
            resource=st.sampled_from(["Deployment/default/a", "Service/default/b"]),
            message=st.just("m"),
            port=st.one_of(st.none(), st.integers(1, 65535)),
        ),
        max_size=20,
    )

    @given(findings_strategy)
    def test_deduplication_is_idempotent(self, findings):
        once = deduplicate_findings(findings)
        twice = deduplicate_findings(once)
        assert [f.dedupe_key() for f in once] == [f.dedupe_key() for f in twice]

    @given(findings_strategy)
    def test_deduplication_never_increases_count(self, findings):
        assert len(deduplicate_findings(findings)) <= len(findings)

    @given(findings_strategy)
    def test_deduplicated_keys_are_unique(self, findings):
        keys = [f.dedupe_key() for f in deduplicate_findings(findings)]
        assert len(keys) == len(set(keys))


# --------------------------------------------------------------------------
# End-to-end invariant: the analyzer finds exactly what the plan injects
# --------------------------------------------------------------------------

plans = st.builds(
    InjectionPlan,
    m1=st.integers(0, 3),
    m2=st.integers(0, 1),
    m3=st.integers(0, 2),
    m4a=st.integers(0, 1),
    m4b=st.integers(0, 1),
    m4c=st.integers(0, 1),
    m5a=st.integers(0, 1),
    m5c=st.integers(0, 1),
    m5d=st.integers(0, 1),
    m6=st.booleans(),
    m7=st.integers(0, 1),
)


class TestAnalyzerRoundTrip:
    @settings(max_examples=15, deadline=None)
    @given(plans, st.sampled_from(["web", "database", "pipeline"]))
    def test_analysis_matches_injection_plan_exactly(self, plan, archetype):
        """The central soundness/completeness property of the reproduction:
        for any injection plan, the hybrid analyzer reports exactly the
        planned findings -- no false positives, no false negatives."""
        app = build_application("prop-app", "Property Org", plan, archetype=archetype)
        report = MisconfigurationAnalyzer().analyze_chart(app.chart, behaviors=app.behaviors)
        got = {cls.value: count for cls, count in report.count_by_class().items() if count}
        expected = {name: count for name, count in plan.expected_counts().items() if count}
        assert got == expected
