"""Differential conformance suite: pooled == fresh and fast == full.

The :class:`repro.cluster.AnalysisSession` subsystem must be a *pure
acceleration* of the seed pipeline: recycling cluster skeletons through
``Cluster.reset()`` and deriving runtime observations install-free
(``observe_mode="fast"``) must produce byte-identical canonical reports,
snapshots and reachability surfaces.  This suite proves it three ways:

* over the **whole 290-chart catalogue** -- full-evaluation reports, per-chart
  double snapshots, the Figure 4b sweep, and all-pairs reachability surfaces;
* over **Hypothesis-generated app specs** -- arbitrary injection plans and
  archetypes, diffed fast vs. full and pooled vs. fresh;
* across **arbitrary reset sequences** -- one long-lived session serving many
  different charts must match a fresh cluster at every step.

All comparisons go through the shared canonical differ in
``tests/support/diffing.py``.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import (
    AnalysisSession,
    Cluster,
    OBSERVE_FAST,
    OBSERVE_FULL,
)
from repro.core import AnalyzerSettings, MisconfigurationAnalyzer
from repro.datasets import InjectionPlan, build_application, build_catalog
from repro.experiments import run_full_evaluation, run_netpol_impact
from repro.helm import render_chart
from repro.probe import RuntimeScanner

from tests.support.diffing import (
    assert_identical,
    canonical_evaluation,
    canonical_netpol,
    canonical_observation,
    canonical_report,
    canonical_surface,
)

ARCHETYPES = ("web", "database", "monitoring", "messaging", "pipeline", "microservices")


@pytest.fixture(scope="module")
def catalog_apps():
    return build_catalog()


def reference_analyzer() -> MisconfigurationAnalyzer:
    """The seed-shaped pipeline: throw-away cluster + install per chart."""
    return MisconfigurationAnalyzer(
        settings=AnalyzerSettings(observe_mode=OBSERVE_FULL, pooled_clusters=False)
    )


def observe_fresh(app, double_snapshot: bool = True):
    """The seed observation path: fresh cluster, install, runtime scan."""
    rendered = render_chart(app.chart)
    cluster = Cluster(name="analysis", behaviors=app.behaviors)
    cluster.install(rendered)
    return RuntimeScanner(cluster).observe(
        rendered.release.name, restart_between_snapshots=double_snapshot
    )


# ---------------------------------------------------------------------------
# Whole-catalogue conformance
# ---------------------------------------------------------------------------


@pytest.mark.slow
def test_catalogue_reports_identical_across_session_modes(catalog_apps):
    """Full-evaluation reports: fresh+full == pooled+full == pooled+fast."""
    reference = run_full_evaluation(
        applications=catalog_apps, analyzer=reference_analyzer()
    )
    pooled_full = run_full_evaluation(
        applications=catalog_apps,
        analyzer=MisconfigurationAnalyzer(
            settings=AnalyzerSettings(observe_mode=OBSERVE_FULL, pooled_clusters=True)
        ),
    )
    fast = run_full_evaluation(applications=catalog_apps)
    assert_identical(
        canonical_evaluation(reference), canonical_evaluation(pooled_full),
        label="reports/pooled-vs-fresh",
    )
    assert_identical(
        canonical_evaluation(reference), canonical_evaluation(fast),
        label="reports/fast-vs-full",
    )


@pytest.mark.slow
def test_catalogue_observations_fast_equals_full_and_fresh(catalog_apps):
    """Per-chart double snapshots, across every chart of the catalogue."""
    full_session = AnalysisSession(observe_mode=OBSERVE_FULL)
    fast_session = AnalysisSession(observe_mode=OBSERVE_FAST)
    for app in catalog_apps:
        reference = canonical_observation(observe_fresh(app))
        pooled = full_session.observe(render_chart(app.chart), app.behaviors)
        fast = fast_session.observe(render_chart(app.chart), app.behaviors)
        assert_identical(
            reference, canonical_observation(pooled),
            label=f"observation/pooled/{app.dataset}/{app.name}",
        )
        assert_identical(
            reference, canonical_observation(fast),
            label=f"observation/fast/{app.dataset}/{app.name}",
        )
    assert fast_session.stats.fast_observations == len(catalog_apps)
    # The pooled session built exactly one skeleton for the whole catalogue.
    assert full_session.stats.clusters_built == 1
    assert full_session.stats.resets == len(catalog_apps) - 1


@pytest.mark.slow
def test_catalogue_netpol_sweep_pooled_equals_fresh(catalog_apps):
    """The Figure 4b reachability sweep: pooled clusters == throw-away ones."""
    fresh = run_netpol_impact(applications=catalog_apps, pooled=False)
    pooled = run_netpol_impact(applications=catalog_apps, pooled=True)
    assert_identical(
        canonical_netpol(fresh), canonical_netpol(pooled), label="netpol/pooled-vs-fresh"
    )


@pytest.mark.slow
def test_catalogue_reachability_surfaces_pooled_equals_fresh(catalog_apps):
    """All-pairs reachability surfaces computed on recycled clusters.

    Beyond snapshots and findings: the connectivity engine (policy index,
    service bindings, matrix memos) must see no residue from previous leases.
    """
    session = AnalysisSession(name="surface", observe_mode=OBSERVE_FULL)
    checked = 0
    for app in catalog_apps:
        if not app.defines_network_policies:
            continue
        overrides = {"networkPolicy": {"enabled": True}}
        fresh_cluster = Cluster(name="surface", behaviors=app.behaviors)
        fresh_cluster.install(render_chart(app.chart, overrides=overrides))
        expected = canonical_surface(fresh_cluster.reachability_matrix().all_pairs())
        with session.lease(app.behaviors) as cluster:
            cluster.install(render_chart(app.chart, overrides=overrides))
            actual = canonical_surface(cluster.reachability_matrix().all_pairs())
        assert_identical(expected, actual, label=f"surface/{app.dataset}/{app.name}")
        checked += 1
    assert checked > 50  # the catalogue ships plenty of policy-defining charts


# ---------------------------------------------------------------------------
# Hypothesis-generated app specs
# ---------------------------------------------------------------------------


@st.composite
def injection_plans(draw):
    m1 = draw(st.integers(min_value=0, max_value=3))
    return InjectionPlan(
        m1=m1,
        m2=draw(st.integers(min_value=0, max_value=2)),
        m3=draw(st.integers(min_value=0, max_value=2)),
        m4a=draw(st.integers(min_value=0, max_value=1)),
        m4b=draw(st.integers(min_value=0, max_value=1)),
        m4c=draw(st.integers(min_value=0, max_value=1)),
        m5a=draw(st.integers(min_value=0, max_value=1)),
        m5b=draw(st.integers(min_value=0, max_value=m1)),
        m5c=draw(st.integers(min_value=0, max_value=1)),
        m5d=draw(st.integers(min_value=0, max_value=1)),
        m6=draw(st.booleans()),
        m7=draw(st.integers(min_value=0, max_value=1)),
        global_collision=draw(st.booleans()),
    )


@st.composite
def built_applications(draw):
    plan = draw(injection_plans())
    archetype = draw(st.sampled_from(ARCHETYPES))
    return build_application(
        "gen-app", "Gen Org", plan, archetype=archetype, dataset="generated"
    )


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(app=built_applications(), double_snapshot=st.booleans())
def test_generated_specs_fast_observation_equals_full(app, double_snapshot):
    """fast == full for arbitrary generated app specs, single & double snapshot."""
    reference = observe_fresh(app, double_snapshot=double_snapshot)
    fast = AnalysisSession(observe_mode=OBSERVE_FAST).observe(
        render_chart(app.chart), app.behaviors, double_snapshot=double_snapshot
    )
    assert_identical(
        canonical_observation(reference), canonical_observation(fast),
        label="generated/fast-vs-full",
    )


#: One long-lived session shared across Hypothesis examples: every example
#: exercises a reset after an arbitrary predecessor chart, which is exactly
#: the reset-epoch contract pooling relies on.
_PERSISTENT_FULL = AnalysisSession(observe_mode=OBSERVE_FULL)
_PERSISTENT_FAST = AnalysisSession(observe_mode=OBSERVE_FAST)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(app=built_applications())
def test_generated_specs_reports_identical_across_session_modes(app):
    """Analyzer reports: persistent pooled/fast sessions == fresh reference."""
    expected = canonical_report(
        reference_analyzer().analyze_chart(
            app.chart, behaviors=app.behaviors, dataset="generated"
        )
    )
    pooled = MisconfigurationAnalyzer(
        settings=AnalyzerSettings(observe_mode=OBSERVE_FULL),
        session=_PERSISTENT_FULL,
    ).analyze_chart(app.chart, behaviors=app.behaviors, dataset="generated")
    fast = MisconfigurationAnalyzer(
        session=_PERSISTENT_FAST
    ).analyze_chart(app.chart, behaviors=app.behaviors, dataset="generated")
    assert_identical(expected, canonical_report(pooled), label="generated/pooled-report")
    assert_identical(expected, canonical_report(fast), label="generated/fast-report")
